"""Command-line interface: ``repro-bfs`` / ``python -m repro``.

Subcommands::

    repro-bfs list                       # available experiments
    repro-bfs run fig08 [--scale 15] [--save DIR]
    repro-bfs all [--scale 15] [--save DIR]
    repro-bfs bfs --scale 16 --edgefactor 16 [--m 64 --n 512] [--json]
    repro-bfs graph500 --scale 16 [--json]
    repro-bfs trace --scale 14 [--out PREFIX]
    repro-bfs profile --scale 12 [--flight-recorder] [--out DIR]
    repro-bfs monitor record|check|report|drift [--history PATH]
    repro-bfs serve-metrics --scale 12 [--port 9464]
    repro-bfs top --scale 8 --children 1 [--once]
    repro-bfs live record|check [--policy SPEC]
    repro-bfs info                       # architecture presets

``run``/``all`` regenerate the paper's tables and figures and print
them with paper-vs-measured notes; ``bfs`` runs a real traversal on
this machine and reports wall-clock TEPS; ``trace`` runs a traversal
with the :mod:`repro.obs` tracer enabled, writes a Perfetto-loadable
``.trace.json`` plus a JSONL event stream, and prints a span summary
and the switching-point mistuning report.

``profile`` is the continuous-profiling entry point
(:mod:`repro.obs.profile`): it runs repeated traversals under the
sampling stack profiler and per-span allocation windows, writes the
collapsed-stack flamegraph and merged Perfetto trace, and prints the
measured-vs-predicted *explain* report; ``--flight-recorder`` arms the
anomaly ring (``--inject-anomaly`` forces a 3x-slow traversal so CI can
assert a snapshot fires).  The ``bfs``/``graph500``/``trace`` commands
accept ``--profile`` / ``--flight-recorder`` to run the same machinery
around their normal flow; snapshot digests land in the run-history
meta either way.

``monitor`` is the longitudinal layer (:mod:`repro.obs.history` /
:mod:`repro.obs.monitor`): ``record`` appends an instrumented run to
the JSONL history store, ``check`` gates the newest run against the
rolling baseline (nonzero exit on regression — the CI gate), ``report``
prints the trajectory, and ``drift`` replays the stored audit verdicts
through the predictor drift monitor.  ``serve-metrics`` exposes a live
registry as an OpenMetrics v1 endpoint.

``top`` and ``live`` are the cross-process tier (:mod:`repro.obs.live`):
``top`` runs a traced parent+children demo workload and renders the
streaming dashboard (windows, sparklines, active spans, burn-rate SLO
state; ``--once`` degrades to one plain-text frame for non-TTY use),
``live record`` persists the whole frame stream to a capture file
(optionally arming the flight recorder so an SLO alert dumps a
snapshot), and ``live check`` replays a capture against SLO policies
with a CI-friendly nonzero exit on violation — the live analogue of
``monitor check``.  SLO specs read ``metric<threshold@objective``,
e.g. ``graph500.bfs<0.5@0.9``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

from repro._version import __version__
from repro.obs.clock import now

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro-bfs",
        description="Heuristic cross-architecture BFS combination "
        "(ICPP'14 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("info", help="show architecture presets")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (see 'list')")
    _common_bench_args(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    _common_bench_args(all_p)

    g5_p = sub.add_parser(
        "graph500", help="run the Graph 500 benchmark flow on this machine"
    )
    g5_p.add_argument("--scale", type=int, default=16)
    g5_p.add_argument("--edgefactor", type=int, default=16)
    g5_p.add_argument("--roots", type=int, default=16)
    g5_p.add_argument("--seed", type=int, default=0)
    g5_p.add_argument(
        "--engine",
        choices=("td", "bu", "hybrid"),
        default="hybrid",
    )
    g5_p.add_argument(
        "--json",
        action="store_true",
        help="emit the result as a JSON object on stdout",
    )
    g5_p.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the switching-point audit in the JSON/history output",
    )
    _profile_args(g5_p)
    _history_arg(g5_p)

    lint_p = sub.add_parser(
        "lint", help="run the repro static-analysis rules (RPR001..)"
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: the installed package)",
    )
    lint_p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format",
    )
    lint_p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    lint_p.add_argument(
        "--rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    lint_p.add_argument(
        "--deep",
        action="store_true",
        help="also run the deep dataflow/race/typestate rules "
        "(RPR010..RPR026)",
    )
    lint_p.add_argument(
        "--changed",
        action="store_true",
        help="report only on .py files changed vs HEAD (per git), scoped "
        "to the given paths; with --deep the whole project is still "
        "analyzed so interprocedural rules keep their context",
    )

    cg_p = sub.add_parser(
        "callgraph",
        help="build the whole-program call graph and query/export it",
    )
    cg_p.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to analyze (default: the installed package)",
    )
    cg_p.add_argument(
        "--format",
        choices=("text", "dot", "json"),
        default="text",
        dest="fmt",
        help="export format (text = stats summary)",
    )
    cg_p.add_argument(
        "--out",
        default=None,
        help="write the export to this file instead of stdout",
    )
    cg_p.add_argument(
        "--summaries",
        action="store_true",
        help="include/print the fixpoint per-function effect summaries",
    )
    cg_p.add_argument(
        "--who-writes",
        default=None,
        metavar="NAME",
        help="list functions whose fixpoint summary writes NAME "
        "(e.g. workspace.parent)",
    )
    cg_p.add_argument(
        "--who-calls",
        default=None,
        metavar="QNAME",
        help="list direct and transitive callers of a function qname",
    )
    cg_p.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="JSON summary-cache file keyed by content hash "
        "(created if missing)",
    )
    cg_p.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the whole-program baseline (stats + program-rule "
        "findings) to PATH and exit",
    )

    df_p = sub.add_parser(
        "dataflow",
        help="run only the deep dataflow/race rules (RPR010..RPR014)",
    )
    df_p.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to analyze (default: the installed package)",
    )
    df_p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format",
    )
    df_p.add_argument(
        "--effects",
        action="store_true",
        help="also print per-function read/write/escape effect summaries",
    )

    san_p = sub.add_parser(
        "sanitize",
        help="run a BFS under the runtime sanitizer + units audit",
    )
    san_p.add_argument("--scale", type=int, default=14)
    san_p.add_argument("--edgefactor", type=int, default=16)
    san_p.add_argument("--seed", type=int, default=0)
    san_p.add_argument(
        "--engine", choices=("td", "bu", "hybrid"), default="hybrid"
    )
    san_p.add_argument("--m", type=float, default=64.0, help="threshold M")
    san_p.add_argument("--n", type=float, default=512.0, help="threshold N")
    san_p.add_argument(
        "--skip-units",
        action="store_true",
        help="skip the cost-model dimensional-analysis audit",
    )

    bfs_p = sub.add_parser("bfs", help="run a real BFS on this machine")
    bfs_p.add_argument("--scale", type=int, default=16)
    bfs_p.add_argument("--edgefactor", type=int, default=16)
    bfs_p.add_argument("--seed", type=int, default=0)
    bfs_p.add_argument("--m", type=float, default=None, help="threshold M")
    bfs_p.add_argument("--n", type=float, default=None, help="threshold N")
    bfs_p.add_argument(
        "--engine",
        choices=("td", "bu", "hybrid", "auto"),
        default="auto",
        help="'auto' predicts (M, N) with the regression model",
    )
    bfs_p.add_argument(
        "--bottom-up",
        choices=("scan", "tiles"),
        default="scan",
        dest="bottom_up",
        help=(
            "bottom-up kernel family for hybrid/bu runs: 'scan' is the "
            "reference row scan, 'tiles' the bitmap-tile masked SpMV"
        ),
    )
    bfs_p.add_argument(
        "--json",
        action="store_true",
        help="emit the result as a JSON object on stdout",
    )
    bfs_p.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the switching-point audit in the JSON/history output",
    )
    _profile_args(bfs_p)
    _history_arg(bfs_p)

    tr_p = sub.add_parser(
        "trace",
        help="run a traversal with tracing on and export the trace",
    )
    tr_p.add_argument("--scale", type=int, default=14)
    tr_p.add_argument("--edgefactor", type=int, default=16)
    tr_p.add_argument("--seed", type=int, default=0)
    tr_p.add_argument(
        "--engine",
        choices=("td", "bu", "hybrid", "parallel"),
        default="hybrid",
    )
    tr_p.add_argument("--m", type=float, default=64.0, help="threshold M")
    tr_p.add_argument("--n", type=float, default=512.0, help="threshold N")
    tr_p.add_argument(
        "--threads", type=int, default=4, help="workers for --engine parallel"
    )
    tr_p.add_argument(
        "--audit-candidates",
        type=int,
        default=500,
        help="candidate (M, N) pairs priced for the mistuning report",
    )
    tr_p.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the switching-point mistuning report",
    )
    tr_p.add_argument(
        "--out",
        type=Path,
        default=Path("bfs"),
        help="output prefix: writes PREFIX.trace.json and PREFIX.jsonl",
    )
    _profile_args(tr_p)
    _history_arg(tr_p)

    pf_p = sub.add_parser(
        "profile",
        help="profile repeated traversals: flamegraph, allocation "
        "windows, explain report, flight recorder",
    )
    pf_p.add_argument("--scale", type=int, default=12)
    pf_p.add_argument("--edgefactor", type=int, default=16)
    pf_p.add_argument("--seed", type=int, default=0)
    pf_p.add_argument(
        "--engine", choices=("td", "bu", "hybrid"), default="hybrid"
    )
    pf_p.add_argument("--m", type=float, default=64.0, help="threshold M")
    pf_p.add_argument("--n", type=float, default=512.0, help="threshold N")
    pf_p.add_argument(
        "--bottom-up",
        choices=("scan", "tiles"),
        default="scan",
        dest="bottom_up",
        help="bottom-up kernel family (tags levels for the explain report)",
    )
    pf_p.add_argument(
        "--repeat",
        type=int,
        default=5,
        help="traversals to run (later ones reuse a warm workspace; "
        "the explain report describes the last)",
    )
    pf_p.add_argument(
        "--hz",
        type=float,
        default=997.0,
        help="sampling rate; the default resolves millisecond-scale "
        "traversals (the always-on default is 97 Hz)",
    )
    pf_p.add_argument(
        "--out",
        type=Path,
        default=Path("profile"),
        help="directory for the .collapsed / .trace.json artifacts",
    )
    pf_p.add_argument(
        "--no-sampler",
        action="store_true",
        help="skip the sampling stack profiler",
    )
    pf_p.add_argument(
        "--no-alloc",
        action="store_true",
        help="skip the per-span allocation windows",
    )
    pf_p.add_argument(
        "--flight-recorder",
        action="store_true",
        dest="flight_recorder",
        help="arm the anomaly flight recorder",
    )
    pf_p.add_argument(
        "--snapshot-dir",
        type=Path,
        default=None,
        dest="snapshot_dir",
        help="flight-recorder snapshot directory (default: OUT/snapshots)",
    )
    pf_p.add_argument(
        "--inject-anomaly",
        action="store_true",
        dest="inject_anomaly",
        help="record a synthetic 3x-slow traversal span after the real "
        "runs (arms the recorder; nonzero exit if no snapshot fires)",
    )
    pf_p.add_argument(
        "--json",
        action="store_true",
        help="emit the full profile payload as JSON on stdout",
    )
    _history_arg(pf_p)

    mon_p = sub.add_parser(
        "monitor",
        help="run-history recording, regression gates, drift reports",
    )
    mon_sub = mon_p.add_subparsers(dest="monitor_command")

    rec_p = mon_sub.add_parser(
        "record", help="run an instrumented graph500 flow and append it"
    )
    rec_p.add_argument("--scale", type=int, default=10)
    rec_p.add_argument("--edgefactor", type=int, default=16)
    rec_p.add_argument("--roots", type=int, default=8)
    rec_p.add_argument("--seed", type=int, default=0)
    rec_p.add_argument("--m", type=float, default=20.0, help="threshold M")
    rec_p.add_argument("--n", type=float, default=100.0, help="threshold N")
    rec_p.add_argument(
        "--audit-candidates",
        type=int,
        default=300,
        help="candidate (M, N) pairs priced for the audit verdict",
    )
    _history_arg(rec_p)

    chk_p = mon_sub.add_parser(
        "check",
        help="gate the newest run against the rolling baseline "
        "(nonzero exit on regression)",
    )
    chk_p.add_argument("--window", type=int, default=8)
    chk_p.add_argument("--min-samples", type=int, default=3)
    chk_p.add_argument("--kind", default=None)
    chk_p.add_argument("--workload", default=None)
    chk_p.add_argument("--json", action="store_true")
    _history_arg(chk_p)

    rep_p = mon_sub.add_parser(
        "report", help="print the recorded trajectory"
    )
    rep_p.add_argument("--tail", type=int, default=0, help="newest N only")
    rep_p.add_argument("--json", action="store_true")
    _history_arg(rep_p)

    dr_p = mon_sub.add_parser(
        "drift",
        help="replay stored audit verdicts through the drift monitor",
    )
    dr_p.add_argument("--window", type=int, default=8)
    dr_p.add_argument("--tolerance", type=float, default=1.25)
    dr_p.add_argument("--min-runs", type=int, default=3)
    dr_p.add_argument("--json", action="store_true")
    _history_arg(dr_p)

    srv_p = sub.add_parser(
        "serve-metrics",
        help="expose a traced run's metrics as an OpenMetrics endpoint",
    )
    srv_p.add_argument("--scale", type=int, default=12)
    srv_p.add_argument("--edgefactor", type=int, default=16)
    srv_p.add_argument("--roots", type=int, default=4)
    srv_p.add_argument("--seed", type=int, default=0)
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=9464)
    srv_p.add_argument(
        "--once",
        action="store_true",
        help="serve exactly one scrape, then exit (CI smoke mode)",
    )

    top_p = sub.add_parser(
        "top",
        help="live telemetry dashboard over a traced parent+children "
        "demo workload",
    )
    _live_workload_args(top_p)
    top_p.add_argument(
        "--interval",
        type=float,
        default=0.25,
        help="refresh period in seconds (capped at 4 Hz)",
    )
    top_p.add_argument(
        "--once",
        action="store_true",
        help="run the workload to completion, then print one plain-text "
        "frame (the non-TTY degradation)",
    )
    top_p.add_argument(
        "--duration",
        type=float,
        default=120.0,
        help="hard cap on the watch loop in seconds",
    )
    _slo_args(top_p)

    live_p = sub.add_parser(
        "live",
        help="record/replay live-telemetry captures against SLO policies",
    )
    live_sub = live_p.add_subparsers(dest="live_command")

    lrec_p = live_sub.add_parser(
        "record",
        help="run the traced demo workload and persist the frame stream",
    )
    _live_workload_args(lrec_p)
    lrec_p.add_argument(
        "--out",
        type=Path,
        default=Path("live.capture"),
        help="capture file (length-prefixed live frames)",
    )
    lrec_p.add_argument(
        "--flight-dir",
        type=Path,
        default=None,
        dest="flight_dir",
        help="arm the flight recorder: an slo.alert event dumps a "
        "snapshot here",
    )
    _slo_args(lrec_p)

    lchk_p = live_sub.add_parser(
        "check",
        help="replay a capture against SLO policies (nonzero exit on "
        "any burn-rate alert — the CI gate)",
    )
    lchk_p.add_argument("capture", type=Path, help="capture file to replay")
    lchk_p.add_argument("--json", action="store_true")
    lchk_p.add_argument(
        "--strict-protocol",
        action="store_true",
        dest="strict_protocol",
        help="additionally replay the capture through the live-channel "
        "protocol machines: out-of-order frames or an incomplete "
        "hello→…→bye handshake fail the gate (exit 2)",
    )
    _slo_args(lchk_p)

    proto_p = sub.add_parser(
        "protocols",
        help="list the typestate protocol machines (RPR022..RPR026) "
        "and export them as DOT",
    )
    proto_p.add_argument(
        "--machine",
        default=None,
        help="show only this machine (e.g. channel-exporter)",
    )
    proto_p.add_argument(
        "--format",
        choices=("text", "json", "dot"),
        default="text",
        dest="fmt",
        help="report format (dot requires --machine or --dot-dir)",
    )
    proto_p.add_argument(
        "--dot-dir",
        type=Path,
        default=None,
        dest="dot_dir",
        help="write one Graphviz .dot file per machine into this "
        "directory (the CI artifact export)",
    )
    return parser


#: SLO specs assumed when none are passed (generous: the demo workload
#: at small scales stays far under a second per traversal).
DEFAULT_SLO_SPECS = ("graph500.bfs<1.0@0.9",)


def _live_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=int, default=8)
    p.add_argument("--edgefactor", type=int, default=8)
    p.add_argument("--roots", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--children",
        type=int,
        default=1,
        help="traced child processes to spawn",
    )
    p.add_argument(
        "--child-delay",
        type=float,
        default=0.0,
        dest="child_delay",
        help="inject N seconds of sleep per child traversal (trips a "
        "tight SLO for the acceptance run)",
    )


def _slo_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="SPEC",
        help="SLO spec metric<threshold@objective (repeatable; default "
        f"{DEFAULT_SLO_SPECS[0]})",
    )
    p.add_argument(
        "--slo-window",
        type=float,
        default=1.0,
        dest="slo_window",
        help="SLO window length in seconds",
    )
    p.add_argument(
        "--fast-windows",
        type=int,
        default=5,
        dest="fast_windows",
        help="fast burn-rate window span (in windows)",
    )
    p.add_argument(
        "--slow-windows",
        type=int,
        default=60,
        dest="slow_windows",
        help="slow burn-rate window span (in windows)",
    )
    p.add_argument(
        "--burn-threshold",
        type=float,
        default=2.0,
        dest="burn_threshold",
        help="burn rate both windows must reach to alert",
    )


def _history_arg(p: argparse.ArgumentParser) -> None:
    is_monitor = p.prog.split()[-2:-1] == ["monitor"]
    p.add_argument(
        "--history",
        type=Path,
        # monitor subcommands always have a store; the run commands
        # record only when asked.
        default=Path("benchmarks/results/history/runs.jsonl")
        if is_monitor
        else None,
        help="run-history JSONL store "
        "(default: benchmarks/results/history/runs.jsonl"
        + ("" if is_monitor else "; omit to skip recording")
        + ")",
    )


def _profile_args(p: argparse.ArgumentParser) -> None:
    """The profiling ride-along flags shared by bfs/graph500/trace."""
    p.add_argument(
        "--profile",
        action="store_true",
        help="run under the sampling profiler + allocation windows and "
        "write flamegraph artifacts (see 'repro-bfs profile')",
    )
    p.add_argument(
        "--flight-recorder",
        action="store_true",
        dest="flight_recorder",
        help="arm the anomaly flight recorder around the run",
    )
    p.add_argument(
        "--snapshot-dir",
        type=Path,
        default=None,
        dest="snapshot_dir",
        help="flight-recorder snapshot directory "
        "(default: PROFILE_OUT/snapshots)",
    )
    p.add_argument(
        "--profile-out",
        type=Path,
        default=Path("profile"),
        dest="profile_out",
        help="directory for profiling artifacts",
    )


def _make_profile_session(args: argparse.Namespace, tracer, **context):
    """A :class:`~repro.obs.profile.ProfileSession` for the ride-along
    flags, or ``None`` when neither was given."""
    profiled = getattr(args, "profile", False)
    recorded = getattr(args, "flight_recorder", False)
    if not (profiled or recorded):
        return None
    from repro.obs.profile import ProfileSession

    snapshot_dir = args.snapshot_dir
    if recorded and snapshot_dir is None:
        snapshot_dir = args.profile_out / "snapshots"
    return ProfileSession(
        tracer,
        sampler=profiled,
        alloc=profiled,
        recorder=recorded,
        snapshot_dir=snapshot_dir,
        recorder_kwargs={"context": context},
    )


def _finish_profile(session, out_dir, stem: str, *, quiet: bool) -> dict:
    """Write a finished session's artifacts and fold its summary into
    history meta (the snapshot digests land in ``runs.jsonl`` here)."""
    if session is None:
        return {}
    report = session.report()
    meta: dict = {"profile": report}
    if session.sampler is not None or session.recorder is not None:
        paths = session.write_artifacts(out_dir, stem)
    else:
        paths = {}
    if session.recorder is not None and session.recorder.snapshots:
        meta["snapshots"] = [
            s.as_dict() for s in session.recorder.snapshots
        ]
    if quiet:
        return meta
    if paths:
        wrote = ", ".join(str(p) for p in paths.values())
        print(f"profile: wrote {wrote}")
    sampler = report.get("sampler")
    if sampler is not None:
        print(
            f"profile: {sampler['samples']} stack sample(s) at "
            f"{session.sampler.hz:g} Hz"
        )
    alloc = report.get("alloc")
    if alloc is not None:
        verdict = "clean" if alloc["clean"] else "ALLOCATING"
        print(
            f"profile: allocation windows {verdict} "
            f"({alloc['windows']} window(s), floor {alloc['size_floor']} B)"
        )
    rec = report.get("flight_recorder")
    if rec is not None:
        print(
            f"flight recorder: {len(rec['triggers'])} trigger(s), "
            f"{len(rec['snapshots'])} snapshot(s)"
        )
        for snap in rec["snapshots"]:
            print(
                f"  snapshot {snap['digest'][:16]} ({snap['reason']}) "
                f"-> {snap['path']}"
            )
    return meta


def _common_bench_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale", type=int, default=15, help="measured graph scale"
    )
    p.add_argument(
        "--save",
        type=Path,
        default=None,
        help="directory for result JSON files",
    )
    p.add_argument("--candidates", type=int, default=1000)
    _history_arg(p)


def _cmd_list() -> int:
    from repro.bench.experiments import REGISTRY

    for name in sorted(REGISTRY):
        print(name)
    return 0


def _cmd_info() -> int:
    from repro.arch import PRESETS
    from repro.arch.roofline import analyze

    for key, spec in PRESETS.items():
        point = analyze(spec)
        print(
            f"{key}: {spec.name} — {spec.cores} cores @ {spec.freq_ghz} GHz, "
            f"{spec.peak_sp_gflops} SP Gflops, {spec.measured_bw_gbs} GB/s "
            f"measured, RCMB(sp) {point.rcmb_sp:.2f}"
        )
    return 0


def _bench_config(args: argparse.Namespace):
    from repro.bench.runner import BenchConfig

    return BenchConfig(
        base_scale=args.scale,
        candidate_count=args.candidates,
        history_path=args.history,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.experiments import REGISTRY, run_experiment

    if args.experiment not in REGISTRY:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"available: {', '.join(sorted(REGISTRY))}",
            file=sys.stderr,
        )
        return 2
    result = run_experiment(args.experiment, _bench_config(args))
    print(result.render())
    if args.save:
        path = result.save(args.save)
        print(f"saved: {path}")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.bench.experiments import REGISTRY, run_experiment

    config = _bench_config(args)
    for name in sorted(REGISTRY):
        t0 = now()
        result = run_experiment(name, config)
        took = now() - t0
        print(result.render())
        print(f"[{name} in {took:.1f}s]")
        print()
        if args.save:
            result.save(args.save)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULES, deep_rule_codes, format_json, format_text, lint_paths
    from repro.errors import LintError

    if getattr(args, "rules", False):
        deep_rule_codes()  # force rule registration
        for code in sorted(RULES):
            rl = RULES[code]
            scope = " [hot-path only]" if rl.hot_path_only else ""
            scope += " [deep]" if rl.deep else ""
            print(f"{code}{scope}: {rl.summary}")
        return 0
    paths = args.paths
    if not paths:
        # Default to linting the installed package itself.
        import repro

        paths = [Path(repro.__file__).parent]
    select = getattr(args, "select", None)
    select = select.split(",") if select else None
    try:
        restrict_to = None
        if getattr(args, "changed", False):
            from repro.analysis import changed_python_files

            changed = changed_python_files(paths)
            if not changed:
                print("no changed Python files in scope")
                return 0
            # Analyze the full scope, report on the changed subset:
            # narrowing the *analysis* to changed files would silently
            # blind interprocedural rules (RPR015+) to violations whose
            # other half lives in an unchanged module.
            restrict_to = changed
        violations, checked = lint_paths(
            paths,
            select=select,
            deep=getattr(args, "deep", False),
            restrict_to=restrict_to,
        )
    except LintError as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(format_json(violations))
    elif violations:
        print(format_text(violations))
    if violations:
        print(
            f"{len(violations)} violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    if args.fmt != "json":
        print(f"{checked} file(s) checked, no issues")
    return 0


def _cmd_callgraph(args: argparse.Namespace) -> int:
    """Build the whole-program call graph; export or query it."""
    from repro.analysis.callgraph import SummaryCache, build_project
    from repro.analysis.lint import iter_python_files
    from repro.errors import CallGraphError, LintError

    paths = args.paths
    if not paths:
        import repro

        paths = [Path(repro.__file__).parent]
    cache = SummaryCache(args.cache) if args.cache else None
    try:
        files = iter_python_files(paths)
        project = build_project(files, cache=cache)
    except (CallGraphError, LintError) as exc:
        print(f"callgraph error: {exc}", file=sys.stderr)
        return 2
    if cache is not None:
        cache.save()

    if args.write_baseline:
        from repro.analysis.program import program_report

        report = program_report(project)
        payload = {
            "schema": "repro.analysis.wholeprogram_baseline/1",
            "program_rules": sorted(report),
            "stats": project.stats(),
            "violations": {
                code: {
                    path: [[ln, col, msg] for ln, col, msg in triples]
                    for path, triples in sorted(buckets.items())
                }
                for code, buckets in report.items()
                if buckets
            },
        }
        text = json.dumps(payload, indent=2) + "\n"
        Path(args.write_baseline).write_text(text, encoding="utf-8")
        n = sum(
            len(t) for b in report.values() for t in b.values()
        )
        print(
            f"baseline written to {args.write_baseline} "
            f"({n} finding(s) over {project.stats()['functions']} functions)"
        )
        return 0

    if args.who_writes:
        writers = project.who_writes(args.who_writes)
        if writers:
            for qname in writers:
                info = project.functions[qname]
                print(f"{qname}  ({info.path}:{info.line})")
        else:
            print(f"no function writes `{args.who_writes}`")
        return 0

    if args.who_calls:
        target = args.who_calls
        if target not in project.functions:
            print(f"unknown function: {target}", file=sys.stderr)
            return 2
        callers = sorted(project.callers_of(target))
        if callers:
            for qname in callers:
                info = project.functions[qname]
                print(f"{qname}  ({info.path}:{info.line})")
        else:
            print(f"no callers of `{target}`")
        return 0

    if args.fmt == "dot":
        output = project.to_dot()
    elif args.fmt == "json":
        output = project.to_json(summaries=args.summaries)
    else:
        stats = project.stats()
        lines = ["whole-program call graph"]
        lines += [f"  {key}: {stats[key]}" for key in stats]
        output = "\n".join(lines) + "\n"
        if args.summaries:
            output += project.format_summaries()
    if args.out:
        Path(args.out).write_text(output, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(output)
    return 0


def _cmd_dataflow(args: argparse.Namespace) -> int:
    """Deep-rules-only lint pass plus optional effect-summary dump."""
    from repro.analysis import (
        deep_rule_codes,
        format_json,
        format_text,
        lint_paths,
    )
    from repro.errors import LintError

    paths = args.paths
    if not paths:
        import repro

        paths = [Path(repro.__file__).parent]
    try:
        violations, checked = lint_paths(
            paths, select=deep_rule_codes(), deep=True
        )
    except LintError as exc:
        print(f"dataflow error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(format_json(violations))
    elif violations:
        print(format_text(violations))
    if args.effects:
        import ast as _ast

        from repro.analysis import format_effects, module_effects, propagate
        from repro.analysis.lint import iter_python_files

        for file in iter_python_files(paths):
            try:
                tree = _ast.parse(
                    file.read_text(encoding="utf-8"), filename=str(file)
                )
            except (OSError, SyntaxError) as exc:
                print(f"effects error: {file}: {exc}", file=sys.stderr)
                return 2
            summaries = propagate(module_effects(tree))
            if summaries:
                print(f"# {file}")
                print(format_effects(summaries))
    if violations:
        print(
            f"{len(violations)} violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    if args.fmt != "json":
        print(f"{checked} file(s) analyzed, no issues")
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.analysis import check_cost_model
    from repro.bfs import bfs_bottom_up, bfs_hybrid, bfs_top_down, pick_sources
    from repro.errors import SanitizerError
    from repro.graph import rmat

    print(
        f"generating R-MAT scale={args.scale} ef={args.edgefactor} "
        f"(seed {args.seed}) ..."
    )
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    print(f"graph: {graph!r}, source {source}, engine {args.engine}")

    rc = 0
    try:
        if args.engine == "td":
            result = bfs_top_down(graph, source, sanitize=True)
        elif args.engine == "bu":
            result = bfs_bottom_up(graph, source, sanitize=True)
        else:
            result = bfs_hybrid(
                graph, source, m=args.m, n=args.n, sanitize=True
            )
    except SanitizerError as exc:
        print(f"SANITIZER VIOLATION: {exc}", file=sys.stderr)
        rc = 1
    else:
        result.validate(graph)
        print(
            f"sanitizer: {result.num_levels} levels, "
            f"{result.num_reached} vertices, 0 invariant violations "
            f"(directions {result.directions})"
        )

    if not args.skip_units:
        failures = check_cost_model()
        if failures:
            for f in failures:
                print(f"UNITS VIOLATION: {f}", file=sys.stderr)
            rc = 1
        else:
            print(
                "units: cost model is dimensionally consistent "
                "(all level costs reduce to seconds)"
            )
    return rc


def _cmd_bfs(args: argparse.Namespace) -> int:
    from repro.arch import CPU_SANDY_BRIDGE, GPU_K20X
    from repro.bench.metrics import gteps
    from repro.bfs import bfs_bottom_up, bfs_hybrid, bfs_top_down, pick_sources
    from repro.graph import rmat
    from repro.obs import Tracer, use_tracer

    quiet = args.json
    if not quiet:
        print(
            f"generating R-MAT scale={args.scale} ef={args.edgefactor} ..."
        )
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    if not quiet:
        print(f"graph: {graph!r}, source {source}")

    # Kernel family actually in force: top-down runs never touch a
    # bottom-up kernel, so the flag is reported as such in the payload.
    kernel_family = "scan" if args.engine == "td" else args.bottom_up
    m = n = None
    if args.engine == "td":
        runner = lambda: bfs_top_down(graph, source)
    elif args.engine == "bu":
        if args.bottom_up == "tiles":
            from repro.linalg import bfs_bottom_up_tiles

            runner = lambda: bfs_bottom_up_tiles(graph, source)
        else:
            runner = lambda: bfs_bottom_up(graph, source)
    else:
        m, n = args.m, args.n
        if args.engine == "auto" and (m is None or n is None):
            from repro.bench.experiments._shared import train_default_predictor
            from repro.bench.runner import BenchConfig

            predictor = train_default_predictor(
                BenchConfig(base_scale=max(args.scale - 1, 12))
            )
            m, n = predictor.predict_mn(graph, CPU_SANDY_BRIDGE, GPU_K20X)
            if not quiet:
                print(f"predicted switching point: M={m:.1f} N={n:.1f}")
        m = 64.0 if m is None else m
        n = 512.0 if n is None else n
        runner = lambda: bfs_hybrid(
            graph, source, m=m, n=n, bottom_up=args.bottom_up
        )

    workload = f"rmat-s{args.scale}-ef{args.edgefactor}-{args.engine}"
    tracer = Tracer()
    session = _make_profile_session(
        args, tracer, command="bfs", workload=workload, source=source
    )
    if session is not None and session.recorder is not None:
        from repro.obs.profile import graph_fingerprint

        session.recorder.context["graph"] = graph_fingerprint(graph)
    with session or contextlib.nullcontext(), use_tracer(tracer):
        t0 = now()
        result = runner()
        took = now() - t0
        result.validate(graph)
        traversed = result.traversed_edges(graph)

        # The audit verdict only exists for a (M, N)-parameterized run.
        report = None
        if m is not None and not args.no_audit:
            from repro.arch.costmodel import CostModel
            from repro.bfs import profile_bfs
            from repro.obs import audit_switching_point

            profile, _ = profile_bfs(graph, source)
            report = audit_switching_point(
                profile,
                CostModel(CPU_SANDY_BRIDGE),
                m,
                n,
                count=300,
                seed=args.seed,
                scale=args.scale,
                edgefactor=args.edgefactor,
            )

    profile_meta = _finish_profile(
        session,
        getattr(args, "profile_out", Path("profile")),
        f"bfs-s{args.scale}-{args.engine}",
        quiet=quiet,
    )
    teps = traversed / took if took > 0 else 0.0
    payload = {
        "scale": args.scale,
        "edgefactor": args.edgefactor,
        "seed": args.seed,
        "engine": args.engine,
        "kernel_family": kernel_family,
        "source": source,
        "m": m,
        "n": n,
        "levels": result.num_levels,
        "reached": result.num_reached,
        "directions": list(result.directions),
        "traversed_edges": int(traversed),
        "seconds": took,
        "gteps": gteps(traversed, took),
        "validated": True,
        # Shared schema with history entries (see repro.obs.history):
        # the registry snapshot and the audit verdict dict.
        "metrics": tracer.metrics.snapshot(),
        "audit": None if report is None else report.as_dict(),
        **profile_meta,
    }
    _append_history(
        args.history,
        "bfs",
        workload,
        tracer=tracer,
        teps=teps,
        audit=report,
        quiet=quiet,
        seed=args.seed,
        m=m,
        n=n,
        **profile_meta,
    )
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"levels={result.num_levels} reached={result.num_reached} "
        f"directions={result.directions}"
    )
    print(
        f"wall-clock {took:.3f}s, "
        f"{gteps(traversed, took):.4f} GTEPS (validated)"
    )
    if report is not None:
        print()
        print(report.render())
    return 0


def _append_history(
    path,
    kind: str,
    workload: str,
    *,
    tracer=None,
    teps=None,
    audit=None,
    quiet: bool = False,
    **meta,
):
    """Append one run to the JSONL history store when ``path`` is set."""
    if path is None:
        return None
    from repro.obs.history import HistoryStore, snapshot_run

    record = snapshot_run(
        kind, workload, tracer=tracer, teps=teps, audit=audit, **meta
    )
    store = HistoryStore(path)
    store.append(record)
    if not quiet:
        print(f"history: appended {kind}/{workload} to {store.path}")
    return record


def _cmd_graph500(args: argparse.Namespace) -> int:
    from repro.bfs import bfs_bottom_up, bfs_top_down
    from repro.graph500 import HybridEngine, run_graph500
    from repro.obs import Tracer, use_tracer

    hybrid = args.engine == "hybrid"
    engine = {
        "td": bfs_top_down,
        "bu": bfs_bottom_up,
        # Workspace-caching engine: the 64-root loop reuses one set of
        # graph-sized arrays instead of allocating per traversal.
        "hybrid": HybridEngine(),
    }[args.engine]
    if not args.json:
        print(
            f"running Graph 500 flow: SCALE={args.scale} "
            f"edgefactor={args.edgefactor} NBFS={args.roots} "
            f"engine={args.engine} ..."
        )
    workload = f"rmat-s{args.scale}-ef{args.edgefactor}-r{args.roots}"
    tracer = Tracer()
    session = _make_profile_session(
        args, tracer, command="graph500", workload=workload
    )
    with session or contextlib.nullcontext(), use_tracer(tracer):
        result = run_graph500(
            args.scale,
            args.edgefactor,
            num_roots=args.roots,
            engine=engine,
            seed=args.seed,
            tracer=tracer,
            recorder=None if session is None else session.recorder,
        )
        report = None
        if hybrid and not args.no_audit:
            report = _graph500_audit(args, tracer)

    profile_meta = _finish_profile(
        session,
        getattr(args, "profile_out", Path("profile")),
        f"graph500-s{args.scale}-{args.engine}",
        quiet=args.json,
    )
    payload = {
        "scale": result.scale,
        "edgefactor": result.edgefactor,
        "nbfs": result.num_roots,
        "engine": args.engine,
        "seed": args.seed,
        "construction_seconds": result.construction_seconds,
        "validated": result.validated,
        "roots": [int(r) for r in result.roots],
        "time_stats": result.time_stats.as_dict(),
        "teps_stats": result.teps_stats.as_dict(),
        "harmonic_mean_teps": result.harmonic_mean_teps,
        # Shared schema with history entries (see repro.obs.history).
        "metrics": tracer.metrics.snapshot(),
        "audit": None if report is None else report.as_dict(),
        **profile_meta,
    }
    _append_history(
        args.history,
        "graph500",
        workload,
        tracer=tracer,
        teps=result.harmonic_mean_teps,
        audit=report,
        quiet=args.json,
        seed=args.seed,
        engine=args.engine,
        **profile_meta,
    )
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(result.summary())
    print(
        f"\nheadline: {result.harmonic_mean_teps / 1e9:.4f} GTEPS "
        "(harmonic mean, all roots validated)"
    )
    if report is not None:
        print()
        print(report.render())
    return 0


def _graph500_audit(args: argparse.Namespace, tracer):
    """The switching-point verdict for a graph500 hybrid run: audit the
    engine's (M, N) against the sweep on a measured profile of the same
    graph."""
    from repro.arch import CPU_SANDY_BRIDGE
    from repro.arch.costmodel import CostModel
    from repro.bfs import pick_sources, profile_bfs
    from repro.graph import rmat
    from repro.graph500 import HybridEngine
    from repro.obs import audit_switching_point

    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    profile, _ = profile_bfs(graph, source)
    engine_defaults = HybridEngine()
    return audit_switching_point(
        profile,
        CostModel(CPU_SANDY_BRIDGE),
        engine_defaults.m,
        engine_defaults.n,
        count=getattr(args, "audit_candidates", 300),
        seed=args.seed,
        tracer=tracer,
        scale=args.scale,
        edgefactor=args.edgefactor,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.arch import CPU_SANDY_BRIDGE
    from repro.bfs import (
        ParallelBFS,
        bfs_bottom_up,
        bfs_hybrid,
        bfs_top_down,
        pick_sources,
        profile_bfs,
    )
    from repro.graph import rmat
    from repro.obs import (
        Tracer,
        audit_switching_point,
        use_tracer,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.arch.costmodel import CostModel

    print(
        f"generating R-MAT scale={args.scale} ef={args.edgefactor} "
        f"(seed {args.seed}) ..."
    )
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    print(f"graph: {graph!r}, source {source}, engine {args.engine}")

    workload = f"rmat-s{args.scale}-ef{args.edgefactor}-{args.engine}"
    tracer = Tracer()
    session = _make_profile_session(
        args, tracer, command="trace", workload=workload, source=source
    )
    if session is not None and session.recorder is not None:
        from repro.obs.profile import graph_fingerprint

        session.recorder.context["graph"] = graph_fingerprint(graph)
    with session or contextlib.nullcontext(), use_tracer(tracer):
        if args.engine == "td":
            result = bfs_top_down(graph, source)
        elif args.engine == "bu":
            result = bfs_bottom_up(graph, source)
        elif args.engine == "parallel":
            from repro.bfs.hybrid import MNPolicy

            with ParallelBFS(
                num_threads=args.threads,
                policy=MNPolicy(m=args.m, n=args.n),
            ) as engine:
                result = engine.run(graph, source)
        else:
            result = bfs_hybrid(graph, source, m=args.m, n=args.n)
        result.validate(graph)

        report = None
        if not args.no_audit:
            profile, _ = profile_bfs(graph, source)
            report = audit_switching_point(
                profile,
                CostModel(CPU_SANDY_BRIDGE),
                args.m,
                args.n,
                count=args.audit_candidates,
                seed=args.seed,
                scale=args.scale,
                edgefactor=args.edgefactor,
            )

    meta = {
        "scale": args.scale,
        "edgefactor": args.edgefactor,
        "seed": args.seed,
        "engine": args.engine,
        "source": source,
    }
    trace_path = args.out.with_name(args.out.name + ".trace.json")
    jsonl_path = args.out.with_name(args.out.name + ".jsonl")
    write_chrome_trace(tracer, trace_path, **meta)
    events = validate_chrome_trace(trace_path)
    lines = write_jsonl(tracer, jsonl_path, **meta)

    print()
    print(f"{'span':<24} {'count':>5} {'total_ms':>10} {'mean_ms':>10}")
    for row in tracer.summary_rows():
        print(
            f"{row['span']:<24} {row['count']:>5} "
            f"{row['total_ms']:>10.3f} {row['mean_ms']:>10.3f}"
        )
    print(
        f"\nlevels={result.num_levels} reached={result.num_reached} "
        f"directions={result.directions}"
    )
    if report is not None:
        print()
        print(report.render())
    print(
        f"\nwrote {trace_path} ({events} trace events, validated) and "
        f"{jsonl_path} ({lines} lines)"
    )
    profile_meta = _finish_profile(
        session,
        getattr(args, "profile_out", Path("profile")),
        f"trace-s{args.scale}-{args.engine}",
        quiet=False,
    )
    _append_history(
        args.history,
        "trace",
        workload,
        tracer=tracer,
        audit=report,
        seed=args.seed,
        m=args.m,
        n=args.n,
        **profile_meta,
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.arch import CPU_SANDY_BRIDGE, TENSOR_TILE
    from repro.arch.costmodel import CostModel
    from repro.bench.metrics import gteps
    from repro.bfs import pick_sources, profile_bfs
    from repro.bfs.timing import timed_bfs
    from repro.bfs.workspace import BFSWorkspace
    from repro.graph import rmat
    from repro.obs import use_tracer, validate_chrome_trace
    from repro.obs.profile import (
        ProfileSession,
        explain_traversal,
        graph_fingerprint,
        validate_collapsed,
        validate_snapshot,
    )

    quiet = args.json
    if args.repeat < 1:
        print(f"--repeat must be >= 1, got {args.repeat}", file=sys.stderr)
        return 2
    if not quiet:
        print(
            f"generating R-MAT scale={args.scale} ef={args.edgefactor} "
            f"(seed {args.seed}) ..."
        )
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    workload = f"rmat-s{args.scale}-ef{args.edgefactor}-{args.engine}"
    if not quiet:
        print(
            f"graph: {graph!r}, source {source}, engine {args.engine}, "
            f"{args.repeat} traversal(s) at {args.hz:g} Hz"
        )

    recorder_on = args.flight_recorder or args.inject_anomaly
    snapshot_dir = args.snapshot_dir
    if recorder_on and snapshot_dir is None:
        snapshot_dir = args.out / "snapshots"
    session = ProfileSession(
        sampler=not args.no_sampler,
        hz=args.hz,
        alloc=not args.no_alloc,
        # "Graph-sized" is the allocation-freedom bar: anything smaller
        # than one vertex-indexed array is per-level churn, not a
        # falsification of the warm-workspace claim.
        size_floor=8 * graph.num_vertices,
        recorder=recorder_on,
        snapshot_dir=snapshot_dir,
        recorder_kwargs={
            # The baseline must be learned before the injected span
            # closes, so cap the warmup below the real-run count.
            "warmup": min(3, args.repeat),
            "context": {
                "command": "profile",
                "workload": workload,
                "source": source,
                "graph": graph_fingerprint(graph),
            },
        },
    )

    kwargs: dict = {"bottom_up": args.bottom_up}
    if args.engine in ("td", "bu"):
        kwargs["direction"] = args.engine
    else:
        kwargs["m"] = args.m
        kwargs["n"] = args.n
    ws = BFSWorkspace(graph.num_vertices)
    # One untracked warm-up traversal grows the workspace's scratch
    # buffers to their steady-state sizes, so the profiled windows
    # measure the warm kernels (the allocation-freedom claim under
    # test), not first-run buffer growth.
    timed_bfs(graph, source, workspace=ws, **kwargs)
    with session, use_tracer(session.tracer):
        for _ in range(args.repeat):
            run = timed_bfs(
                graph,
                source,
                workspace=ws,
                tracer=session.tracer,
                **kwargs,
            )
        run.result.validate(graph)
        if args.inject_anomaly:
            # A synthetic traversal root 3x slower than the slowest
            # real one: must clear the recorder's 2.5x-median bar.
            worst = max(
                r.duration
                for r in session.tracer.spans()
                if r.name == "bfs.timed"
            )
            session.tracer.add_span(
                "bfs.timed", 0.0, 3.0 * worst, injected=True
            )

    # The explain join: profiled counters (model input) + the last
    # run's measured level seconds.  The profile traversal runs after
    # the session so it cannot pollute the allocation windows.
    profile, _ = profile_bfs(graph, source)
    model = CostModel(CPU_SANDY_BRIDGE)
    tile_model = (
        CostModel(TENSOR_TILE) if args.bottom_up == "tiles" else None
    )
    report = explain_traversal(
        run,
        profile,
        model,
        tile_model=tile_model,
        tracer=session.tracer,
    )

    stem = f"profile-s{args.scale}-{args.engine}"
    paths = session.write_artifacts(args.out, stem)
    samples = None
    if "collapsed" in paths:
        samples = validate_collapsed(
            paths["collapsed"].read_text(encoding="utf-8")
        )
    events = validate_chrome_trace(paths["trace"])
    for snap in session.recorder.snapshots if session.recorder else ():
        validate_snapshot(snap.path)

    session_report = session.report()
    traversed = run.result.traversed_edges(graph)
    teps = (
        traversed / run.total_seconds if run.total_seconds > 0 else 0.0
    )
    meta: dict = {
        "engine": args.engine,
        "kernel_family": args.bottom_up,
        "repeat": args.repeat,
        "hz": args.hz,
        "profile": session_report,
        "explain": report.as_dict(),
    }
    if session.recorder is not None and session.recorder.snapshots:
        meta["snapshots"] = [
            s.as_dict() for s in session.recorder.snapshots
        ]
    _append_history(
        args.history,
        "profile",
        workload,
        tracer=session.tracer,
        teps=teps,
        quiet=quiet,
        seed=args.seed,
        **meta,
    )

    if args.json:
        payload = {
            "scale": args.scale,
            "edgefactor": args.edgefactor,
            "seed": args.seed,
            "source": source,
            "levels": run.result.num_levels,
            "reached": run.result.num_reached,
            "gteps": gteps(traversed, run.total_seconds),
            "samples": samples,
            "trace_events": events,
            "artifacts": {k: str(p) for k, p in paths.items()},
            **meta,
        }
        print(json.dumps(payload, indent=2))
    else:
        print()
        print(report.render())
        print()
        if samples is not None:
            top = sorted(
                session.sampler.span_seconds().items(),
                key=lambda kv: kv[1],
                reverse=True,
            )[:4]
            where = ", ".join(f"{tag} {s:.3f}s" for tag, s in top)
            print(f"sampler: {samples} sample(s); hottest spans: {where}")
        alloc = session_report.get("alloc")
        if alloc is not None:
            verdict = (
                "clean — the warm workspace allocated nothing graph-sized"
                if alloc["clean"]
                else "ALLOCATING (see per-kernel rows in the history meta)"
            )
            print(f"alloc: {verdict} ({alloc['windows']} window(s))")
        rec = session_report.get("flight_recorder")
        if rec is not None:
            print(
                f"flight recorder: {len(rec['triggers'])} trigger(s), "
                f"{len(rec['snapshots'])} snapshot(s)"
            )
            for snap in rec["snapshots"]:
                print(
                    f"  snapshot {snap['digest'][:16]} ({snap['reason']})"
                    f" -> {snap['path']} (validated)"
                )
        wrote = ", ".join(str(p) for p in paths.values())
        print(f"wrote {wrote} ({events} trace events, validated)")

    if args.inject_anomaly and not (
        session.recorder and session.recorder.snapshots
    ):
        print(
            "inject-anomaly: no flight-recorder snapshot fired",
            file=sys.stderr,
        )
        return 1
    return 0


def _history_store(args: argparse.Namespace):
    from repro.obs.history import HistoryStore

    return HistoryStore(args.history)


def _cmd_monitor(args: argparse.Namespace) -> int:
    if args.monitor_command == "record":
        return _cmd_monitor_record(args)
    if args.monitor_command == "check":
        return _cmd_monitor_check(args)
    if args.monitor_command == "report":
        return _cmd_monitor_report(args)
    if args.monitor_command == "drift":
        return _cmd_monitor_drift(args)
    print("usage: repro-bfs monitor {record,check,report,drift} ...",
          file=sys.stderr)
    return 2


def _cmd_monitor_record(args: argparse.Namespace) -> int:
    from repro.arch import CPU_SANDY_BRIDGE
    from repro.arch.costmodel import CostModel
    from repro.bfs import pick_sources, profile_bfs
    from repro.graph import rmat
    from repro.graph500 import HybridEngine, run_graph500
    from repro.obs import Tracer, audit_switching_point, use_tracer

    workload = f"rmat-s{args.scale}-ef{args.edgefactor}-r{args.roots}"
    print(f"recording graph500/{workload} (m={args.m} n={args.n}) ...")
    tracer = Tracer()
    with use_tracer(tracer):
        result = run_graph500(
            args.scale,
            args.edgefactor,
            num_roots=args.roots,
            engine=HybridEngine(m=args.m, n=args.n),
            seed=args.seed,
            tracer=tracer,
        )
        graph = rmat(args.scale, args.edgefactor, seed=args.seed)
        source = int(pick_sources(graph, 1, seed=args.seed)[0])
        profile, _ = profile_bfs(graph, source)
        report = audit_switching_point(
            profile,
            CostModel(CPU_SANDY_BRIDGE),
            args.m,
            args.n,
            count=args.audit_candidates,
            seed=args.seed,
            tracer=tracer,
            scale=args.scale,
            edgefactor=args.edgefactor,
        )
    record = _append_history(
        args.history,
        "graph500",
        workload,
        tracer=tracer,
        teps=result.harmonic_mean_teps,
        audit=report,
        seed=args.seed,
        m=args.m,
        n=args.n,
    )
    print(
        f"  harmonic-mean TEPS {record.teps:.4g}, audit slowdown "
        f"{report.slowdown:.3f}x ({'MISTUNED' if report.is_mistuned() else 'well-tuned'})"
    )
    return 0


def _cmd_monitor_check(args: argparse.Namespace) -> int:
    from repro.errors import MonitorError
    from repro.obs.monitor import detect_regressions

    store = _history_store(args)
    records = store.read()
    if store.last_skipped and not args.json:
        for lineno, reason in store.last_skipped:
            print(
                f"note: skipped corrupt history line {lineno}: {reason}",
                file=sys.stderr,
            )
    try:
        report = detect_regressions(
            records,
            window=args.window,
            min_samples=args.min_samples,
            kind=args.kind,
            workload=args.workload,
        )
    except MonitorError as exc:
        print(f"monitor check: {exc}", file=sys.stderr)
        return 2
    print(report.to_json() if args.json else report.render())
    return report.exit_code


def _cmd_monitor_report(args: argparse.Namespace) -> int:
    store = _history_store(args)
    records = store.read()
    if args.tail:
        records = records[-args.tail:]
    if args.json:
        print(json.dumps([r.as_dict() for r in records], indent=2))
        return 0
    if not records:
        print(f"history {store.path}: no records")
        return 0
    print(f"history {store.path}: {len(records)} record(s)")
    header = (
        f"{'timestamp':<26} {'kind':<16} {'workload':<28} "
        f"{'teps':>10} {'audit':>8}"
    )
    print(header)
    for r in records:
        teps = "-" if r.teps is None else f"{r.teps:.3g}"
        slowdown = "-"
        if isinstance(r.audit, dict) and isinstance(
            r.audit.get("slowdown"), (int, float)
        ):
            slowdown = f"{r.audit['slowdown']:.3f}x"
        print(
            f"{r.timestamp:<26} {r.kind:<16} {r.workload:<28} "
            f"{teps:>10} {slowdown:>8}"
        )
    if store.last_skipped:
        print(f"({len(store.last_skipped)} corrupt line(s) skipped)")
    return 0


def _cmd_monitor_drift(args: argparse.Namespace) -> int:
    from repro.obs.monitor import DriftMonitor

    store = _history_store(args)
    monitor = DriftMonitor(
        window=args.window,
        tolerance=args.tolerance,
        min_runs=args.min_runs,
    )
    audited = 0
    for record in store.read():
        if not isinstance(record.audit, dict):
            continue
        slowdown = record.audit.get("slowdown")
        if not isinstance(slowdown, (int, float)) or slowdown < 1.0:
            continue
        arch = str(record.audit.get("arch") or "default")
        family = str(record.meta.get("family") or record.workload)
        monitor.observe(slowdown, family=family, arch=arch)
        audited += 1
    if args.json:
        print(
            json.dumps(
                {
                    "audited_runs": audited,
                    "tolerance": args.tolerance,
                    "series": monitor.state(),
                    "alerts": [a.as_dict() for a in monitor.alerts],
                },
                indent=2,
            )
        )
        return 1 if monitor.alerts else 0
    print(
        f"drift: replayed {audited} audited run(s) from {store.path} "
        f"(window {args.window}, tolerance {args.tolerance}x)"
    )
    for key, state in monitor.state().items():
        flag = "DRIFTING" if state["drifting"] else "ok"
        print(
            f"  {key}: {state['runs']} run(s), windowed mean "
            f"{state['mean_slowdown']:.3f}x — {flag}"
        )
    for alert in monitor.alerts:
        print(f"  {alert.render()}")
    return 1 if monitor.alerts else 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    from repro.graph500 import HybridEngine, run_graph500
    from repro.obs import Tracer, use_tracer
    from repro.obs.openmetrics import serve

    print(
        f"populating registry: graph500 SCALE={args.scale} "
        f"NBFS={args.roots} ..."
    )
    tracer = Tracer()
    with use_tracer(tracer):
        run_graph500(
            args.scale,
            args.edgefactor,
            num_roots=args.roots,
            engine=HybridEngine(),
            seed=args.seed,
            tracer=tracer,
        )
    server = serve(tracer.metrics, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving OpenMetrics at http://{host}:{port}/metrics")
    # SIGINT/SIGTERM must end serve_forever() without a traceback and
    # still run server_close() — a signal can land inside accept(),
    # where a bare KeyboardInterrupt would otherwise escape.
    import signal

    interrupted = {"by": None}

    def _graceful(signum, frame):
        interrupted["by"] = signal.Signals(signum).name
        raise KeyboardInterrupt

    previous = {
        sig: signal.signal(sig, _graceful)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        if args.once:
            server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        print(
            f"serve-metrics: shutting down "
            f"({interrupted['by'] or 'interrupt'})"
        )
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.server_close()
    return 0


def _parse_slo_policies(args: argparse.Namespace) -> list:
    from repro.obs.live import SLOPolicy

    specs = args.policy if args.policy else list(DEFAULT_SLO_SPECS)
    return [
        SLOPolicy.parse(
            spec,
            window_seconds=args.slo_window,
            fast_windows=args.fast_windows,
            slow_windows=args.slow_windows,
            burn_threshold=args.burn_threshold,
        )
        for spec in specs
    ]


def _print_live_summary(collector) -> None:
    print(
        f"live: {collector.frames} frame(s) "
        f"({collector.dropped} dropped), "
        f"{len(collector.channels)} channel(s), "
        f"{len(collector.alerts)} alert(s)"
    )
    for alert in collector.alerts:
        print(f"  {alert.describe()}")


def _cmd_top(args: argparse.Namespace) -> int:
    import threading

    from repro.obs import Tracer, use_tracer
    from repro.obs.live import Collector, Dashboard, run_traced_pair

    policies = _parse_slo_policies(args)
    tracer = Tracer()
    ansi = sys.stdout.isatty() and not args.once
    with use_tracer(tracer), Collector(
        tracer, policies=policies, window_seconds=args.slo_window
    ) as collector:
        done = threading.Event()
        failure: list[BaseException] = []

        def _work() -> None:
            try:
                run_traced_pair(
                    args.scale,
                    edgefactor=args.edgefactor,
                    num_roots=args.roots,
                    children=args.children,
                    child_delay=args.child_delay,
                    collector=collector,
                    tracer=tracer,
                    seed=args.seed,
                )
            except BaseException as exc:  # surfaced after the loop
                failure.append(exc)
            finally:
                done.set()

        worker = threading.Thread(target=_work, name="workload", daemon=True)
        worker.start()
        dashboard = Dashboard(
            collector, interval=args.interval, ansi=ansi
        )
        if args.once:
            done.wait(args.duration)
            worker.join(5.0)
            collector.close(timeout=5.0)
            collector.evaluate()
            dashboard.refresh()
        else:
            dashboard.run(done.is_set, max_seconds=args.duration)
            worker.join(5.0)
            collector.close(timeout=5.0)
            collector.evaluate()
        if failure:
            raise failure[0]
    _print_live_summary(collector)
    return 0


def _cmd_live_record(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, use_tracer
    from repro.obs.live import (
        CaptureFile,
        ChannelExporter,
        Collector,
        run_traced_pair,
    )

    policies = _parse_slo_policies(args)
    tracer = Tracer()
    args.out.parent.mkdir(parents=True, exist_ok=True)
    writer = CaptureFile(args.out)
    # The tee exporter listens on the *parent* tracer, so locally
    # recorded spans and adopted child spans alike land in the capture.
    tee = ChannelExporter(writer, tracer, source="main")
    flight = None
    if args.flight_dir is not None:
        from repro.obs.profile import FlightRecorder

        flight = FlightRecorder(
            tracer,
            snapshot_dir=args.flight_dir,
            context={"workload": f"live-s{args.scale}"},
        )
        tracer.add_listener(flight)
    try:
        with use_tracer(tracer), Collector(
            tracer, policies=policies, window_seconds=args.slo_window
        ) as collector:
            tee.hello()
            try:
                tracer.add_listener(tee)
                run_traced_pair(
                    args.scale,
                    edgefactor=args.edgefactor,
                    num_roots=args.roots,
                    children=args.children,
                    child_delay=args.child_delay,
                    collector=collector,
                    tracer=tracer,
                    seed=args.seed,
                )
                collector.close(timeout=10.0)
                collector.evaluate()
            finally:
                # An aborted run still writes the metrics_final/bye
                # handshake into the capture before the file closes,
                # so partial captures stay protocol-conformant.
                tee.close()
    finally:
        writer.close()
        if flight is not None:
            tracer.remove_listener(flight)
    print(f"wrote {writer.frames} frame(s) to {args.out}")
    _print_live_summary(collector)
    if flight is not None:
        for info in flight.snapshots:
            print(f"  snapshot: {info.path} ({info.reason})")
    return 0


def _cmd_live_check(args: argparse.Namespace) -> int:
    from repro.errors import LiveError
    from repro.obs import Tracer
    from repro.obs.live import Collector

    policies = _parse_slo_policies(args)
    tracer = Tracer()
    with Collector(
        tracer, policies=policies, window_seconds=args.slo_window
    ) as collector:
        try:
            alerts = collector.replay(
                args.capture,
                strict=True,
                conformance=(
                    "strict"
                    if getattr(args, "strict_protocol", False)
                    else None
                ),
            )
        except (OSError, LiveError) as exc:
            # ProtocolError is a LiveError: a non-conformant handshake
            # fails the gate the same way a corrupt capture does.
            print(f"live check: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(
            json.dumps(
                {
                    "capture": str(args.capture),
                    "frames": collector.frames,
                    "dropped": collector.dropped,
                    "policies": [p.spec() for p in policies],
                    "alerts": [a.as_dict() for a in alerts],
                },
                indent=2,
            )
        )
        return 1 if alerts else 0
    verdict = "FAIL" if alerts else "ok"
    print(
        f"live check: {args.capture} — {collector.frames} frame(s), "
        f"{len(policies)} policy(ies) — {verdict}"
    )
    for alert in alerts:
        print(f"  {alert.describe()}")
    return 1 if alerts else 0


def _cmd_protocols(args: argparse.Namespace) -> int:
    """List/export the typestate protocol state machines."""
    from repro.analysis.typestate import PROTOCOLS, get_protocol
    from repro.errors import AnalysisError

    try:
        if args.machine is not None:
            specs = [get_protocol(args.machine)]
        else:
            specs = [PROTOCOLS[name] for name in sorted(PROTOCOLS)]
    except AnalysisError as exc:
        print(f"protocols: {exc}", file=sys.stderr)
        return 2
    if args.dot_dir is not None:
        args.dot_dir.mkdir(parents=True, exist_ok=True)
        for spec in specs:
            out = args.dot_dir / f"{spec.name}.dot"
            out.write_text(spec.to_dot(), encoding="utf-8")
            print(f"wrote {out}")
        return 0
    if args.fmt == "dot":
        if len(specs) != 1:
            print(
                "protocols: --format dot needs --machine (or use "
                "--dot-dir for all machines)",
                file=sys.stderr,
            )
            return 2
        print(specs[0].to_dot())
        return 0
    if args.fmt == "json":
        print(json.dumps([spec.as_dict() for spec in specs], indent=2))
        return 0
    for spec in specs:
        accepting = ", ".join(sorted(spec.accepting))
        print(f"{spec.name} — {spec.subject}")
        print(f"  {spec.description}")
        print(
            f"  states: {', '.join(spec.states)} "
            f"(initial: {spec.initial}; accepting: {accepting})"
        )
        rules = [r for r in (spec.owner_rule, spec.raise_rule) if r]
        if rules:
            print(f"  lint rules: {', '.join(dict.fromkeys(rules))}")
        for state, event, nxt in spec.transitions:
            print(f"    {state} --{event}--> {nxt}")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    if args.live_command == "record":
        return _cmd_live_record(args)
    if args.live_command == "check":
        return _cmd_live_check(args)
    print("usage: repro-bfs live {record,check} ...", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "bfs":
        return _cmd_bfs(args)
    if args.command == "graph500":
        return _cmd_graph500(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "serve-metrics":
        return _cmd_serve_metrics(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "live":
        return _cmd_live(args)
    if args.command == "protocols":
        return _cmd_protocols(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "callgraph":
        return _cmd_callgraph(args)
    if args.command == "dataflow":
        return _cmd_dataflow(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
