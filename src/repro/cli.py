"""Command-line interface: ``repro-bfs`` / ``python -m repro``.

Subcommands::

    repro-bfs list                       # available experiments
    repro-bfs run fig08 [--scale 15] [--save DIR]
    repro-bfs all [--scale 15] [--save DIR]
    repro-bfs bfs --scale 16 --edgefactor 16 [--m 64 --n 512]
    repro-bfs info                       # architecture presets

``run``/``all`` regenerate the paper's tables and figures and print
them with paper-vs-measured notes; ``bfs`` runs a real traversal on
this machine and reports wall-clock TEPS.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro-bfs",
        description="Heuristic cross-architecture BFS combination "
        "(ICPP'14 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("info", help="show architecture presets")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (see 'list')")
    _common_bench_args(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    _common_bench_args(all_p)

    g5_p = sub.add_parser(
        "graph500", help="run the Graph 500 benchmark flow on this machine"
    )
    g5_p.add_argument("--scale", type=int, default=16)
    g5_p.add_argument("--edgefactor", type=int, default=16)
    g5_p.add_argument("--roots", type=int, default=16)
    g5_p.add_argument("--seed", type=int, default=0)
    g5_p.add_argument(
        "--engine",
        choices=("td", "bu", "hybrid"),
        default="hybrid",
    )

    lint_p = sub.add_parser(
        "lint", help="run the repro static-analysis rules (RPR001..)"
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: the installed package)",
    )
    lint_p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format",
    )
    lint_p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    lint_p.add_argument(
        "--rules",
        action="store_true",
        help="list the registered rules and exit",
    )

    san_p = sub.add_parser(
        "sanitize",
        help="run a BFS under the runtime sanitizer + units audit",
    )
    san_p.add_argument("--scale", type=int, default=14)
    san_p.add_argument("--edgefactor", type=int, default=16)
    san_p.add_argument("--seed", type=int, default=0)
    san_p.add_argument(
        "--engine", choices=("td", "bu", "hybrid"), default="hybrid"
    )
    san_p.add_argument("--m", type=float, default=64.0, help="threshold M")
    san_p.add_argument("--n", type=float, default=512.0, help="threshold N")
    san_p.add_argument(
        "--skip-units",
        action="store_true",
        help="skip the cost-model dimensional-analysis audit",
    )

    bfs_p = sub.add_parser("bfs", help="run a real BFS on this machine")
    bfs_p.add_argument("--scale", type=int, default=16)
    bfs_p.add_argument("--edgefactor", type=int, default=16)
    bfs_p.add_argument("--seed", type=int, default=0)
    bfs_p.add_argument("--m", type=float, default=None, help="threshold M")
    bfs_p.add_argument("--n", type=float, default=None, help="threshold N")
    bfs_p.add_argument(
        "--engine",
        choices=("td", "bu", "hybrid", "auto"),
        default="auto",
        help="'auto' predicts (M, N) with the regression model",
    )
    return parser


def _common_bench_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale", type=int, default=15, help="measured graph scale"
    )
    p.add_argument(
        "--save",
        type=Path,
        default=None,
        help="directory for result JSON files",
    )
    p.add_argument("--candidates", type=int, default=1000)


def _cmd_list() -> int:
    from repro.bench.experiments import REGISTRY

    for name in sorted(REGISTRY):
        print(name)
    return 0


def _cmd_info() -> int:
    from repro.arch import PRESETS
    from repro.arch.roofline import analyze

    for key, spec in PRESETS.items():
        point = analyze(spec)
        print(
            f"{key}: {spec.name} — {spec.cores} cores @ {spec.freq_ghz} GHz, "
            f"{spec.peak_sp_gflops} SP Gflops, {spec.measured_bw_gbs} GB/s "
            f"measured, RCMB(sp) {point.rcmb_sp:.2f}"
        )
    return 0


def _bench_config(args: argparse.Namespace):
    from repro.bench.runner import BenchConfig

    return BenchConfig(
        base_scale=args.scale, candidate_count=args.candidates
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.experiments import REGISTRY, run_experiment

    if args.experiment not in REGISTRY:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"available: {', '.join(sorted(REGISTRY))}",
            file=sys.stderr,
        )
        return 2
    result = run_experiment(args.experiment, _bench_config(args))
    print(result.render())
    if args.save:
        path = result.save(args.save)
        print(f"saved: {path}")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.bench.experiments import REGISTRY, run_experiment

    config = _bench_config(args)
    for name in sorted(REGISTRY):
        t0 = time.perf_counter()
        result = run_experiment(name, config)
        took = time.perf_counter() - t0
        print(result.render())
        print(f"[{name} in {took:.1f}s]")
        print()
        if args.save:
            result.save(args.save)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULES, format_json, format_text, lint_paths
    from repro.errors import LintError

    if args.rules:
        for code in sorted(RULES):
            rl = RULES[code]
            scope = " [hot-path only]" if rl.hot_path_only else ""
            print(f"{code}{scope}: {rl.summary}")
        return 0
    paths = args.paths
    if not paths:
        # Default to linting the installed package itself.
        import repro

        paths = [Path(repro.__file__).parent]
    select = args.select.split(",") if args.select else None
    try:
        violations, checked = lint_paths(paths, select=select)
    except LintError as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(format_json(violations))
    elif violations:
        print(format_text(violations))
    if violations:
        print(
            f"{len(violations)} violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    if args.fmt != "json":
        print(f"{checked} file(s) checked, no issues")
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.analysis import check_cost_model
    from repro.bfs import bfs_bottom_up, bfs_hybrid, bfs_top_down, pick_sources
    from repro.errors import SanitizerError
    from repro.graph import rmat

    print(
        f"generating R-MAT scale={args.scale} ef={args.edgefactor} "
        f"(seed {args.seed}) ..."
    )
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    print(f"graph: {graph!r}, source {source}, engine {args.engine}")

    rc = 0
    try:
        if args.engine == "td":
            result = bfs_top_down(graph, source, sanitize=True)
        elif args.engine == "bu":
            result = bfs_bottom_up(graph, source, sanitize=True)
        else:
            result = bfs_hybrid(
                graph, source, m=args.m, n=args.n, sanitize=True
            )
    except SanitizerError as exc:
        print(f"SANITIZER VIOLATION: {exc}", file=sys.stderr)
        rc = 1
    else:
        result.validate(graph)
        print(
            f"sanitizer: {result.num_levels} levels, "
            f"{result.num_reached} vertices, 0 invariant violations "
            f"(directions {result.directions})"
        )

    if not args.skip_units:
        failures = check_cost_model()
        if failures:
            for f in failures:
                print(f"UNITS VIOLATION: {f}", file=sys.stderr)
            rc = 1
        else:
            print(
                "units: cost model is dimensionally consistent "
                "(all level costs reduce to seconds)"
            )
    return rc


def _cmd_bfs(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.arch import CPU_SANDY_BRIDGE, GPU_K20X
    from repro.bench.metrics import gteps
    from repro.bfs import bfs_bottom_up, bfs_hybrid, bfs_top_down, pick_sources
    from repro.graph import rmat

    print(f"generating R-MAT scale={args.scale} ef={args.edgefactor} ...")
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    print(f"graph: {graph!r}, source {source}")

    if args.engine == "td":
        runner = lambda: bfs_top_down(graph, source)
    elif args.engine == "bu":
        runner = lambda: bfs_bottom_up(graph, source)
    else:
        m, n = args.m, args.n
        if args.engine == "auto" and (m is None or n is None):
            from repro.bench.experiments._shared import train_default_predictor
            from repro.bench.runner import BenchConfig

            predictor = train_default_predictor(
                BenchConfig(base_scale=max(args.scale - 1, 12))
            )
            m, n = predictor.predict_mn(graph, CPU_SANDY_BRIDGE, GPU_K20X)
            print(f"predicted switching point: M={m:.1f} N={n:.1f}")
        m = 64.0 if m is None else m
        n = 512.0 if n is None else n
        runner = lambda: bfs_hybrid(graph, source, m=m, n=n)

    t0 = time.perf_counter()
    result = runner()
    took = time.perf_counter() - t0
    result.validate(graph)
    print(
        f"levels={result.num_levels} reached={result.num_reached} "
        f"directions={result.directions}"
    )
    print(
        f"wall-clock {took:.3f}s, "
        f"{gteps(result.traversed_edges(graph), took):.4f} GTEPS (validated)"
    )
    return 0


def _cmd_graph500(args: argparse.Namespace) -> int:
    from repro.bfs import bfs_bottom_up, bfs_top_down
    from repro.graph500 import HybridEngine, run_graph500

    engine = {
        "td": bfs_top_down,
        "bu": bfs_bottom_up,
        # Workspace-caching engine: the 64-root loop reuses one set of
        # graph-sized arrays instead of allocating per traversal.
        "hybrid": HybridEngine(),
    }[args.engine]
    print(
        f"running Graph 500 flow: SCALE={args.scale} "
        f"edgefactor={args.edgefactor} NBFS={args.roots} "
        f"engine={args.engine} ..."
    )
    result = run_graph500(
        args.scale,
        args.edgefactor,
        num_roots=args.roots,
        engine=engine,
        seed=args.seed,
    )
    print(result.summary())
    print(
        f"\nheadline: {result.harmonic_mean_teps / 1e9:.4f} GTEPS "
        "(harmonic mean, all roots validated)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "bfs":
        return _cmd_bfs(args)
    if args.command == "graph500":
        return _cmd_graph500(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
