"""Command-line interface: ``repro-bfs`` / ``python -m repro``.

Subcommands::

    repro-bfs list                       # available experiments
    repro-bfs run fig08 [--scale 15] [--save DIR]
    repro-bfs all [--scale 15] [--save DIR]
    repro-bfs bfs --scale 16 --edgefactor 16 [--m 64 --n 512] [--json]
    repro-bfs graph500 --scale 16 [--json]
    repro-bfs trace --scale 14 [--out PREFIX]
    repro-bfs info                       # architecture presets

``run``/``all`` regenerate the paper's tables and figures and print
them with paper-vs-measured notes; ``bfs`` runs a real traversal on
this machine and reports wall-clock TEPS; ``trace`` runs a traversal
with the :mod:`repro.obs` tracer enabled, writes a Perfetto-loadable
``.trace.json`` plus a JSONL event stream, and prints a span summary
and the switching-point mistuning report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro._version import __version__
from repro.obs.clock import now

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro-bfs",
        description="Heuristic cross-architecture BFS combination "
        "(ICPP'14 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("info", help="show architecture presets")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (see 'list')")
    _common_bench_args(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    _common_bench_args(all_p)

    g5_p = sub.add_parser(
        "graph500", help="run the Graph 500 benchmark flow on this machine"
    )
    g5_p.add_argument("--scale", type=int, default=16)
    g5_p.add_argument("--edgefactor", type=int, default=16)
    g5_p.add_argument("--roots", type=int, default=16)
    g5_p.add_argument("--seed", type=int, default=0)
    g5_p.add_argument(
        "--engine",
        choices=("td", "bu", "hybrid"),
        default="hybrid",
    )
    g5_p.add_argument(
        "--json",
        action="store_true",
        help="emit the result as a JSON object on stdout",
    )

    lint_p = sub.add_parser(
        "lint", help="run the repro static-analysis rules (RPR001..)"
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: the installed package)",
    )
    lint_p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format",
    )
    lint_p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    lint_p.add_argument(
        "--rules",
        action="store_true",
        help="list the registered rules and exit",
    )

    san_p = sub.add_parser(
        "sanitize",
        help="run a BFS under the runtime sanitizer + units audit",
    )
    san_p.add_argument("--scale", type=int, default=14)
    san_p.add_argument("--edgefactor", type=int, default=16)
    san_p.add_argument("--seed", type=int, default=0)
    san_p.add_argument(
        "--engine", choices=("td", "bu", "hybrid"), default="hybrid"
    )
    san_p.add_argument("--m", type=float, default=64.0, help="threshold M")
    san_p.add_argument("--n", type=float, default=512.0, help="threshold N")
    san_p.add_argument(
        "--skip-units",
        action="store_true",
        help="skip the cost-model dimensional-analysis audit",
    )

    bfs_p = sub.add_parser("bfs", help="run a real BFS on this machine")
    bfs_p.add_argument("--scale", type=int, default=16)
    bfs_p.add_argument("--edgefactor", type=int, default=16)
    bfs_p.add_argument("--seed", type=int, default=0)
    bfs_p.add_argument("--m", type=float, default=None, help="threshold M")
    bfs_p.add_argument("--n", type=float, default=None, help="threshold N")
    bfs_p.add_argument(
        "--engine",
        choices=("td", "bu", "hybrid", "auto"),
        default="auto",
        help="'auto' predicts (M, N) with the regression model",
    )
    bfs_p.add_argument(
        "--json",
        action="store_true",
        help="emit the result as a JSON object on stdout",
    )

    tr_p = sub.add_parser(
        "trace",
        help="run a traversal with tracing on and export the trace",
    )
    tr_p.add_argument("--scale", type=int, default=14)
    tr_p.add_argument("--edgefactor", type=int, default=16)
    tr_p.add_argument("--seed", type=int, default=0)
    tr_p.add_argument(
        "--engine",
        choices=("td", "bu", "hybrid", "parallel"),
        default="hybrid",
    )
    tr_p.add_argument("--m", type=float, default=64.0, help="threshold M")
    tr_p.add_argument("--n", type=float, default=512.0, help="threshold N")
    tr_p.add_argument(
        "--threads", type=int, default=4, help="workers for --engine parallel"
    )
    tr_p.add_argument(
        "--audit-candidates",
        type=int,
        default=500,
        help="candidate (M, N) pairs priced for the mistuning report",
    )
    tr_p.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the switching-point mistuning report",
    )
    tr_p.add_argument(
        "--out",
        type=Path,
        default=Path("bfs"),
        help="output prefix: writes PREFIX.trace.json and PREFIX.jsonl",
    )
    return parser


def _common_bench_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale", type=int, default=15, help="measured graph scale"
    )
    p.add_argument(
        "--save",
        type=Path,
        default=None,
        help="directory for result JSON files",
    )
    p.add_argument("--candidates", type=int, default=1000)


def _cmd_list() -> int:
    from repro.bench.experiments import REGISTRY

    for name in sorted(REGISTRY):
        print(name)
    return 0


def _cmd_info() -> int:
    from repro.arch import PRESETS
    from repro.arch.roofline import analyze

    for key, spec in PRESETS.items():
        point = analyze(spec)
        print(
            f"{key}: {spec.name} — {spec.cores} cores @ {spec.freq_ghz} GHz, "
            f"{spec.peak_sp_gflops} SP Gflops, {spec.measured_bw_gbs} GB/s "
            f"measured, RCMB(sp) {point.rcmb_sp:.2f}"
        )
    return 0


def _bench_config(args: argparse.Namespace):
    from repro.bench.runner import BenchConfig

    return BenchConfig(
        base_scale=args.scale, candidate_count=args.candidates
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.experiments import REGISTRY, run_experiment

    if args.experiment not in REGISTRY:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"available: {', '.join(sorted(REGISTRY))}",
            file=sys.stderr,
        )
        return 2
    result = run_experiment(args.experiment, _bench_config(args))
    print(result.render())
    if args.save:
        path = result.save(args.save)
        print(f"saved: {path}")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.bench.experiments import REGISTRY, run_experiment

    config = _bench_config(args)
    for name in sorted(REGISTRY):
        t0 = now()
        result = run_experiment(name, config)
        took = now() - t0
        print(result.render())
        print(f"[{name} in {took:.1f}s]")
        print()
        if args.save:
            result.save(args.save)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULES, format_json, format_text, lint_paths
    from repro.errors import LintError

    if args.rules:
        for code in sorted(RULES):
            rl = RULES[code]
            scope = " [hot-path only]" if rl.hot_path_only else ""
            print(f"{code}{scope}: {rl.summary}")
        return 0
    paths = args.paths
    if not paths:
        # Default to linting the installed package itself.
        import repro

        paths = [Path(repro.__file__).parent]
    select = args.select.split(",") if args.select else None
    try:
        violations, checked = lint_paths(paths, select=select)
    except LintError as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(format_json(violations))
    elif violations:
        print(format_text(violations))
    if violations:
        print(
            f"{len(violations)} violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    if args.fmt != "json":
        print(f"{checked} file(s) checked, no issues")
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.analysis import check_cost_model
    from repro.bfs import bfs_bottom_up, bfs_hybrid, bfs_top_down, pick_sources
    from repro.errors import SanitizerError
    from repro.graph import rmat

    print(
        f"generating R-MAT scale={args.scale} ef={args.edgefactor} "
        f"(seed {args.seed}) ..."
    )
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    print(f"graph: {graph!r}, source {source}, engine {args.engine}")

    rc = 0
    try:
        if args.engine == "td":
            result = bfs_top_down(graph, source, sanitize=True)
        elif args.engine == "bu":
            result = bfs_bottom_up(graph, source, sanitize=True)
        else:
            result = bfs_hybrid(
                graph, source, m=args.m, n=args.n, sanitize=True
            )
    except SanitizerError as exc:
        print(f"SANITIZER VIOLATION: {exc}", file=sys.stderr)
        rc = 1
    else:
        result.validate(graph)
        print(
            f"sanitizer: {result.num_levels} levels, "
            f"{result.num_reached} vertices, 0 invariant violations "
            f"(directions {result.directions})"
        )

    if not args.skip_units:
        failures = check_cost_model()
        if failures:
            for f in failures:
                print(f"UNITS VIOLATION: {f}", file=sys.stderr)
            rc = 1
        else:
            print(
                "units: cost model is dimensionally consistent "
                "(all level costs reduce to seconds)"
            )
    return rc


def _cmd_bfs(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.arch import CPU_SANDY_BRIDGE, GPU_K20X
    from repro.bench.metrics import gteps
    from repro.bfs import bfs_bottom_up, bfs_hybrid, bfs_top_down, pick_sources
    from repro.graph import rmat

    quiet = args.json
    if not quiet:
        print(
            f"generating R-MAT scale={args.scale} ef={args.edgefactor} ..."
        )
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    if not quiet:
        print(f"graph: {graph!r}, source {source}")

    m = n = None
    if args.engine == "td":
        runner = lambda: bfs_top_down(graph, source)
    elif args.engine == "bu":
        runner = lambda: bfs_bottom_up(graph, source)
    else:
        m, n = args.m, args.n
        if args.engine == "auto" and (m is None or n is None):
            from repro.bench.experiments._shared import train_default_predictor
            from repro.bench.runner import BenchConfig

            predictor = train_default_predictor(
                BenchConfig(base_scale=max(args.scale - 1, 12))
            )
            m, n = predictor.predict_mn(graph, CPU_SANDY_BRIDGE, GPU_K20X)
            if not quiet:
                print(f"predicted switching point: M={m:.1f} N={n:.1f}")
        m = 64.0 if m is None else m
        n = 512.0 if n is None else n
        runner = lambda: bfs_hybrid(graph, source, m=m, n=n)

    t0 = now()
    result = runner()
    took = now() - t0
    result.validate(graph)
    traversed = result.traversed_edges(graph)
    if args.json:
        print(
            json.dumps(
                {
                    "scale": args.scale,
                    "edgefactor": args.edgefactor,
                    "seed": args.seed,
                    "engine": args.engine,
                    "source": source,
                    "m": m,
                    "n": n,
                    "levels": result.num_levels,
                    "reached": result.num_reached,
                    "directions": list(result.directions),
                    "traversed_edges": int(traversed),
                    "seconds": took,
                    "gteps": gteps(traversed, took),
                    "validated": True,
                },
                indent=2,
            )
        )
        return 0
    print(
        f"levels={result.num_levels} reached={result.num_reached} "
        f"directions={result.directions}"
    )
    print(
        f"wall-clock {took:.3f}s, "
        f"{gteps(traversed, took):.4f} GTEPS (validated)"
    )
    return 0


def _cmd_graph500(args: argparse.Namespace) -> int:
    from repro.bfs import bfs_bottom_up, bfs_top_down
    from repro.graph500 import HybridEngine, run_graph500

    engine = {
        "td": bfs_top_down,
        "bu": bfs_bottom_up,
        # Workspace-caching engine: the 64-root loop reuses one set of
        # graph-sized arrays instead of allocating per traversal.
        "hybrid": HybridEngine(),
    }[args.engine]
    if not args.json:
        print(
            f"running Graph 500 flow: SCALE={args.scale} "
            f"edgefactor={args.edgefactor} NBFS={args.roots} "
            f"engine={args.engine} ..."
        )
    result = run_graph500(
        args.scale,
        args.edgefactor,
        num_roots=args.roots,
        engine=engine,
        seed=args.seed,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "scale": result.scale,
                    "edgefactor": result.edgefactor,
                    "nbfs": result.num_roots,
                    "engine": args.engine,
                    "seed": args.seed,
                    "construction_seconds": result.construction_seconds,
                    "validated": result.validated,
                    "roots": [int(r) for r in result.roots],
                    "time_stats": result.time_stats.as_dict(),
                    "teps_stats": result.teps_stats.as_dict(),
                    "harmonic_mean_teps": result.harmonic_mean_teps,
                },
                indent=2,
            )
        )
        return 0
    print(result.summary())
    print(
        f"\nheadline: {result.harmonic_mean_teps / 1e9:.4f} GTEPS "
        "(harmonic mean, all roots validated)"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.arch import CPU_SANDY_BRIDGE
    from repro.bfs import (
        ParallelBFS,
        bfs_bottom_up,
        bfs_hybrid,
        bfs_top_down,
        pick_sources,
        profile_bfs,
    )
    from repro.graph import rmat
    from repro.obs import (
        Tracer,
        audit_switching_point,
        use_tracer,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.arch.costmodel import CostModel

    print(
        f"generating R-MAT scale={args.scale} ef={args.edgefactor} "
        f"(seed {args.seed}) ..."
    )
    graph = rmat(args.scale, args.edgefactor, seed=args.seed)
    source = int(pick_sources(graph, 1, seed=args.seed)[0])
    print(f"graph: {graph!r}, source {source}, engine {args.engine}")

    tracer = Tracer()
    with use_tracer(tracer):
        if args.engine == "td":
            result = bfs_top_down(graph, source)
        elif args.engine == "bu":
            result = bfs_bottom_up(graph, source)
        elif args.engine == "parallel":
            from repro.bfs.hybrid import MNPolicy

            result = ParallelBFS(
                num_threads=args.threads,
                policy=MNPolicy(m=args.m, n=args.n),
            ).run(graph, source)
        else:
            result = bfs_hybrid(graph, source, m=args.m, n=args.n)
        result.validate(graph)

        report = None
        if not args.no_audit:
            profile, _ = profile_bfs(graph, source)
            report = audit_switching_point(
                profile,
                CostModel(CPU_SANDY_BRIDGE),
                args.m,
                args.n,
                count=args.audit_candidates,
                seed=args.seed,
                scale=args.scale,
                edgefactor=args.edgefactor,
            )

    meta = {
        "scale": args.scale,
        "edgefactor": args.edgefactor,
        "seed": args.seed,
        "engine": args.engine,
        "source": source,
    }
    trace_path = args.out.with_name(args.out.name + ".trace.json")
    jsonl_path = args.out.with_name(args.out.name + ".jsonl")
    write_chrome_trace(tracer, trace_path, **meta)
    events = validate_chrome_trace(trace_path)
    lines = write_jsonl(tracer, jsonl_path, **meta)

    print()
    print(f"{'span':<24} {'count':>5} {'total_ms':>10} {'mean_ms':>10}")
    for row in tracer.summary_rows():
        print(
            f"{row['span']:<24} {row['count']:>5} "
            f"{row['total_ms']:>10.3f} {row['mean_ms']:>10.3f}"
        )
    print(
        f"\nlevels={result.num_levels} reached={result.num_reached} "
        f"directions={result.directions}"
    )
    if report is not None:
        print()
        print(report.render())
    print(
        f"\nwrote {trace_path} ({events} trace events, validated) and "
        f"{jsonl_path} ({lines} lines)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "bfs":
        return _cmd_bfs(args)
    if args.command == "graph500":
        return _cmd_graph500(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
