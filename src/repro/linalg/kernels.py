"""Masked bitmap-tile kernels: SpMV bottom-up step and MS-BFS SpMM.

Both kernels compute ``frontier_next = (Aᵀ ⊗ frontier) ⊙ ¬visited``
over the Boolean semiring, operating on whole ``uint64`` words of the
:class:`~repro.linalg.tiles.BitmapTileMatrix` and the packed
:class:`~repro.graph.bitmap.Bitmap` frontier — one AND probes up to 64
adjacency entries at once.

``bottom_up_tiles_step`` is the masked *SpMV*: each unvisited row ANDs
its stored words against the frontier's words and claims the lowest set
bit of the first non-zero intersection as its parent.  Because a row's
words ascend by column block and bit ``j`` of a word is vertex
``cb * 64 + j``, that bit is exactly the minimum-id frontier neighbour
— the same vertex the reference scan
(:func:`repro.bfs.bottomup.bottom_up_step`) claims, which is what makes
the two engines bit-identical on ``parent``/``level``.  The scan is
two-phase like the reference: a fixed *window* of words first, then a
full-tail pass only for rows with no hit (the paper's Algorithm 2
early exit, at word granularity).

``edges_examined`` accounting (tile family): the number of *stored
adjacency bits* in the words a row probes, terminating at the first
hitting word.  Word-granular early termination means a winner charges
its whole winning word (the AND inspects all 64 lanes at once) where
the entry-level reference charges only the prefix up to the hit, so the
two engines' counts agree in total order of magnitude but not exactly
— the figure is defined here and pinned by tests, not inherited.

``msbfs_tiles_step`` is the masked *SpMM*: the 64-query MS-BFS batch is
a dense ``uint64`` column block, and one pass over the stored words
computes ``incoming[v] = OR_{u ∈ adj(v)} frontier[u]`` for every
vertex.  A scatter (``np.bitwise_or.at``) is pathologically slow in
NumPy, so the kernel uses the four-Russians trick: per level it builds
a table ``T[cb, p, b] = OR`` of the frontier masks of the vertices in
byte-lane ``p`` of column block ``cb`` selected by bit pattern ``b``,
then each stored word is resolved with 8 byte-indexed gathers — ``O(64
· num_blocks · 256)`` table work plus ``O(8 · words)`` gathers, all
streaming.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.bfs._gather import _iota
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.bitmap import WORD_BITS, Bitmap
from repro.graph.csr import CSRGraph
from repro.linalg.tiles import BitmapTileMatrix, tile_matrix

__all__ = [
    "DEFAULT_WORD_WINDOW",
    "bottom_up_tiles_step",
    "msbfs_tiles_step",
]

#: Stored words of each row probed in the first scan phase.  One word
#: covers up to 64 adjacency entries, so the word window is much
#: narrower than the entry-level ``DEFAULT_SCAN_WINDOW``: mid-traversal
#: rows overwhelmingly hit within their first couple of words.
DEFAULT_WORD_WINDOW = 2

_WORD_SHIFT = 6  # log2(WORD_BITS)

# The byte views below assume bit p*8+j of a word lives in byte p,
# which holds only for little-endian word storage (same invariant as
# Bitmap.test_many's fast path).
_LITTLE_ENDIAN = sys.byteorder == "little"

#: ctz lookup for byte values 1..255 (index 0 unused), driving the
#: four-Russians table recurrence ``T[b] = T[b & (b-1)] | F[ctz(b)]``.
_CTZ8 = tuple((b & -b).bit_length() - 1 for b in range(256))


def _cumsum0(
    counts: np.ndarray,
    workspace: BFSWorkspace | None,
    name: str,
) -> np.ndarray:
    """Cumulative segment starts ``[0, c0, c0+c1, ...]`` of ``counts``."""
    if workspace is not None:
        seg = workspace.buffer(name, counts.size + 1, np.int64)
    else:
        seg = np.empty(counts.size + 1, dtype=np.int64)  # repro: noqa[RPR007] — cold path, O(rows) bookkeeping
    seg[0] = 0
    np.cumsum(counts, out=seg[1:])
    return seg


def _parent_of(hit_words: np.ndarray, hit_cols: np.ndarray) -> np.ndarray:
    """Vertex id of the lowest set bit of each hit word.

    ``hit_words`` are non-zero frontier∧adjacency intersections and
    ``hit_cols`` their column blocks; the lowest set bit is the
    minimum-id frontier neighbour (branch-free ctz:
    ``popcount(lsb - 1)``).
    """
    lsb = hit_words & (~hit_words + np.uint64(1))
    ctz = np.bitwise_count(lsb - np.uint64(1))
    return (hit_cols << np.int64(_WORD_SHIFT)) + ctz.astype(np.int64)


def _probe(
    tiles: BitmapTileMatrix,
    starts: np.ndarray,
    counts: np.ndarray,
    seg: np.ndarray,
    total: int,
    fwords: np.ndarray,
    workspace: BFSWorkspace | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather ``counts[i]`` words from ``starts[i]`` per row and AND
    them against the frontier words.

    Returns ``(hw, cols, pops)``: the per-word intersections, their
    column blocks, and the popcounts of the *stored* words (for the
    examined accounting).
    """
    pos = np.repeat(starts - seg[:-1], counts)
    pos += _iota(total, workspace)
    w = tiles.words[pos]
    cols = tiles.word_cols[pos]
    hw = w & fwords[cols]
    return hw, cols, np.bitwise_count(w)


def _examined(
    pops: np.ndarray,
    seg: np.ndarray,
    mins: np.ndarray,
    found: np.ndarray,
    workspace: BFSWorkspace | None,
    name: str,
) -> int:
    """Stored bits in the probed words, stopping at each winning word.

    ``mins`` holds the global position of each row's first hit (valid
    where ``found``); losers charge their whole probe range ``seg[i] ..
    seg[i+1]``.
    """
    cps = _cumsum0(pops, workspace, name)
    end = np.where(found, mins + 1, seg[1:])
    return int((cps[end] - cps[seg[:-1]]).sum())


def _word_scan(
    tiles: BitmapTileMatrix,
    wstarts: np.ndarray,
    wcounts: np.ndarray,
    fwords: np.ndarray,
    *,
    window: int,
    workspace: BFSWorkspace | None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Scan each row's stored words for its first frontier intersection.

    Returns ``(found, parent_vertex, examined)`` where ``found[i]``
    says whether row ``i`` intersects the frontier, ``parent_vertex[i]``
    is the claimed parent id (undefined where not found) and
    ``examined`` is the tile-family edge accounting.  Every row must
    have ``wcounts > 0``.
    """
    # Phase 1: probe only the first `window` words of each row.
    c1 = np.minimum(wcounts, window)
    seg1 = _cumsum0(c1, workspace, "lin-seg1")
    k1 = int(seg1[-1])
    hw1, cols1, pops1 = _probe(
        tiles, wstarts, c1, seg1, k1, fwords, workspace
    )
    big = np.int64(k1)
    mins = np.minimum.reduceat(
        np.where(hw1 != 0, _iota(k1, workspace), big), seg1[:-1]
    )
    found = mins < big
    examined = _examined(pops1, seg1, mins, found, workspace, "lin-pc1")
    if workspace is not None:
        pvert = workspace.buffer("lin-pvert", wcounts.size, np.int64)
    else:
        pvert = np.empty(wcounts.size, dtype=np.int64)  # repro: noqa[RPR007] — cold path, O(rows) output
    win = mins[found]
    pvert[found] = _parent_of(hw1[win], cols1[win])
    # Phase 2: rows with no hit in the window scan their remaining tail.
    surv = np.flatnonzero(~found & (wcounts > window))
    if surv.size:
        scnt = wcounts[surv] - window
        sstarts = wstarts[surv] + window
        seg2 = _cumsum0(scnt, workspace, "lin-seg2")
        k2 = int(seg2[-1])
        hw2, cols2, pops2 = _probe(
            tiles, sstarts, scnt, seg2, k2, fwords, workspace
        )
        big2 = np.int64(k2)
        mins2 = np.minimum.reduceat(
            np.where(hw2 != 0, _iota(k2, workspace), big2), seg2[:-1]
        )
        found2 = mins2 < big2
        examined += _examined(
            pops2, seg2, mins2, found2, workspace, "lin-pc2"
        )
        found[surv] = found2
        sv = surv[found2]
        win2 = mins2[found2]
        pvert[sv] = _parent_of(hw2[win2], cols2[win2])
    return found, pvert, examined


def bottom_up_tiles_step(
    graph: CSRGraph,
    in_frontier: Bitmap,
    parent: np.ndarray,
    level: np.ndarray,
    depth: int,
    *,
    tiles: BitmapTileMatrix | None = None,
    unvisited: np.ndarray | None = None,
    workspace: BFSWorkspace | None = None,
    window: int = DEFAULT_WORD_WINDOW,
) -> tuple[np.ndarray, int]:
    """Execute one bottom-up level as a masked tile SpMV.

    Drop-in for :func:`repro.bfs.bottomup.bottom_up_step` (same
    contract: mutates ``parent``/``level`` in place, returns ascending
    ``(next_frontier_ids, edges_examined)``) with two differences: the
    frontier *must* be a packed :class:`~repro.graph.bitmap.Bitmap`
    (the kernel ANDs its words directly — a dense mask has no words),
    and ``edges_examined`` follows the word-granular tile accounting
    defined in the module docstring.

    ``tiles`` defaults to the graph's cached
    :class:`~repro.linalg.tiles.BitmapTileMatrix` (built on first use).
    ``unvisited`` follows the reference kernel's trust contract: claimed
    entries must have been retired by the caller.
    """
    if window <= 0:
        raise BFSError(f"window must be positive, got {window}")
    if not isinstance(in_frontier, Bitmap):
        raise BFSError(
            "tile kernel needs a packed Bitmap frontier, got "
            f"{type(in_frontier).__name__}; use BFSWorkspace.load_frontier"
        )
    if in_frontier.size != graph.num_vertices:
        raise BFSError(
            f"frontier bitmap sized {in_frontier.size} for a graph of "
            f"{graph.num_vertices} vertices"
        )
    if tiles is None:
        tiles = tile_matrix(graph)
    if unvisited is None:
        unvisited = np.nonzero(parent < 0)[0]  # repro: noqa[RPR007] — cold path, no unvisited list supplied
    if unvisited.size == 0:
        return np.zeros(0, dtype=np.int64), 0

    # Zero-degree rows store no words; filter like the reference kernel.
    deg = graph.degrees[unvisited]
    nz = deg > 0
    if not nz.all():
        unvisited = unvisited[nz]
        if unvisited.size == 0:
            return np.zeros(0, dtype=np.int64), 0
    wstarts = tiles.row_ptr[unvisited]
    wcounts = tiles.row_ptr[unvisited + 1] - wstarts

    found, pvert, examined = _word_scan(
        tiles,
        wstarts,
        wcounts,
        in_frontier.words,
        window=window,
        workspace=workspace,
    )
    winners = unvisited[found]
    if winners.size:
        parent[winners] = pvert[found]
        level[winners] = depth + 1
    # `unvisited` is ascending, so the winners are too.
    return winners, examined


def _word_byte(words: np.ndarray, byte_view: np.ndarray | None, p: int) -> np.ndarray:
    """Byte lane ``p`` of every word (values 0..255)."""
    if byte_view is not None:
        return byte_view[:, p]
    return (
        (words >> np.uint64(8 * p)) & np.uint64(0xFF)
    ).astype(np.uint8)


def msbfs_tiles_step(
    tiles: BitmapTileMatrix,
    frontier: np.ndarray,
    incoming: np.ndarray,
    *,
    row_mask: np.ndarray | None = None,
    workspace: BFSWorkspace | None = None,
) -> int:
    """One MS-BFS sweep as a masked tile SpMM.

    Computes ``incoming[v] = OR_{u ∈ adj(v)} frontier[u]`` for every
    vertex in one pass over the stored words (four-Russians byte
    tables; see the module docstring), writing ``incoming`` in place.
    ``frontier``/``incoming`` are the per-vertex ``uint64`` search
    masks of :func:`repro.bfs.multisource.msbfs`.  Returns the number
    of adjacency words streamed.

    Sparsity masks: a stored word whose frontier column block is
    all-zero across the 64 lanes ANDs to nothing, so the kernel skips
    it (and its block's table) up front.  ``row_mask`` — the caller's
    per-vertex *visited* masks — additionally skips rows already seen
    by all 64 searches: their output is annihilated by the caller's
    ``⊙ ¬visited`` regardless (such rows keep ``incoming == 0``).
    Early and late levels have few live blocks and rows, so the
    streamed word count — the returned figure — tracks the live
    support rather than ``num_words``.
    """
    n = tiles.num_vertices
    if frontier.shape != (n,) or frontier.dtype != np.uint64:
        raise BFSError(
            f"frontier must be uint64[{n}], got "
            f"dtype={frontier.dtype} shape={frontier.shape}"
        )
    if incoming.shape != (n,) or incoming.dtype != np.uint64:
        raise BFSError(
            f"incoming must be uint64[{n}], got "
            f"dtype={incoming.dtype} shape={incoming.shape}"
        )
    if row_mask is not None and (
        row_mask.shape != (n,) or row_mask.dtype != np.uint64
    ):
        raise BFSError(
            f"row_mask must be uint64[{n}], got "
            f"dtype={row_mask.dtype} shape={row_mask.shape}"
        )
    incoming[:] = 0
    nwords = tiles.num_words
    if nwords == 0:
        return 0
    nblocks = tiles.num_blocks
    padded_n = nblocks << _WORD_SHIFT

    # Frontier masks, padded to a whole number of 64-vertex blocks and
    # viewed as (block, byte-lane, bit): F[cb, p, j] is the mask of
    # vertex cb*64 + p*8 + j.
    if workspace is not None:
        pad = workspace.buffer("lin-spmm-pad", padded_n, np.uint64)
    else:
        pad = np.empty(padded_n, dtype=np.uint64)  # repro: noqa[RPR007] — cold path, no workspace supplied
    pad[:n] = frontier
    pad[n:] = 0
    lanes = pad.reshape(nblocks, 8, 8)

    # Block support of the frontier: OR each block's 64 masks; blocks
    # that come out zero cannot contribute to any intersection.
    if workspace is not None:
        blkor = workspace.buffer("lin-spmm-blkor", nblocks, np.uint64)
    else:
        blkor = np.empty(nblocks, dtype=np.uint64)  # repro: noqa[RPR007] — cold path, no workspace supplied
    np.bitwise_or.reduce(
        pad.reshape(nblocks, WORD_BITS), axis=1, out=blkor
    )
    active = blkor != 0
    nact = int(np.count_nonzero(active))
    if nact == 0:
        return 0

    words = tiles.words
    cols = tiles.word_cols
    row_ptr = tiles.row_ptr
    # Rows already visited by every search produce nothing the caller
    # keeps; drop their words from the stream.
    unsat = None
    if row_mask is not None:
        unsat = row_mask != ~np.uint64(0)
        if unsat.all():
            unsat = None
    if unsat is None and nact == nblocks:
        # Dense frontier support, no saturated rows: every stored word
        # survives, the whole filter machinery would be pure overhead.
        k = nwords
        sel: np.ndarray | slice = slice(None)
        tcols = cols
        lanes_a = lanes
        seg_starts = row_ptr[:-1]
        seg_ends = row_ptr[1:]
    else:
        keep = active[cols]
        if unsat is not None:
            keep &= np.repeat(unsat, row_ptr[1:] - row_ptr[:-1])
        if workspace is not None:
            kcum = workspace.buffer("lin-spmm-kcum", nwords + 1, np.int64)
        else:
            kcum = np.empty(nwords + 1, dtype=np.int64)  # repro: noqa[RPR007] — cold path, no workspace supplied
        kcum[0] = 0
        np.cumsum(keep, out=kcum[1:])
        k = int(kcum[-1])
        if k == 0:
            return 0
        sel = np.flatnonzero(keep)
        # Compact the table to active blocks; cmap sends a surviving
        # word's column block to its slot in the compacted table.
        if workspace is not None:
            cmap = workspace.buffer("lin-spmm-cmap", nblocks, np.int64)
        else:
            cmap = np.empty(nblocks, dtype=np.int64)  # repro: noqa[RPR007] — cold path, no workspace supplied
        np.cumsum(active, out=cmap)
        tcols = cmap[cols[sel]] - 1
        lanes_a = lanes[active]
        # Row segments in filtered coordinates: rows partition the word
        # array, so prefix-counts of `keep` at the row boundaries are
        # exactly the filtered boundaries.
        seg_starts = kcum[row_ptr[:-1]]
        seg_ends = kcum[row_ptr[1:]]

    # Four-Russians table: T[cb, p, b] = OR of lanes_a[cb, p, j] over
    # the set bits j of b, built with one OR per byte value.
    if workspace is not None:
        table = workspace.buffer(
            "lin-spmm-table", nact * 8 * 256, np.uint64
        )
    else:
        table = np.empty(nact * 8 * 256, dtype=np.uint64)  # repro: noqa[RPR007] — cold path, no workspace supplied
    t = table.reshape(nact, 8, 256)
    t[:, :, 0] = 0
    for b in range(1, 256):
        np.bitwise_or(
            t[:, :, b & (b - 1)], lanes_a[:, :, _CTZ8[b]], out=t[:, :, b]
        )

    # Resolve every surviving word with 8 byte-indexed gathers.
    if _LITTLE_ENDIAN:
        byte_rows = words.view(np.uint8).reshape(nwords, 8)[sel]
        wsel = None
    else:
        byte_rows = None
        wsel = words[sel]
    if workspace is not None:
        acc = workspace.buffer("lin-spmm-acc", k, np.uint64)
    else:
        acc = np.empty(k, dtype=np.uint64)  # repro: noqa[RPR007] — cold path, no workspace supplied
    acc[:] = t[tcols, 0, _word_byte(wsel, byte_rows, 0)]
    for p in range(1, 8):
        np.bitwise_or(
            acc, t[tcols, p, _word_byte(wsel, byte_rows, p)], out=acc
        )

    # Per-row OR of the surviving words.  Empty segments have start ==
    # end, so consecutive non-empty starts delimit exactly one row each
    # and reduceat never sees an empty segment.
    nonempty = seg_starts < seg_ends
    incoming[nonempty] = np.bitwise_or.reduceat(acc, seg_starts[nonempty])
    return k
