"""Full bottom-up traversal on the bitmap-tile kernels.

A sibling of :func:`repro.bfs.bottomup.bfs_bottom_up` whose per-level
step is the masked tile SpMV (:func:`repro.linalg.kernels.
bottom_up_tiles_step`).  Like the reference engine it is rarely the
right *whole-traversal* choice — the paper's Fig. 3 shape (slow start,
fast middle) applies unchanged — but it is the measurement vehicle for
the tile kernel family and the backend ``bfs_hybrid(...,
bottom_up="tiles")`` dispatches its bottom-up levels to.

``parent``/``level`` are bit-identical to the reference engine;
``edges_examined`` follows the word-granular tile accounting (see
:mod:`repro.linalg.kernels`).
"""

from __future__ import annotations

import numpy as np

from repro.bfs.result import BFSResult, Direction
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.linalg.kernels import DEFAULT_WORD_WINDOW, bottom_up_tiles_step
from repro.linalg.tiles import tile_matrix
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["bfs_bottom_up_tiles"]


def bfs_bottom_up_tiles(
    graph: CSRGraph,
    source: int,
    *,
    sanitize: bool = False,
    workspace: BFSWorkspace | None = None,
    tracer: Tracer | None = None,
    window: int = DEFAULT_WORD_WINDOW,
) -> BFSResult:
    """Full bottom-up traversal from ``source`` on the tile kernels.

    Mirrors :func:`repro.bfs.bottomup.bfs_bottom_up`'s contract:
    ``sanitize=True`` runs under the
    :class:`~repro.analysis.sanitizer.Sanitizer`, an explicit
    ``workspace`` makes the result alias its arrays (``detach()`` to
    keep one) and keeps warm traversals allocation-free, and ``tracer``
    overrides the process-global tracer — levels become ``bfs.level``
    spans under a ``bfs.bottomup`` root carrying ``kernel="tiles"``.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise BFSError(f"source {source} out of range [0, {n})")
    tiles = tile_matrix(graph)
    tr = tracer if tracer is not None else get_tracer()
    san = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        san = Sanitizer(graph, source)
    ws = workspace if workspace is not None else BFSWorkspace(n)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    try:
        if san is not None:
            san.__enter__()
        with tr.span(
            "bfs.bottomup", source=source, num_vertices=n, kernel="tiles"
        ) as root:
            while frontier.size:
                with tr.span(
                    "bfs.level",
                    depth=depth,
                    direction=Direction.BOTTOM_UP,
                    kernel="tiles",
                ) as sp:
                    bits = ws.load_frontier(frontier)
                    unvisited = ws.unvisited_ids(graph, parent)
                    next_frontier, checked = bottom_up_tiles_step(
                        graph,
                        bits,
                        parent,
                        level,
                        depth,
                        tiles=tiles,
                        unvisited=unvisited,
                        workspace=ws,
                        window=window,
                    )
                    sp.set("frontier_vertices", int(frontier.size))
                    sp.set("edges_examined", checked)
                    sp.set("claimed", int(next_frontier.size))
                if san is not None:
                    san.after_level(
                        depth,
                        frontier,
                        next_frontier,
                        parent,
                        level,
                        in_frontier=bits,
                    )
                ws.retire_claimed(parent)
                directions.append(Direction.BOTTOM_UP)
                edges_examined.append(checked)
                frontier = next_frontier
                depth += 1
            root.set("levels", depth)
        tr.count("bfs.levels", depth)
        tr.count("bfs.edges_examined", sum(edges_examined))
        tr.count("linalg.tile_passes", depth)
        if san is not None:
            san.finish(parent, level)
    finally:
        if san is not None:
            san.__exit__()
    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
