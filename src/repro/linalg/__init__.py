"""Bitmap-tile linear-algebra tier for the bottom-up BFS direction.

The paper frames BFS as sparse matrix–vector multiplication (Section
III-B: ``y = A x`` over the Boolean semiring), and :mod:`repro.bfs.spmv`
executes that framing literally through scipy as a differential-testing
oracle.  This package is the *fast* executable version of the same
framing, following the word-packed tile formulation of BLEST-style
GraphBLAS backends: the CSR adjacency is re-expressed as 64×64 bitmap
tiles (:class:`BitmapTileMatrix`), and the bottom-up step becomes a
masked sparse-matrix × dense-bitmap product

``frontier_next = (Aᵀ ⊗ frontier) ⊙ ¬visited``

computed with blocked ``uint64`` AND/OR/``np.bitwise_count`` operations
directly on :class:`~repro.graph.bitmap.Bitmap` words — one word probe
covers up to 64 adjacency entries.  A multi-source SpMM variant runs the
64-query MS-BFS batch as one bitmap-matrix pass per level.

Entry points:

* :func:`tile_matrix` — build (and cache on the graph) the tile format;
* :func:`bottom_up_tiles_step` — one masked-SpMV bottom-up level,
  bit-identical to :func:`repro.bfs.bottomup.bottom_up_step`;
* :func:`msbfs_tiles_step` — the SpMM sweep behind
  ``msbfs(..., kernel="tiles")``;
* :func:`bfs_bottom_up_tiles` — a full traversal on the tile kernels,
  also reachable as ``bfs_hybrid(..., bottom_up="tiles")``.
"""

from repro.linalg.engine import bfs_bottom_up_tiles
from repro.linalg.kernels import (
    DEFAULT_WORD_WINDOW,
    bottom_up_tiles_step,
    msbfs_tiles_step,
)
from repro.linalg.tiles import BitmapTileMatrix, tile_matrix

__all__ = [
    "BitmapTileMatrix",
    "DEFAULT_WORD_WINDOW",
    "bfs_bottom_up_tiles",
    "bottom_up_tiles_step",
    "msbfs_tiles_step",
    "tile_matrix",
]
