"""Blocked bitmap-tile adjacency format for the linalg kernel tier.

The CSR adjacency is re-expressed over a 64×64 tiling of the (square)
adjacency matrix: vertices are grouped into *blocks* of 64 ids, and the
neighbourhood of vertex ``v`` inside column block ``cb`` becomes one
packed ``uint64`` word whose bit ``j`` is set iff the directed edge
``(v, cb * 64 + j)`` is stored.  Only non-empty words are kept — the
format is *word-compressed*, not dense: a dense tile store would cost
``num_blocks² × 512`` bytes regardless of sparsity, while this layout
costs 24 bytes per non-empty word and collapses each row's adjacency
list by the per-block neighbour multiplicity (``compression()``).

Layout (all arrays frozen read-only, like the CSR arrays they derive
from):

* ``row_ptr``/``word_cols``/``words`` — a word-level CSR: the stored
  words of row ``v`` are ``words[row_ptr[v]:row_ptr[v+1]]`` and sit in
  column blocks ``word_cols[...]``, *ascending within each row* because
  CSR adjacency lists are sorted.  The bottom-up masked-SpMV kernel
  streams these.
* ``block_ptr``/``tile_cols`` — the sparse tile index: the distinct
  non-empty 64×64 tiles of row block ``rb`` occupy column blocks
  ``tile_cols[block_ptr[rb]:block_ptr[rb+1]]``, ascending.  This is the
  blocked-CSR directory a tensor-core style backend would schedule
  tiles from, and what :meth:`BitmapTileMatrix.tile` reconstructs.

Construction is one vectorized pass with no sort: the per-entry key
``src * num_blocks + (dst >> 6)`` is already ascending (rows ascend,
lists ascend within rows), so word boundaries fall out of a ``diff``
and the words themselves out of one ``np.bitwise_or.reduceat``.

The matrix is built once per graph and cached on the frozen
:class:`~repro.graph.csr.CSRGraph` exactly like ``degrees`` — use
:func:`tile_matrix` (or ``graph``'s cache directly) rather than calling
:meth:`BitmapTileMatrix.from_graph` per traversal.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.bitmap import WORD_BITS
from repro.graph.csr import CSRGraph

__all__ = ["BitmapTileMatrix", "tile_matrix"]

_WORD_SHIFT = 6  # log2(WORD_BITS)
_WORD_MASK = WORD_BITS - 1

#: Bytes the kernels stream per stored word: the word itself plus its
#: column-block id and its share of ``row_ptr`` (uint64 + int64 + ~int64).
BYTES_PER_TILE_WORD = 24


class BitmapTileMatrix:
    """Word-compressed 64×64 bitmap tiling of a CSR adjacency matrix.

    Instances are immutable (all arrays frozen) and constructed via
    :meth:`from_graph` / :func:`tile_matrix`; the attribute layout is
    documented in the module docstring.
    """

    __slots__ = (
        "num_vertices",
        "num_blocks",
        "num_entries",
        "row_ptr",
        "word_cols",
        "words",
        "block_ptr",
        "tile_cols",
    )

    def __init__(
        self,
        num_vertices: int,
        num_blocks: int,
        num_entries: int,
        row_ptr: np.ndarray,
        word_cols: np.ndarray,
        words: np.ndarray,
        block_ptr: np.ndarray,
        tile_cols: np.ndarray,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.num_blocks = int(num_blocks)
        self.num_entries = int(num_entries)
        self.row_ptr = row_ptr
        self.word_cols = word_cols
        self.words = words
        self.block_ptr = block_ptr
        self.tile_cols = tile_cols

    # -- construction ---------------------------------------------------

    @classmethod
    def from_graph(cls, graph: CSRGraph) -> "BitmapTileMatrix":
        """Build the tile format from a frozen CSR graph.

        One vectorized pass over the adjacency entries; see the module
        docstring for why no sort is needed.  Prefer :func:`tile_matrix`,
        which caches the result on the graph.
        """
        if not isinstance(graph, CSRGraph):
            raise GraphError(
                f"expected CSRGraph, got {type(graph).__name__}"
            )
        n = graph.num_vertices
        nblocks = (n + _WORD_MASK) >> _WORD_SHIFT
        dst = graph.targets
        m = dst.size
        if m == 0:
            return cls(
                n,
                nblocks,
                0,
                row_ptr=_frozen(np.zeros(n + 1, dtype=np.int64)),
                word_cols=_frozen(np.zeros(0, dtype=np.int64)),
                words=_frozen(np.zeros(0, dtype=np.uint64)),
                block_ptr=_frozen(np.zeros(nblocks + 1, dtype=np.int64)),
                tile_cols=_frozen(np.zeros(0, dtype=np.int64)),
            )
        src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
        colblk = (dst >> _WORD_SHIFT).astype(np.int64)
        # Ascending per-entry word key: rows ascend, and within a row the
        # sorted adjacency list makes colblk non-decreasing.
        key = src * np.int64(nblocks) + colblk
        boundary = np.empty(m, dtype=bool)
        boundary[0] = True
        np.not_equal(key[1:], key[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        bits = np.uint64(1) << (dst & _WORD_MASK).astype(np.uint64)
        words = np.bitwise_or.reduceat(bits, starts)
        word_cols = colblk[starts]
        word_rows = src[starts]
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(word_rows, minlength=n), out=row_ptr[1:])
        # Sparse tile index: distinct (row block, column block) pairs.
        tile_key = np.unique(
            (word_rows >> _WORD_SHIFT) * np.int64(nblocks) + word_cols
        )
        tile_rows = tile_key // nblocks
        tile_cols = tile_key % nblocks
        block_ptr = np.zeros(nblocks + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(tile_rows, minlength=nblocks), out=block_ptr[1:]
        )
        return cls(
            n,
            nblocks,
            m,
            row_ptr=_frozen(row_ptr),
            word_cols=_frozen(word_cols),
            words=_frozen(words),
            block_ptr=_frozen(block_ptr),
            tile_cols=_frozen(tile_cols),
        )

    # -- queries --------------------------------------------------------

    @property
    def num_words(self) -> int:
        """Number of stored (non-empty) adjacency words."""
        return self.words.size

    @property
    def num_tiles(self) -> int:
        """Number of non-empty 64×64 tiles."""
        return self.tile_cols.size

    def compression(self) -> float:
        """Mean adjacency entries per stored word (≥ 1.0 when non-empty).

        The factor by which the bottom-up word scan shortens each row's
        list relative to the entry-level CSR scan; 1.0 means every
        neighbour landed in its own column block (no tile locality).
        """
        if self.words.size == 0:
            return 1.0
        return self.num_entries / self.words.size

    def tile(self, row_block: int, col_block: int) -> np.ndarray:
        """Reconstruct one dense 64×64 tile as ``uint64[64]``.

        Row ``i`` of the result is the stored word of vertex
        ``row_block * 64 + i`` in ``col_block`` (zero when absent).
        Intended for tests and debugging, not kernels.
        """
        if not 0 <= row_block < self.num_blocks:
            raise GraphError(
                f"row block {row_block} out of range [0, {self.num_blocks})"
            )
        if not 0 <= col_block < self.num_blocks:
            raise GraphError(
                f"col block {col_block} out of range [0, {self.num_blocks})"
            )
        out = np.zeros(WORD_BITS, dtype=np.uint64)
        lo_v = row_block << _WORD_SHIFT
        hi_v = min(lo_v + WORD_BITS, self.num_vertices)
        for v in range(lo_v, hi_v):
            lo, hi = self.row_ptr[v], self.row_ptr[v + 1]
            j = lo + np.searchsorted(self.word_cols[lo:hi], col_block)
            if j < hi and self.word_cols[j] == col_block:
                out[v - lo_v] = self.words[j]
        return out

    def nbytes(self) -> int:
        """Bytes of tile storage — what a full masked-SpMV sweep streams."""
        return int(
            self.row_ptr.nbytes
            + self.word_cols.nbytes
            + self.words.nbytes
            + self.block_ptr.nbytes
            + self.tile_cols.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BitmapTileMatrix(|V|={self.num_vertices}, "
            f"words={self.num_words}, tiles={self.num_tiles}, "
            f"compression={self.compression():.2f})"
        )


def _frozen(arr: np.ndarray) -> np.ndarray:
    """Freeze an owned array (tile storage is shared by traversals)."""
    arr.flags.writeable = False
    return arr


def tile_matrix(graph: CSRGraph) -> BitmapTileMatrix:
    """The graph's :class:`BitmapTileMatrix`, built once and cached.

    Cached on the frozen graph exactly like ``CSRGraph.degrees``: every
    tile-kernel traversal needs it, construction is ``O(E)``, and the
    frozen CSR arrays guarantee the cache can never go stale.
    """
    cached = graph.__dict__.get("_tile_matrix")
    if cached is None:
        cached = BitmapTileMatrix.from_graph(graph)
        object.__setattr__(graph, "_tile_matrix", cached)
    return cached
