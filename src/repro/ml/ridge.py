"""Regression baselines: linear least squares and kernel ridge.

The paper argues for SVM regression over alternatives (Section II-C);
these baselines exist so the ablation benchmark
(``bench_ablation_regression``) can quantify that choice instead of
taking it on faith.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.ml.kernels import Kernel, make_kernel

__all__ = ["LinearRegression", "KernelRidge"]


class LinearRegression:
    """Ordinary least squares with an intercept (via ``lstsq``)."""

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        """Fit ``y ≈ X w + b``."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ModelError(
                f"{X.shape[0]} samples but {y.shape[0]} targets"
            )
        A = np.hstack([X, np.ones((X.shape[0], 1))])
        w, *_ = np.linalg.lstsq(A, y, rcond=None)
        self.coef_ = w[:-1]
        self.intercept_ = float(w[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the fitted linear map."""
        if self.coef_ is None:
            raise NotFittedError("LinearRegression.predict before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return X @ self.coef_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R² on ``(X, y)``."""
        return _r2(self.predict(X), np.asarray(y, dtype=np.float64).ravel())


class KernelRidge:
    """Ridge regression in a kernel feature space (closed form).

    Solves ``(K + λ I) a = y``; predicts ``f(x) = Σ a_i k(x_i, x)``.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        kernel: str | Kernel = "rbf",
        gamma: float = 1.0,
    ) -> None:
        if alpha <= 0:
            raise ModelError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)
        self.kernel = kernel
        self.gamma = float(gamma)
        self.dual_coef_: np.ndarray | None = None
        self.x_train_: np.ndarray | None = None
        self._kernel_fn: Kernel | None = None

    def _resolve_kernel(self) -> Kernel:
        if callable(self.kernel):
            return self.kernel
        if self.kernel == "rbf":
            return make_kernel("rbf", gamma=self.gamma)
        return make_kernel(str(self.kernel))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelRidge":
        """Solve the regularized normal equations."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ModelError(
                f"{X.shape[0]} samples but {y.shape[0]} targets"
            )
        self._kernel_fn = self._resolve_kernel()
        K = self._kernel_fn(X, X)
        K = K + self.alpha * np.eye(X.shape[0])
        self.dual_coef_ = np.linalg.solve(K, y)
        self.x_train_ = X.copy()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the fitted kernel expansion."""
        if self.dual_coef_ is None or self.x_train_ is None or self._kernel_fn is None:
            raise NotFittedError("KernelRidge.predict before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return self._kernel_fn(X, self.x_train_) @ self.dual_coef_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R² on ``(X, y)``."""
        return _r2(self.predict(X), np.asarray(y, dtype=np.float64).ravel())


def _r2(pred: np.ndarray, y: np.ndarray) -> float:
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
