"""Kernel functions for the SVR and kernel-ridge models.

Vectorized over sample matrices: every kernel takes ``X (n, d)`` and
``Z (m, d)`` and returns the ``(n, m)`` Gram block without Python-level
loops (pairwise squared distances via the expanded-norm identity).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ModelError

__all__ = ["linear_kernel", "rbf_kernel", "poly_kernel", "make_kernel", "Kernel"]

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _check(X: np.ndarray, Z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    Z = np.atleast_2d(np.asarray(Z, dtype=np.float64))
    if X.shape[1] != Z.shape[1]:
        raise ModelError(
            f"feature dimension mismatch: {X.shape[1]} vs {Z.shape[1]}"
        )
    return X, Z


def linear_kernel(X: np.ndarray, Z: np.ndarray) -> np.ndarray:
    """``k(x, z) = x · z``."""
    X, Z = _check(X, Z)
    return X @ Z.T


def rbf_kernel(X: np.ndarray, Z: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """``k(x, z) = exp(-gamma ||x - z||²)`` — the paper's SVR kernel class."""
    if gamma <= 0:
        raise ModelError(f"gamma must be positive, got {gamma}")
    X, Z = _check(X, Z)
    sq = (
        np.sum(X * X, axis=1)[:, None]
        + np.sum(Z * Z, axis=1)[None, :]
        - 2.0 * (X @ Z.T)
    )
    np.maximum(sq, 0.0, out=sq)
    return np.exp(-gamma * sq)


def poly_kernel(
    X: np.ndarray, Z: np.ndarray, degree: int = 3, coef0: float = 1.0
) -> np.ndarray:
    """``k(x, z) = (x · z + coef0) ** degree``."""
    if degree < 1:
        raise ModelError(f"degree must be >= 1, got {degree}")
    X, Z = _check(X, Z)
    return (X @ Z.T + coef0) ** degree


def make_kernel(name: str, **params: float) -> Kernel:
    """Build a kernel closure by name (``'linear'``, ``'rbf'``, ``'poly'``).

    Unknown parameters raise so hyper-parameter grids fail loudly.
    """
    if name == "linear":
        if params:
            raise ModelError(f"linear kernel takes no parameters, got {params}")
        return linear_kernel
    if name == "rbf":
        gamma = float(params.pop("gamma", 1.0))
        if params:
            raise ModelError(f"unknown rbf parameters {params}")
        return lambda X, Z: rbf_kernel(X, Z, gamma=gamma)
    if name == "poly":
        degree = int(params.pop("degree", 3))
        coef0 = float(params.pop("coef0", 1.0))
        if params:
            raise ModelError(f"unknown poly parameters {params}")
        return lambda X, Z: poly_kernel(X, Z, degree=degree, coef0=coef0)
    raise ModelError(f"unknown kernel {name!r}")
