"""Feature standardization.

The Fig. 7 sample mixes units spanning nine orders of magnitude
(vertex counts in millions next to Kronecker probabilities in [0, 1]),
so kernel methods need standardized inputs.  Mirrors the fit/transform
idiom; constant features are left centred (unit divisor) rather than
producing NaNs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, NotFittedError

__all__ = ["StandardScaler"]


class StandardScaler:
    """Per-feature zero-mean, unit-variance scaling."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[0] < 1:
            raise ModelError("cannot fit scaler on an empty matrix")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.mean_.shape[0]:
            raise ModelError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo the scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.inverse_transform before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return X * self.scale_ + self.mean_
