"""Machine-learning substrate: from-scratch ε-SVR (SMO), kernels,
scaling, regression baselines, cross-validation and the Fig. 7 training
sample layout."""

from repro.ml.crossval import (
    GridSearchResult,
    cross_val_score,
    grid_search,
    kfold_indices,
)
from repro.ml.dataset import (
    FEATURE_NAMES,
    TrainingSet,
    make_sample,
    sample_from_features,
)
from repro.ml.kernels import (
    Kernel,
    linear_kernel,
    make_kernel,
    poly_kernel,
    rbf_kernel,
)
from repro.ml.model_io import load_scaler, load_svr, save_scaler, save_svr
from repro.ml.ridge import KernelRidge, LinearRegression
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR

__all__ = [
    "SVR",
    "KernelRidge",
    "LinearRegression",
    "StandardScaler",
    "Kernel",
    "linear_kernel",
    "rbf_kernel",
    "poly_kernel",
    "make_kernel",
    "kfold_indices",
    "cross_val_score",
    "grid_search",
    "GridSearchResult",
    "FEATURE_NAMES",
    "make_sample",
    "sample_from_features",
    "TrainingSet",
    "save_svr",
    "load_svr",
    "save_scaler",
    "load_scaler",
]
