"""Persistence for fitted models.

The paper's workflow is offline training / online prediction
(Fig. 6); persisting the trained predictor is what makes the online
side "little overhead" — load once, predict per traversal.  Models
serialize to NPZ with a JSON header describing hyper-parameters.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR

__all__ = ["save_svr", "load_svr", "save_scaler", "load_scaler"]


def save_svr(model: SVR, path: str | Path) -> None:
    """Write a fitted SVR (RBF/linear/poly by name only) to NPZ."""
    if model.beta_ is None or model.support_x_ is None:
        raise ModelError("cannot save an unfitted SVR")
    if callable(model.kernel):
        raise ModelError("cannot serialize a callable kernel; use a name")
    header = {
        "c": model.c,
        "epsilon": model.epsilon,
        "kernel": model.kernel,
        "gamma": model.gamma if isinstance(model.gamma, str) else float(model.gamma),
        "tol": model.tol,
        "max_iter": model.max_iter,
        "intercept": model.intercept_,
        "n_iter": model.n_iter_,
    }
    np.savez_compressed(
        Path(path),
        header=np.array([json.dumps(header)]),
        support_x=model.support_x_,
        beta=model.beta_,
    )


def load_svr(path: str | Path) -> SVR:
    """Load a model written by :func:`save_svr`."""
    try:
        with np.load(Path(path), allow_pickle=False) as data:
            header = json.loads(str(data["header"][0]))
            support_x = data["support_x"]
            beta = data["beta"]
    except (KeyError, OSError, ValueError, json.JSONDecodeError) as exc:
        raise ModelError(f"cannot load SVR from {path}: {exc}") from exc
    model = SVR(
        c=header["c"],
        epsilon=header["epsilon"],
        kernel=header["kernel"],
        gamma=header["gamma"],
        tol=header["tol"],
        max_iter=header["max_iter"],
    )
    model.support_x_ = support_x
    model.beta_ = beta
    model.intercept_ = float(header["intercept"])
    model.n_iter_ = int(header["n_iter"])
    model._kernel_fn = model._resolve_kernel(support_x)
    return model


def save_scaler(scaler: StandardScaler, path: str | Path) -> None:
    """Write a fitted scaler to NPZ."""
    if scaler.mean_ is None or scaler.scale_ is None:
        raise ModelError("cannot save an unfitted scaler")
    np.savez_compressed(Path(path), mean=scaler.mean_, scale=scaler.scale_)


def load_scaler(path: str | Path) -> StandardScaler:
    """Load a scaler written by :func:`save_scaler`."""
    try:
        with np.load(Path(path), allow_pickle=False) as data:
            mean = data["mean"]
            scale = data["scale"]
    except (KeyError, OSError, ValueError) as exc:
        raise ModelError(f"cannot load scaler from {path}: {exc}") from exc
    scaler = StandardScaler()
    scaler.mean_ = mean
    scaler.scale_ = scale
    return scaler
