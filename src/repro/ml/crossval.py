"""K-fold cross-validation and hyper-parameter grid search.

The paper's training stage fits one model offline on ~140 samples;
choosing ``(C, γ, ε)`` for the SVR is done here the standard LIBSVM-
tutorial way — grid search under k-fold CV on the training set.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ModelError

__all__ = ["kfold_indices", "cross_val_score", "GridSearchResult", "grid_search"]


def kfold_indices(
    n: int, k: int, *, seed: int | np.random.Generator = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` for shuffled k-fold CV."""
    if k < 2:
        raise ModelError(f"k must be >= 2, got {k}")
    if n < k:
        raise ModelError(f"cannot split {n} samples into {k} folds")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


def cross_val_score(
    make_model: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 5,
    seed: int | np.random.Generator = 0,
    metric: str = "rmse",
) -> np.ndarray:
    """Per-fold scores for a model factory.

    ``metric``: ``'rmse'`` (lower better), ``'mae'`` or ``'r2'``
    (higher better).
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    scores = []
    for train, test in kfold_indices(X.shape[0], k, seed=seed):
        model = make_model()
        model.fit(X[train], y[train])  # type: ignore[attr-defined]
        pred = np.asarray(model.predict(X[test]))  # type: ignore[attr-defined]
        resid = y[test] - pred
        if metric == "rmse":
            scores.append(float(np.sqrt(np.mean(resid**2))))
        elif metric == "mae":
            scores.append(float(np.mean(np.abs(resid))))
        elif metric == "r2":
            ss_tot = float(((y[test] - y[test].mean()) ** 2).sum())
            ss_res = float((resid**2).sum())
            scores.append(1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0)
        else:
            raise ModelError(f"unknown metric {metric!r}")
    return np.array(scores)


@dataclass(frozen=True)
class GridSearchResult:
    """Winning configuration of a grid search."""

    best_params: dict
    best_score: float
    all_scores: tuple[tuple[dict, float], ...]


def grid_search(
    make_model: Callable[..., object],
    grid: dict[str, Sequence],
    X: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 5,
    seed: int | np.random.Generator = 0,
    metric: str = "rmse",
) -> GridSearchResult:
    """Exhaustive CV grid search.

    ``make_model`` is called with each combination of ``grid`` keys as
    keyword arguments; the configuration minimizing mean RMSE/MAE (or
    maximizing mean R²) wins.
    """
    if not grid:
        raise ModelError("empty parameter grid")
    keys = sorted(grid)
    results: list[tuple[dict, float]] = []
    lower_better = metric in ("rmse", "mae")
    for combo in product(*(grid[key] for key in keys)):
        params = dict(zip(keys, combo))
        scores = cross_val_score(
            lambda params=params: make_model(**params),
            X,
            y,
            k=k,
            seed=seed,
            metric=metric,
        )
        results.append((params, float(scores.mean())))
    best = min(results, key=lambda r: r[1]) if lower_better else max(
        results, key=lambda r: r[1]
    )
    return GridSearchResult(
        best_params=best[0],
        best_score=best[1],
        all_scores=tuple(results),
    )
