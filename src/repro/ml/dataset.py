"""Training-sample assembly in the paper's Fig. 7 layout.

A sample concatenates three blocks::

    [ graph info (6) | top-down arch info (3) | bottom-up arch info (3) ]
    [ V, E, A, B, C, D | P1, L1, B1          | P2, L2, B2             ]

with the target value being the best switching point for that
(graph, architecture-pair) combination — the exact format of the
paper's worked example "(96: 32, 256, 0.57, 0.19, 0.19, 0.05, 512,
512, 100, 1024, 768, 128)".

Targets are stored and regressed in ``log2`` space: best-M values span
1–1000 and multiplicative error is what matters for threshold rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.specs import ArchSpec, arch_features
from repro.errors import ModelError
from repro.graph.csr import CSRGraph
from repro.graph.stats import graph_features

__all__ = [
    "FEATURE_NAMES",
    "make_sample",
    "sample_from_features",
    "TrainingSet",
]

#: Column names of the Fig. 7 sample vector, in order.
FEATURE_NAMES: tuple[str, ...] = (
    "vertices_millions",
    "edges_millions",
    "rmat_a",
    "rmat_b",
    "rmat_c",
    "rmat_d",
    "td_peak_gflops",
    "td_l1_kb",
    "td_bw_gbs",
    "bu_peak_gflops",
    "bu_l1_kb",
    "bu_bw_gbs",
)


def make_sample(
    graph: CSRGraph, arch_td: ArchSpec, arch_bu: ArchSpec
) -> np.ndarray:
    """Build one Fig. 7 feature vector.

    ``arch_td`` and ``arch_bu`` are the same spec for single-
    architecture combinations, different for the cross-architecture
    case — exactly as the paper describes.
    """
    return np.concatenate(
        [graph_features(graph), arch_features(arch_td), arch_features(arch_bu)]
    )


def sample_from_features(
    graph_block: np.ndarray,
    arch_td: ArchSpec,
    arch_bu: ArchSpec,
) -> np.ndarray:
    """Like :func:`make_sample` when the graph block is precomputed
    (avoids re-deriving features for every architecture pairing of the
    same graph)."""
    graph_block = np.asarray(graph_block, dtype=np.float64)
    if graph_block.shape != (6,):
        raise ModelError(
            f"graph feature block must have 6 entries, got {graph_block.shape}"
        )
    return np.concatenate(
        [graph_block, arch_features(arch_td), arch_features(arch_bu)]
    )


@dataclass
class TrainingSet:
    """A growing corpus of (sample, best-M, best-N) rows."""

    samples: list[np.ndarray] = field(default_factory=list)
    best_m: list[float] = field(default_factory=list)
    best_n: list[float] = field(default_factory=list)
    tags: list[str] = field(default_factory=list)

    def add(
        self, sample: np.ndarray, m: float, n: float, tag: str = ""
    ) -> None:
        """Append one row."""
        sample = np.asarray(sample, dtype=np.float64)
        if sample.shape != (len(FEATURE_NAMES),):
            raise ModelError(
                f"sample must have {len(FEATURE_NAMES)} features, "
                f"got {sample.shape}"
            )
        if m <= 0 or n <= 0:
            raise ModelError(f"switching points must be positive, got ({m}, {n})")
        self.samples.append(sample)
        self.best_m.append(float(m))
        self.best_n.append(float(n))
        self.tags.append(tag)

    def __len__(self) -> int:
        return len(self.samples)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(X, log2_m, log2_n)`` ready for regression."""
        if not self.samples:
            raise ModelError("empty training set")
        X = np.vstack(self.samples)
        return (
            X,
            np.log2(np.array(self.best_m)),
            np.log2(np.array(self.best_n)),
        )

    def save(self, path) -> None:
        """Persist to NPZ."""
        X, lm, ln = self.as_arrays()
        np.savez_compressed(
            path,
            X=X,
            log2_m=lm,
            log2_n=ln,
            tags=np.array(self.tags, dtype=object),
            feature_names=np.array(FEATURE_NAMES, dtype=object),
        )

    @classmethod
    def load(cls, path) -> "TrainingSet":
        """Inverse of :meth:`save`."""
        with np.load(path, allow_pickle=True) as data:
            X = data["X"]
            m = np.exp2(data["log2_m"])
            n = np.exp2(data["log2_n"])
            tags = [str(t) for t in data["tags"]]
        out = cls()
        for i in range(X.shape[0]):
            out.add(X[i], float(m[i]), float(n[i]), tags[i])
        return out
