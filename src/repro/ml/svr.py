"""Epsilon-SVR trained by SMO — a from-scratch LIBSVM-class solver.

The paper predicts the switching point with Support Vector Machine
regression trained in LIBSVM [10].  Neither LIBSVM nor scikit-learn is
available offline, so this module implements the same model: the
ε-insensitive support vector regression dual, solved by Sequential
Minimal Optimization with maximal-violating-pair working-set selection
(Fan, Chen & Lin's WSS1 — what LIBSVM itself ships).

Dual formulation (Smola & Schölkopf).  With doubled variables
``t ∈ {0..2n-1}``, sign ``s_t = +1`` for the first ``n`` (the α block)
and ``-1`` for the rest (the α* block)::

    min_α  0.5 αᵀ Q α + pᵀ α
    s.t.   Σ_t s_t α_t = 0,   0 ≤ α_t ≤ C

where ``Q_tu = s_t s_u K(x_{t mod n}, x_{u mod n})`` and
``p_t = ε - s_t y_{t mod n}``.  The regression coefficients are
``β = α[:n] - α[n:]`` and ``f(x) = Σ β_i K(x_i, x) + b``.

The Gram matrix is materialized once (n ≤ a few thousand in every use
here — the paper trains on 140 samples) and Q is addressed implicitly
through the sign vector, so memory stays ``O(n²)`` not ``O(4n²)``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.errors import ConvergenceWarning, ModelError, NotFittedError
from repro.ml.kernels import Kernel, make_kernel

__all__ = ["SVR"]


class SVR:
    """ε-insensitive support vector regression.

    Parameters
    ----------
    c:
        Box constraint (regularization inverse); larger fits harder.
    epsilon:
        Half-width of the insensitive tube; residuals inside it cost 0.
    kernel:
        Kernel name (``'rbf'``, ``'linear'``, ``'poly'``) or a callable
        ``(X, Z) -> Gram``.
    gamma:
        RBF width; ``'scale'`` uses ``1 / (d · var(X))`` like LIBSVM.
    tol:
        KKT violation tolerance for the stopping rule.
    max_iter:
        SMO iteration budget; hitting it emits
        :class:`~repro.errors.ConvergenceWarning`.
    """

    def __init__(
        self,
        c: float = 10.0,
        epsilon: float = 0.1,
        kernel: str | Kernel = "rbf",
        gamma: float | str = "scale",
        tol: float = 1e-4,
        max_iter: int = 200_000,
    ) -> None:
        if c <= 0:
            raise ModelError(f"c must be positive, got {c}")
        if epsilon < 0:
            raise ModelError(f"epsilon must be non-negative, got {epsilon}")
        if tol <= 0:
            raise ModelError(f"tol must be positive, got {tol}")
        if max_iter < 1:
            raise ModelError(f"max_iter must be >= 1, got {max_iter}")
        self.c = float(c)
        self.epsilon = float(epsilon)
        self.kernel = kernel
        self.gamma = gamma
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        # Fitted state
        self.support_x_: np.ndarray | None = None
        self.beta_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self._kernel_fn: Kernel | None = None

    # -- kernel resolution ---------------------------------------------------

    def _resolve_kernel(self, X: np.ndarray) -> Kernel:
        if callable(self.kernel):
            return self.kernel
        if self.kernel == "rbf":
            if self.gamma == "scale":
                var = float(X.var())
                gamma = 1.0 / (X.shape[1] * var) if var > 0 else 1.0
            else:
                gamma = float(self.gamma)  # type: ignore[arg-type]
            return make_kernel("rbf", gamma=gamma)
        if self.kernel in ("linear", "poly"):
            return make_kernel(self.kernel)
        raise ModelError(f"unknown kernel {self.kernel!r}")

    # -- training ---------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVR":
        """Solve the dual by SMO on ``(X, y)``."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        n = X.shape[0]
        if y.shape[0] != n:
            raise ModelError(f"{n} samples but {y.shape[0]} targets")
        if n < 2:
            raise ModelError("SVR needs at least 2 samples")
        kernel_fn = self._resolve_kernel(X)
        K = kernel_fn(X, X)

        c, eps, tol = self.c, self.epsilon, self.tol
        m2 = 2 * n
        s = np.ones(m2)
        s[n:] = -1.0
        p = np.empty(m2)
        p[:n] = eps - y
        p[n:] = eps + y
        alpha = np.zeros(m2)
        grad = p.copy()  # Qα = 0 at start
        idx = np.arange(m2) % n  # map doubled index -> sample

        # Bound slack: alphas within eps of a bound are treated as *at*
        # the bound (and snapped there), so float drift cannot leave a
        # variable in a working set with no room to move — without this
        # the solver can cycle forever on rank-deficient (e.g. linear)
        # kernels.
        eps = 1e-12 * max(c, 1.0)
        it = 0
        for it in range(1, self.max_iter + 1):
            # WSS1: maximal violating pair over -s*grad.
            f = -s * grad
            up_mask = ((s > 0) & (alpha < c - eps)) | ((s < 0) & (alpha > eps))
            low_mask = ((s > 0) & (alpha > eps)) | ((s < 0) & (alpha < c - eps))
            if not up_mask.any() or not low_mask.any():
                break
            fi = np.where(up_mask, f, -np.inf)
            fj = np.where(low_mask, f, np.inf)
            i = int(np.argmax(fi))
            j = int(np.argmin(fj))
            if fi[i] - fj[j] < tol:
                break
            # Analytic 2-variable step along the equality constraint.
            # The feasible direction is u = s_i e_i - s_j e_j; its
            # curvature u'Qu = K_ii + K_jj - 2 K_ij for every sign
            # combination (the s factors square away).
            Ki = s * s[i] * K[idx, idx[i]]
            Kj = s * s[j] * K[idx, idx[j]]
            quad = (
                K[idx[i], idx[i]]
                + K[idx[j], idx[j]]
                - 2.0 * K[idx[i], idx[j]]
            )
            quad = max(quad, 1e-12)
            # Move: alpha_i += s_i * d, alpha_j -= s_j * d.
            d = (fi[i] - fj[j]) / quad
            # Clip d to the box for both coordinates.
            d = min(d, (c - alpha[i]) if s[i] > 0 else alpha[i])
            d = min(d, (c - alpha[j]) if s[j] < 0 else alpha[j])
            if d <= 0:
                break
            dai = s[i] * d
            daj = -s[j] * d
            alpha[i] += dai
            alpha[j] += daj
            np.clip(alpha, 0.0, c, out=alpha)
            alpha[alpha < eps] = 0.0
            alpha[alpha > c - eps] = c
            grad += Ki * dai + Kj * daj
        else:
            it = self.max_iter
        if it >= self.max_iter:
            warnings.warn(
                f"SVR SMO stopped at max_iter={self.max_iter}",
                ConvergenceWarning,
                stacklevel=2,
            )

        beta = alpha[:n] - alpha[n:]
        # Intercept from the KKT band of the final gradient.
        f = -s * grad
        up_mask = ((s > 0) & (alpha < c)) | ((s < 0) & (alpha > 0))
        low_mask = ((s > 0) & (alpha > 0)) | ((s < 0) & (alpha < c))
        hi = f[up_mask].max() if up_mask.any() else 0.0
        lo = f[low_mask].min() if low_mask.any() else 0.0
        self.intercept_ = float((hi + lo) / 2.0)

        keep = np.abs(beta) > 1e-12
        self.support_x_ = X[keep].copy()
        self.beta_ = beta[keep].copy()
        self._kernel_fn = kernel_fn
        self.n_iter_ = it
        return self

    # -- inference ----------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate ``f(x) = Σ β_i k(x_i, x) + b``."""
        if self.beta_ is None or self.support_x_ is None or self._kernel_fn is None:
            raise NotFittedError("SVR.predict before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self.beta_.size == 0:
            return np.full(X.shape[0], self.intercept_)
        K = self._kernel_fn(X, self.support_x_)
        return K @ self.beta_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² on ``(X, y)``."""
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = self.predict(X)
        ss_res = float(((y - pred) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    @property
    def n_support_(self) -> int:
        """Number of support vectors retained after training."""
        if self.beta_ is None:
            raise NotFittedError("SVR.n_support_ before fit")
        return int(self.beta_.size)
