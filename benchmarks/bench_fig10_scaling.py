"""Bench for Fig. 10 — strong/weak scaling (model) plus a real-machine
thread-scaling measurement of the actual NumPy kernels."""

from repro.bench.experiments import fig10_scaling
from repro.bfs.parallel import ParallelBFS
from repro.bfs.profiler import pick_sources
from repro.graph.generators import rmat
from repro.obs.clock import now


def test_fig10_scaling_model(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: fig10_scaling.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    for arch in ("cpu-snb", "mic-knc"):
        series = [
            r["gteps"]
            for r in result.rows
            if r["panel"] == "strong"
            and r["arch"] == arch
            and r["edgefactor"] == 16
        ]
        assert series[-1] > series[0]


def test_fig10_real_thread_scaling(benchmark, bench_config, report):
    """Wall-clock analogue: the thread-parallel hybrid on this machine."""
    graph = rmat(bench_config.base_scale, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])

    import time

    rows = []
    for threads in (1, 2, 4):
        with ParallelBFS.hybrid(threads, 20, 100) as eng:
            eng.run(graph, source)  # warm
            t0 = now()
            res = eng.run(graph, source)
            took = now() - t0
        rows.append(
            {
                "threads": threads,
                "seconds": took,
                "gteps": res.traversed_edges(graph) / took / 1e9,
            }
        )
    from repro.bench.runner import ExperimentResult

    result = ExperimentResult(
        name="fig10_real_threads",
        title="Fig. 10 (real machine) — thread scaling of the NumPy hybrid",
        rows=rows,
    )
    report(result)

    with ParallelBFS.hybrid(4, 20, 100) as eng:
        benchmark(lambda: eng.run(graph, source))
