"""Benches for the four design-choice ablations (see DESIGN.md §3)."""

from repro.bench.experiments import (
    ablation_features,
    ablation_policy,
    ablation_regression,
    ablation_transfer,
)


def test_ablation_policy(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ablation_policy.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    for row in result.rows:
        # The tuned (M, N) rule recovers nearly all of the oracle.
        assert row["mn_of_oracle"] > 0.9
        # And beats both pure directions.
        assert row["mn_s"] <= min(row["pure_td_s"], row["pure_bu_s"])


def test_ablation_regression(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ablation_regression.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    by = {r["model"]: r["frac_of_exhaustive"] for r in result.rows}
    # Kernel methods must beat the plain linear least squares.
    assert max(by["svr_rbf"], by["kernel_ridge"]) >= by["linear_lsq"]
    assert by["svr_rbf"] > 0.6


def test_ablation_features(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ablation_features.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    by = {r["features"]: r["frac_of_exhaustive"] for r in result.rows}
    # Every feature set must be usable (the optimum plateau is wide on
    # R-MAT); the *relative* ordering is the experiment's finding — on a
    # corpus where every graph shares the Graph 500 (A, B, C, D), the
    # architecture block carries most of the signal, a sharper statement
    # than the paper's "both matter" (Section III-C).  See the result
    # notes and EXPERIMENTS.md.
    assert all(v > 0.5 for v in by.values())
    assert by["arch_only"] >= by["graph_only"] - 0.1


def test_ablation_transfer(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ablation_transfer.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    pcie = [r for r in result.rows if r["link"] == "pcie_gen2"]
    assert all(r["cross_still_wins"] for r in pcie)
    # Transfer cost must be a small fraction of the PCIe-linked run.
    for r in pcie:
        assert r["transfer_s"] < 0.1 * r["cross_s"]
