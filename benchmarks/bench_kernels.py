"""Real-machine kernel benchmarks (wall clock, not the simulator).

Times the actual NumPy BFS engines on this host — the honest
single-machine performance of the library, complementing the simulated
paper-scale numbers.  Direction optimization must win on R-MAT even in
pure NumPy: the hybrid examines far fewer adjacency entries.

The ``test_speedup_*`` tests additionally race the current kernels
against the frozen pre-workspace baselines in ``_legacy_kernels`` and
record the before/after wall-clock numbers in ``BENCH_kernels.json``
at the repository root.  The ``test_tile_*`` tests race the
``repro.linalg`` bitmap-tile kernels against their references the same
way (tile SpMV vs the windowed row scan, tile SpMM vs a loop of
single-source traversals).  The speedup floors (2x on the top-down
claim step, 1.5x on a whole hybrid traversal, 0.5x/1.3x on the tile
kernels) are only enforced at ``REPRO_BENCH_SCALE >= 14`` — below that
the arrays fit in cache and the constant factors dominate.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bfs._gather import expand_rows
from repro.bfs.bottomup import bfs_bottom_up, bottom_up_step
from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.multisource import msbfs
from repro.bfs.profiler import pick_sources
from repro.bfs.spmv import bfs_spmv
from repro.bfs.topdown import bfs_top_down, claim_first_writer, top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.graph.generators import rmat
from repro.linalg import bottom_up_tiles_step, tile_matrix
from repro.obs.clock import now
from repro.obs.profile import DEFAULT_HZ, ProfileSession
from repro.obs.tracer import Tracer, get_tracer, use_tracer

from _legacy_kernels import (
    legacy_bfs_hybrid,
    legacy_unique_claim,
)

#: Scale below which the speedup floors are informational only.
_ENFORCE_SCALE = 14

#: Disabled-tracer tax allowed on a warm hybrid traversal (3%).
_TRACING_OVERHEAD_LIMIT = 0.03

#: Profiling tax allowed on a warm traced hybrid traversal: the
#: sampler thread may cost up to 5%, the flight recorder alone 1%.
_SAMPLER_OVERHEAD_LIMIT = 0.05
_RECORDER_OVERHEAD_LIMIT = 0.01

#: The live tier (collector aggregation + SLO evaluation + one 4 Hz
#: dashboard refresh) rides the same budget as the disabled tracer.
_COLLECTOR_OVERHEAD_LIMIT = _TRACING_OVERHEAD_LIMIT

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: The committed numbers from the last benchmarked revision, captured
#: before _record() starts overwriting the file during this run.
_BASELINE: dict = (
    json.loads(_RESULTS_PATH.read_text())
    if _RESULTS_PATH.exists()
    else {}
)

#: The JSONL run-history trajectory the monitor layer reads
#: (``repro-bfs monitor check``); enforced runs append here so the
#: committed ``BENCH_kernels.json`` snapshot and the trajectory stop
#: diverging.
_HISTORY_PATH = (
    Path(__file__).resolve().parent / "results" / "history" / "runs.jsonl"
)

_bench_results: dict = {}


def _record(section: str, payload: dict, bench_config) -> None:
    """Merge one comparison into BENCH_kernels.json (repo root)."""
    _bench_results.setdefault("scale", bench_config.base_scale)
    _bench_results["enforced"] = bench_config.base_scale >= _ENFORCE_SCALE
    _bench_results[section] = payload
    _RESULTS_PATH.write_text(
        json.dumps(_bench_results, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="module", autouse=True)
def _append_bench_history(bench_config):
    """After the module's benchmarks finish, fold the run into the
    history store — but only *enforced* runs (scale >= 14): the scale-10
    CI smoke numbers would poison the scale-15 baseline series."""
    yield
    if not _bench_results.get("enforced"):
        return
    from repro.obs.history import HistoryStore, snapshot_run

    metrics = {}
    claim = _bench_results.get("claim_step", {})
    hybrid = _bench_results.get("hybrid_traversal", {})
    tracing = _bench_results.get("tracing_disabled", {})
    tile_bu = _bench_results.get("tile_bottom_up", {})
    tile_ms = _bench_results.get("tile_msbfs", {})
    if claim.get("speedup") is not None:
        metrics["bench.claim_speedup"] = {
            "type": "gauge", "value": claim["speedup"],
        }
    if hybrid.get("speedup") is not None:
        metrics["bench.hybrid_speedup"] = {
            "type": "gauge", "value": hybrid["speedup"],
        }
    if tile_bu.get("ratio_vs_scan") is not None:
        metrics["bench.tile_bu_ratio"] = {
            "type": "gauge", "value": tile_bu["ratio_vs_scan"],
        }
    if tile_ms.get("speedup") is not None:
        metrics["bench.tile_msbfs_speedup"] = {
            "type": "gauge", "value": tile_ms["speedup"],
        }
    if hybrid.get("workspace_s") is not None:
        metrics["bench.hybrid_workspace_seconds"] = {
            "type": "gauge", "value": hybrid["workspace_s"],
        }
    if tracing.get("overhead_vs_baseline") is not None:
        metrics["bench.tracing_overhead"] = {
            "type": "gauge", "value": tracing["overhead_vs_baseline"],
        }
    profiler = _bench_results.get("profiler_overhead", {})
    if profiler.get("sampler_overhead") is not None:
        metrics["bench.profiler_sampler_overhead"] = {
            "type": "gauge", "value": profiler["sampler_overhead"],
        }
    if profiler.get("recorder_overhead") is not None:
        metrics["bench.profiler_recorder_overhead"] = {
            "type": "gauge", "value": profiler["recorder_overhead"],
        }
    live = _bench_results.get("collector_overhead", {})
    if live.get("collector_listener_frac") is not None:
        metrics["bench.collector_listener_frac"] = {
            "type": "gauge", "value": live["collector_listener_frac"],
        }
    if live.get("dashboard_duty_frac") is not None:
        metrics["bench.dashboard_duty_frac"] = {
            "type": "gauge", "value": live["dashboard_duty_frac"],
        }
    if not metrics:
        return
    HistoryStore(_HISTORY_PATH).append(
        snapshot_run(
            "bench.kernels",
            f"rmat-s{_bench_results['scale']}-ef16",
            metrics=metrics,
            sections=sorted(
                k for k in _bench_results if isinstance(_bench_results[k], dict)
            ),
        )
    )


def _best_of(fn, *, repeat: int = 7, setup=None) -> float:
    """Minimum wall-clock seconds over ``repeat`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeat):
        if setup is not None:
            setup()
        t0 = now()
        fn()
        best = min(best, now() - t0)
    return best


@pytest.fixture(scope="module")
def workload(bench_config):
    graph = rmat(bench_config.base_scale, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])
    return graph, source


def test_kernel_top_down(benchmark, workload):
    graph, source = workload
    result = benchmark(lambda: bfs_top_down(graph, source))
    assert result.num_reached > 1


def test_kernel_bottom_up(benchmark, workload):
    graph, source = workload
    result = benchmark(lambda: bfs_bottom_up(graph, source))
    assert result.num_reached > 1


def test_kernel_hybrid(benchmark, workload):
    graph, source = workload
    result = benchmark(lambda: bfs_hybrid(graph, source, m=20, n=100))
    assert result.num_reached > 1


def test_kernel_spmv(benchmark, workload):
    graph, source = workload
    result = benchmark(lambda: bfs_spmv(graph, source))
    assert result.num_reached > 1


def test_hybrid_examines_fewer_edges(workload):
    """The work argument behind the speedup: the hybrid inspects a
    fraction of the adjacency entries pure top-down touches."""
    graph, source = workload
    td = bfs_top_down(graph, source)
    hy = bfs_hybrid(graph, source, m=20, n=100)
    assert sum(hy.edges_examined) < 0.7 * sum(td.edges_examined)


def test_speedup_claim_step(workload, bench_config):
    """O(k) reversed-scatter claim vs the sort-based np.unique claim.

    Reproduces the exact candidate set the top-down engine sees at the
    widest level of the traversal (depth 2 on R-MAT), then races the
    two claim implementations on identical inputs.  Results must be
    bit-identical; the scatter claim must be >= 2x faster at scale >= 14.
    """
    graph, source = workload
    ws = BFSWorkspace.for_graph(graph)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)
    for depth in range(2):
        frontier, _ = top_down_step(
            graph, frontier, parent, level, depth, workspace=ws
        )
        ws.retire_claimed(parent)
    neighbours, owners, _ = expand_rows(graph, frontier, workspace=ws)
    fresh = parent[neighbours] < 0
    cand = np.ascontiguousarray(neighbours[fresh])
    cand_parent = np.ascontiguousarray(owners[fresh])
    assert cand.size > 0

    # Claiming mutates parent/level: restore pristine copies outside
    # the timed region before every trial.
    parent0 = parent.copy()
    level0 = level.copy()

    def reset():
        np.copyto(parent, parent0)
        np.copyto(level, level0)

    legacy_s = _best_of(
        lambda: legacy_unique_claim(cand, cand_parent, parent, level, 2),
        setup=reset,
    )
    reset()
    legacy_frontier = legacy_unique_claim(cand, cand_parent, parent, level, 2)
    legacy_parent = parent.copy()
    legacy_level = level.copy()

    new_s = _best_of(
        lambda: claim_first_writer(
            cand, cand_parent, parent, level, 2, workspace=ws
        ),
        setup=reset,
    )
    reset()
    new_frontier = claim_first_writer(
        cand, cand_parent, parent, level, 2, workspace=ws
    )

    np.testing.assert_array_equal(new_frontier, legacy_frontier)
    np.testing.assert_array_equal(parent, legacy_parent)
    np.testing.assert_array_equal(level, legacy_level)

    speedup = legacy_s / new_s
    _record(
        "claim_step",
        {
            "candidates": int(cand.size),
            "legacy_unique_s": legacy_s,
            "scatter_claim_s": new_s,
            "speedup": round(speedup, 3),
            "floor": 2.0,
        },
        bench_config,
    )
    print(
        f"\nclaim step ({cand.size} candidates): "
        f"legacy {legacy_s * 1e3:.3f} ms, new {new_s * 1e3:.3f} ms, "
        f"{speedup:.2f}x"
    )
    if bench_config.base_scale >= _ENFORCE_SCALE:
        assert speedup >= 2.0


def test_speedup_hybrid_traversal(workload, bench_config):
    """Whole direction-optimized traversal: warm workspace vs the
    pre-workspace engine (per-call allocations, unique claim, full
    unvisited rescans, bool frontier mask).

    Same parents, levels, directions and edge counters; >= 1.5x
    wall-clock at scale >= 14.
    """
    graph, source = workload
    m, n = 20.0, 100.0

    legacy = legacy_bfs_hybrid(graph, source, m=m, n=n)
    legacy_s = _best_of(lambda: legacy_bfs_hybrid(graph, source, m=m, n=n))

    ws = BFSWorkspace.for_graph(graph)
    new = bfs_hybrid(graph, source, m=m, n=n, workspace=ws).detach()
    new_s = _best_of(lambda: bfs_hybrid(graph, source, m=m, n=n, workspace=ws))

    np.testing.assert_array_equal(new.parent, legacy.parent)
    np.testing.assert_array_equal(new.level, legacy.level)
    assert new.directions == legacy.directions
    assert new.edges_examined == legacy.edges_examined

    speedup = legacy_s / new_s
    _record(
        "hybrid_traversal",
        {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "directions": list(legacy.directions),
            "legacy_s": legacy_s,
            "workspace_s": new_s,
            "speedup": round(speedup, 3),
            "floor": 1.5,
        },
        bench_config,
    )
    print(
        f"\nhybrid traversal: legacy {legacy_s * 1e3:.3f} ms, "
        f"workspace {new_s * 1e3:.3f} ms, {speedup:.2f}x"
    )
    if bench_config.base_scale >= _ENFORCE_SCALE:
        assert speedup >= 1.5


def test_tile_bottom_up_vs_row_scan(workload, bench_config):
    """Masked tile SpMV vs the windowed ``_row_scan`` on the widest
    bottom-up level.

    Reproduces the level the hybrid switches at (after two top-down
    steps) and races :func:`bottom_up_tiles_step` against the entry
    reference :func:`bottom_up_step` on identical inputs.  Winners and
    parent claims must be bit-identical.

    The recorded figure is ``ratio_vs_scan = scan_s / tile_s``.  On
    this host the word-packed kernel streams ~24 bytes per probe word
    against the scan's tuned 4-entry gather window, so the honest
    expectation at R-MAT sparsity (~1.3 entries/word at scale 15) is
    *parity, not victory* — the tile family exists for architectures
    that price 64-lane AND/popcount probes at word cost (the
    ``tensor-tile`` preset in ``repro.arch.specs``).  The floor pins
    the kernel to within 2x of the scan so a regression can't hide
    behind that framing.
    """
    graph, source = workload
    tiles = tile_matrix(graph)
    ws = BFSWorkspace.for_graph(graph)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)
    for depth in range(2):
        frontier, _ = top_down_step(
            graph, frontier, parent, level, depth, workspace=ws
        )
        ws.retire_claimed(parent)
    bits = ws.load_frontier(frontier)
    unvisited = ws.unvisited_ids(graph, parent)
    assert unvisited.size > 0

    parent0 = parent.copy()
    level0 = level.copy()

    def reset():
        np.copyto(parent, parent0)
        np.copyto(level, level0)

    scan_s = _best_of(
        lambda: bottom_up_step(
            graph, bits, parent, level, 2, unvisited=unvisited, workspace=ws
        ),
        setup=reset,
    )
    reset()
    scan_winners, _ = bottom_up_step(
        graph, bits, parent, level, 2, unvisited=unvisited, workspace=ws
    )
    scan_parent = parent.copy()
    scan_level = level.copy()

    tile_s = _best_of(
        lambda: bottom_up_tiles_step(
            graph,
            bits,
            parent,
            level,
            2,
            tiles=tiles,
            unvisited=unvisited,
            workspace=ws,
        ),
        setup=reset,
    )
    reset()
    tile_winners, _ = bottom_up_tiles_step(
        graph, bits, parent, level, 2,
        tiles=tiles, unvisited=unvisited, workspace=ws,
    )

    np.testing.assert_array_equal(tile_winners, scan_winners)
    np.testing.assert_array_equal(parent, scan_parent)
    np.testing.assert_array_equal(level, scan_level)

    ratio = scan_s / tile_s
    _record(
        "tile_bottom_up",
        {
            "frontier": int(frontier.size),
            "unvisited": int(unvisited.size),
            "tile_fill": round(tiles.compression(), 3),
            "row_scan_s": scan_s,
            "tile_spmv_s": tile_s,
            "ratio_vs_scan": round(ratio, 3),
            "floor": 0.5,
        },
        bench_config,
    )
    print(
        f"\ntile bottom-up ({unvisited.size} unvisited rows): "
        f"scan {scan_s * 1e3:.3f} ms, tile {tile_s * 1e3:.3f} ms, "
        f"ratio {ratio:.2f}x"
    )
    if bench_config.base_scale >= _ENFORCE_SCALE:
        assert ratio >= 0.5


def test_tile_msbfs_vs_looped_bfs(workload, bench_config):
    """One tile-SpMM MS-BFS batch vs looping the single-source engine.

    The 64-root distance query the SpMM answers in one bitmap-matrix
    pass per level is otherwise 64 warm hybrid traversals; the batched
    kernel must beat that loop.  Per-source levels must agree exactly
    with the looped runs (and with the scatter msbfs, recorded for
    reference).
    """
    graph, _ = workload
    sources = pick_sources(graph, 64, seed=1)
    ws = BFSWorkspace.for_graph(graph)
    m, n = 20.0, 100.0

    tile_res = msbfs(graph, sources, kernel="tiles", workspace=ws)
    for i, s in enumerate(sources):
        single = bfs_hybrid(graph, int(s), m=m, n=n, workspace=ws)
        np.testing.assert_array_equal(tile_res.levels[i], single.level)
    scatter_res = msbfs(graph, sources, workspace=ws)
    np.testing.assert_array_equal(tile_res.levels, scatter_res.levels)

    def looped():
        for s in sources:
            bfs_hybrid(graph, int(s), m=m, n=n, workspace=ws)

    looped_s = _best_of(looped, repeat=3)
    tile_s = _best_of(
        lambda: msbfs(graph, sources, kernel="tiles", workspace=ws),
        repeat=3,
    )
    scatter_s = _best_of(
        lambda: msbfs(graph, sources, workspace=ws), repeat=3
    )

    speedup = looped_s / tile_s
    _record(
        "tile_msbfs",
        {
            "batch": int(sources.size),
            "looped_hybrid_s": looped_s,
            "tile_spmm_s": tile_s,
            "scatter_msbfs_s": scatter_s,
            "speedup": round(speedup, 3),
            "floor": 1.3,
        },
        bench_config,
    )
    print(
        f"\ntile msbfs (batch {sources.size}): "
        f"looped {looped_s * 1e3:.1f} ms, spmm {tile_s * 1e3:.1f} ms, "
        f"scatter {scatter_s * 1e3:.1f} ms, {speedup:.2f}x vs loop"
    )
    if bench_config.base_scale >= _ENFORCE_SCALE:
        assert speedup >= 1.3


def test_tracing_disabled_overhead(workload, bench_config):
    """The observability layer's off switch must be free on the hot path.

    Since the tracer landed, every engine resolves an ambient tracer and
    makes a handful of no-op calls per level.  This test re-races the
    warm workspace hybrid against the (never instrumented) legacy engine
    and compares the workspace/legacy wall-clock *ratio* against the
    committed pre-run ``BENCH_kernels.json`` ratio.  Dividing by the
    same-process legacy time cancels host speed drift between machines,
    so what remains is the tax the instrumented engine picked up — which
    must stay within 3% when tracing is disabled.
    """
    graph, source = workload
    m, n = 20.0, 100.0
    # The whole point: the ambient tracer must be the disabled default.
    assert not get_tracer().enabled

    ws = BFSWorkspace.for_graph(graph)
    bfs_hybrid(graph, source, m=m, n=n, workspace=ws)  # warm the workspace
    new_s = _best_of(
        lambda: bfs_hybrid(graph, source, m=m, n=n, workspace=ws)
    )
    legacy_s = _best_of(lambda: legacy_bfs_hybrid(graph, source, m=m, n=n))

    base = _BASELINE.get("hybrid_traversal", {})
    comparable = (
        bool(base.get("legacy_s"))
        and bool(base.get("workspace_s"))
        and _BASELINE.get("scale") == bench_config.base_scale
    )
    overhead = None
    if comparable:
        base_ratio = base["workspace_s"] / base["legacy_s"]
        overhead = (new_s / legacy_s) / base_ratio - 1.0

    _record(
        "tracing_disabled",
        {
            "legacy_s": legacy_s,
            "workspace_s": new_s,
            "baseline_workspace_s": base.get("workspace_s"),
            "baseline_legacy_s": base.get("legacy_s"),
            "overhead_vs_baseline": (
                None if overhead is None else round(overhead, 4)
            ),
            "limit": _TRACING_OVERHEAD_LIMIT,
        },
        bench_config,
    )
    if overhead is not None:
        print(
            f"\ntracing disabled: workspace {new_s * 1e3:.3f} ms "
            f"(baseline-relative overhead {overhead:+.2%}, "
            f"limit {_TRACING_OVERHEAD_LIMIT:.0%})"
        )
    else:
        print(
            f"\ntracing disabled: workspace {new_s * 1e3:.3f} ms "
            "(no comparable committed baseline at this scale)"
        )
    if comparable and bench_config.base_scale >= _ENFORCE_SCALE:
        assert overhead <= _TRACING_OVERHEAD_LIMIT, (
            f"disabled tracing costs {overhead:.2%} on a warm hybrid "
            f"traversal (limit {_TRACING_OVERHEAD_LIMIT:.0%})"
        )


def _span_storm_s(tracer, *, levels: int = 7, iters: int = 300) -> float:
    """Per-iteration seconds of a traversal-shaped span pattern (one
    watched root plus ``levels`` level spans) on ``tracer``.

    Empty span bodies mean the measured time is almost entirely the
    tracer's own open/close path plus whatever listeners are attached
    — subtracting a bare-tracer storm from a listener-laden one
    isolates the per-traversal listener cost without any kernel
    wall-clock noise in the signal.
    """

    def once():
        for _ in range(iters):
            with tracer.span("bfs.hybrid"):
                for _ in range(levels):
                    with tracer.span("bfs.level", kernel="scan"):
                        pass

    return _best_of(once, repeat=5) / iters


def test_profiler_overhead(workload, bench_config, tmp_path):
    """The profiling tier must be cheap enough to leave on.

    Races a warm traced hybrid traversal three ways in the same
    process: with an enabled bare tracer (the anchor), with the
    :class:`~repro.obs.profile.StackSampler` thread running at the
    library default rate (the rate whose cost the sampler docstring
    promises is bounded; ``repro-bfs profile`` opts into a hotter
    997 Hz where proportionally more tax is the explicit trade), and
    with only the flight recorder listening.

    The enforced budgets — <= 5% for the sampler, <= 1% for the
    recorder, at scale >= 14 — sit *below* this host's wall-clock
    noise floor for a milliseconds-long traversal, so end-to-end
    ratios cannot adjudicate them reliably.  Each budget is therefore
    enforced on a direct measurement whose variance is orders of
    magnitude smaller:

    * **sampler** — ``busy_seconds / wall``: the time the sampler
      thread spends walking frames, which (pure Python, GIL held) is
      the execution time it steals from the traversal;
    * **recorder** — a span storm shaped like a traversal, timed with
      and without the recorder attached; the difference is the
      listener's per-traversal cost, divided by the measured warm
      traversal time.

    The end-to-end wall ratios are still recorded, and compared
    against the committed ``BENCH_kernels.json`` run (a ratio of
    ratios, like the tracing guard) so a slow creep across revisions
    stays visible in the ``drift`` fields.  The recorder's
    ``slow_factor`` is pinned sky-high so no snapshot dump lands
    inside a timed region.
    """
    graph, source = workload
    m, n = 20.0, 100.0
    ws = BFSWorkspace.for_graph(graph)
    bfs_hybrid(graph, source, m=m, n=n, workspace=ws)  # warm the workspace

    # Each timed region is a batch of traversals: timer jitter and GC
    # pauses average into every batch uniformly while any profiler tax
    # scales with the batch.
    batch, repeat = 8, 12

    def run():
        for _ in range(batch):
            bfs_hybrid(graph, source, m=m, n=n, workspace=ws)

    with use_tracer(Tracer()):
        plain_s = _best_of(run, repeat=repeat)
    traversal_s = plain_s / batch

    sampler_session = ProfileSession(
        sampler=True, hz=DEFAULT_HZ, alloc=False, recorder=False
    )
    wall0 = now()
    with sampler_session, use_tracer(sampler_session.tracer):
        sampler_s = _best_of(run, repeat=repeat)
    sampler_wall = now() - wall0
    samples = len(sampler_session.sampler.samples)
    sampler_busy_frac = sampler_session.sampler.busy_seconds / sampler_wall

    recorder_session = ProfileSession(
        sampler=False,
        alloc=False,
        recorder=True,
        snapshot_dir=tmp_path,
        recorder_kwargs={"slow_factor": 1e9},
    )
    with recorder_session, use_tracer(recorder_session.tracer):
        recorder_s = _best_of(run, repeat=repeat)
        # Storm the session tracer while the recorder is still attached
        # (and its metric registry populated by the real runs above, so
        # the per-root-close delta pass pays its true cost).
        recorder_storm_s = _span_storm_s(recorder_session.tracer)
    bare_storm_s = _span_storm_s(Tracer())
    recorder_frac = (recorder_storm_s - bare_storm_s) / traversal_s
    assert not recorder_session.recorder.triggers

    sampler_overhead = sampler_s / plain_s - 1.0
    recorder_overhead = recorder_s / plain_s - 1.0

    base = _BASELINE.get("profiler_overhead", {})
    comparable = (
        bool(base.get("plain_s"))
        and _BASELINE.get("scale") == bench_config.base_scale
    )
    sampler_drift = recorder_drift = None
    if comparable:
        if base.get("sampler_s"):
            sampler_drift = (sampler_s / plain_s) / (
                base["sampler_s"] / base["plain_s"]
            ) - 1.0
        if base.get("recorder_s"):
            recorder_drift = (recorder_s / plain_s) / (
                base["recorder_s"] / base["plain_s"]
            ) - 1.0

    _record(
        "profiler_overhead",
        {
            "hz": DEFAULT_HZ,
            "batch": batch,
            "plain_s": plain_s,
            "sampler_s": sampler_s,
            "recorder_s": recorder_s,
            "samples": samples,
            "sampler_busy_frac": round(sampler_busy_frac, 4),
            "recorder_listener_frac": round(recorder_frac, 4),
            "sampler_overhead": round(sampler_overhead, 4),
            "recorder_overhead": round(recorder_overhead, 4),
            "sampler_drift": (
                None if sampler_drift is None else round(sampler_drift, 4)
            ),
            "recorder_drift": (
                None if recorder_drift is None else round(recorder_drift, 4)
            ),
            "sampler_limit": _SAMPLER_OVERHEAD_LIMIT,
            "recorder_limit": _RECORDER_OVERHEAD_LIMIT,
        },
        bench_config,
    )
    print(
        f"\nprofiler overhead: sampler busy {sampler_busy_frac:.2%} "
        f"({samples} samples), recorder listener {recorder_frac:.2%} "
        f"of a {traversal_s * 1e3:.3f} ms traversal "
        f"(wall ratios {sampler_overhead:+.2%} / {recorder_overhead:+.2%})"
    )
    if bench_config.base_scale >= _ENFORCE_SCALE:
        assert sampler_busy_frac <= _SAMPLER_OVERHEAD_LIMIT, (
            f"sampler steals {sampler_busy_frac:.2%} of wall time "
            f"(limit {_SAMPLER_OVERHEAD_LIMIT:.0%})"
        )
        assert recorder_frac <= _RECORDER_OVERHEAD_LIMIT, (
            f"flight recorder costs {recorder_frac:.2%} of a warm "
            f"hybrid traversal (limit {_RECORDER_OVERHEAD_LIMIT:.0%})"
        )


def test_collector_overhead(workload, bench_config):
    """The live tier must fit inside the tracing budget when armed.

    ``repro-bfs top`` attaches a :class:`~repro.obs.live.Collector`
    (windowed aggregation + burn-rate evaluation on every span close)
    and redraws a dashboard at most 4 times a second.  Both ride the
    same <=3% budget the disabled tracer already honours, and — like
    the profiler guard above — both are enforced on direct
    measurements rather than end-to-end wall ratios, which sit below
    this host's noise floor for a milliseconds-long traversal:

    * **collector** — a traversal-shaped span storm timed with and
      without the collector listening; the difference is the
      aggregation cost per traversal, divided by the measured warm
      traversal time;
    * **dashboard** — seconds per ``render()`` + ``evaluate()`` frame
      times the 4 Hz ceiling: the duty fraction of one core the
      refresh loop can ever claim, independent of workload length.

    The end-to-end ratio is still recorded so creep stays visible in
    ``BENCH_kernels.json``.
    """
    from repro.obs.live import Collector, SLOPolicy, render

    graph, source = workload
    m, n = 20.0, 100.0
    ws = BFSWorkspace.for_graph(graph)
    bfs_hybrid(graph, source, m=m, n=n, workspace=ws)  # warm the workspace

    batch, repeat = 8, 12

    def run():
        for _ in range(batch):
            bfs_hybrid(graph, source, m=m, n=n, workspace=ws)

    with use_tracer(Tracer()):
        plain_s = _best_of(run, repeat=repeat)
    traversal_s = plain_s / batch

    policies = [SLOPolicy.parse("graph500.bfs<1.0@0.9")]
    armed_tracer = Tracer()
    with Collector(armed_tracer, policies=policies) as collector:
        with use_tracer(armed_tracer):
            armed_s = _best_of(run, repeat=repeat)
            # Storm while the collector is still listening, with its
            # windows already populated by the real runs above.
            armed_storm_s = _span_storm_s(armed_tracer)
        # One dashboard frame: evaluate every policy, render the
        # sparklines/active-span sections from live state.

        def frame():
            collector.evaluate()
            render(collector)

        frame_s = _best_of(frame, repeat=5)
    bare_storm_s = _span_storm_s(Tracer())
    collector_frac = (armed_storm_s - bare_storm_s) / traversal_s
    dashboard_duty = frame_s * 4.0  # 4 Hz refresh ceiling
    armed_overhead = armed_s / plain_s - 1.0

    base = _BASELINE.get("collector_overhead", {})
    drift = None
    if (
        bool(base.get("plain_s"))
        and bool(base.get("armed_s"))
        and _BASELINE.get("scale") == bench_config.base_scale
    ):
        drift = (armed_s / plain_s) / (
            base["armed_s"] / base["plain_s"]
        ) - 1.0

    _record(
        "collector_overhead",
        {
            "batch": batch,
            "plain_s": plain_s,
            "armed_s": armed_s,
            "frame_s": frame_s,
            "collector_listener_frac": round(collector_frac, 4),
            "dashboard_duty_frac": round(dashboard_duty, 4),
            "armed_overhead": round(armed_overhead, 4),
            "drift": None if drift is None else round(drift, 4),
            "limit": _COLLECTOR_OVERHEAD_LIMIT,
        },
        bench_config,
    )
    print(
        f"\ncollector overhead: listener {collector_frac:.2%} of a "
        f"{traversal_s * 1e3:.3f} ms traversal, dashboard frame "
        f"{frame_s * 1e3:.3f} ms ({dashboard_duty:.2%} duty at 4 Hz, "
        f"wall ratio {armed_overhead:+.2%})"
    )
    if bench_config.base_scale >= _ENFORCE_SCALE:
        assert collector_frac <= _COLLECTOR_OVERHEAD_LIMIT, (
            f"armed collector costs {collector_frac:.2%} of a warm "
            f"hybrid traversal (limit {_COLLECTOR_OVERHEAD_LIMIT:.0%})"
        )
        assert dashboard_duty <= _COLLECTOR_OVERHEAD_LIMIT, (
            f"dashboard refresh claims {dashboard_duty:.2%} of a core "
            f"at 4 Hz (limit {_COLLECTOR_OVERHEAD_LIMIT:.0%})"
        )
