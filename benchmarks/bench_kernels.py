"""Real-machine kernel benchmarks (wall clock, not the simulator).

Times the actual NumPy BFS engines on this host — the honest
single-machine performance of the library, complementing the simulated
paper-scale numbers.  Direction optimization must win on R-MAT even in
pure NumPy: the hybrid examines far fewer adjacency entries.
"""

import pytest

from repro.bfs.bottomup import bfs_bottom_up
from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.profiler import pick_sources
from repro.bfs.spmv import bfs_spmv
from repro.bfs.topdown import bfs_top_down
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def workload(bench_config):
    graph = rmat(bench_config.base_scale, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])
    return graph, source


def test_kernel_top_down(benchmark, workload):
    graph, source = workload
    result = benchmark(lambda: bfs_top_down(graph, source))
    assert result.num_reached > 1


def test_kernel_bottom_up(benchmark, workload):
    graph, source = workload
    result = benchmark(lambda: bfs_bottom_up(graph, source))
    assert result.num_reached > 1


def test_kernel_hybrid(benchmark, workload):
    graph, source = workload
    result = benchmark(lambda: bfs_hybrid(graph, source, m=20, n=100))
    assert result.num_reached > 1


def test_kernel_spmv(benchmark, workload):
    graph, source = workload
    result = benchmark(lambda: bfs_spmv(graph, source))
    assert result.num_reached > 1


def test_hybrid_examines_fewer_edges(workload):
    """The work argument behind the speedup: the hybrid inspects a
    fraction of the adjacency entries pure top-down touches."""
    graph, source = workload
    td = bfs_top_down(graph, source)
    hy = bfs_hybrid(graph, source, m=20, n=100)
    assert sum(hy.edges_examined) < 0.7 * sum(td.edges_examined)
