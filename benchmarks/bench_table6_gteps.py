"""Bench for Table VI — average GTEPS by data size and architecture."""

from repro.bench.experiments import table6_gteps


def test_table6_gteps(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: table6_gteps.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    by = {r["arch"]: r for r in result.rows}
    # MIC is the slowest combination everywhere (paper: 1.3-1.6 GTEPS).
    for label in ("2M", "4M", "8M"):
        assert by["mic"][f"gteps_{label}"] == min(
            by[a][f"gteps_{label}"] for a in by
        )
    # CPU and GPU stay within a small factor of each other at every
    # size (paper: 3.06-6.32 GTEPS band).  The paper's size *trend*
    # (CPU overtakes GPU at 8M) does not reproduce under this cost
    # model — the GPU's occupancy ramp dominates its cache penalty, so
    # the GPU improves with size instead; EXPERIMENTS.md discusses the
    # deviation.
    for label in ("2M", "4M", "8M"):
        ratio = by["cpu"][f"gteps_{label}"] / by["gpu"][f"gteps_{label}"]
        assert 0.2 < ratio < 5.0
