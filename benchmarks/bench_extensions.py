"""Benches for the extension experiments and downstream applications."""

import numpy as np

from repro.apps import connected_components, pseudo_diameter, st_connectivity
from repro.bench.experiments import (
    ext_arch_sweep,
    ext_mistuning,
    ext_root_features,
    ext_sources,
    ext_topology,
)
from repro.bfs.multisource import msbfs
from repro.bfs.profiler import pick_sources
from repro.graph.generators import rmat
from repro.graph500 import run_graph500
from repro.obs.clock import now


def test_ext_arch_sweep(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ext_arch_sweep.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    wins = sum(r["cross_wins"] for r in result.rows)
    assert wins >= len(result.rows) // 2
    # The paper's own configuration must sit in the winning region.
    base = next(
        r
        for r in result.rows
        if r["gpu_bw_factor"] == 1.0 and r["cpu_cores"] == 8
    )
    assert base["cross_advantage"] > 1.0


def test_ext_mistuning(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ext_mistuning.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    slowdowns = np.array(result.column("slowdown"))
    # Wide plateau, sharp cliff (order of magnitude or more).
    assert (slowdowns < 1.05).mean() > 0.2
    assert slowdowns.max() > 5.0


def test_ext_topology(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ext_topology.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    by = {r["topology"]: r for r in result.rows}
    # Scale-free and flat random graphs benefit substantially.
    assert by["rmat"]["hybrid_speedup"] > 2.0
    assert by["erdos_renyi"]["hybrid_speedup"] > 2.0
    # The grid's regime is overhead-bound, flagged as such.
    assert by["grid2d"]["regime"] == "overhead"


def test_ext_sources(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ext_sources.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    regrets = result.column("max_cross_root_regret")
    assert all(r >= 1.0 for r in regrets)
    # The headline finding: root dependence is measurable.
    m_values = result.column("best_m")
    assert max(m_values) / min(m_values) > 1.5


def test_ext_root_features(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: ext_root_features.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    from repro.bench.metrics import geometric_mean

    gm_free = geometric_mean(result.column("frac_root_free"))
    gm_aware = geometric_mean(result.column("frac_root_aware"))
    # Both predictors stay usable; whether root features help is the
    # experiment's *finding*, reported in the notes (it is seed-
    # sensitive at these corpus sizes — see EXPERIMENTS.md).
    assert gm_free > 0.5
    assert gm_aware > 0.5
    assert any("verdict" in n for n in result.notes)


def test_app_connected_components(benchmark, bench_config):
    graph = rmat(bench_config.base_scale - 2, 16, seed=0)
    cc = benchmark(lambda: connected_components(graph))
    assert cc.giant_fraction() > 0.5  # R-MAT has a giant component


def test_app_st_connectivity(benchmark, bench_config):
    graph = rmat(bench_config.base_scale, 16, seed=0)
    src = pick_sources(graph, 2, seed=1)
    result = benchmark(
        lambda: st_connectivity(graph, int(src[0]), int(src[1]))
    )
    assert result.connected


def test_app_pseudo_diameter(benchmark, bench_config):
    graph = rmat(bench_config.base_scale - 2, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])
    est = benchmark(lambda: pseudo_diameter(graph, source))
    assert est.lower_bound >= 2


def test_app_msbfs_amortizes(benchmark, bench_config):
    """64 searches in one batched pass must beat 64 separate runs."""
    import time

    from repro.bfs.topdown import bfs_top_down

    graph = rmat(bench_config.base_scale - 3, 16, seed=0)
    sources = pick_sources(graph, 64, seed=1)

    t0 = now()
    for s in sources:
        bfs_top_down(graph, int(s))
    separate = now() - t0

    out = benchmark(lambda: msbfs(graph, sources))
    assert out.num_sources == 64

    t0 = now()
    msbfs(graph, sources)
    batched = now() - t0
    assert batched < separate  # the whole point of the bit-parallel batch


def test_graph500_driver(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: run_graph500(
            bench_config.base_scale - 3, 16, num_roots=8, seed=2
        ),
        rounds=1,
        iterations=1,
    )
    from repro.bench.runner import ExperimentResult

    report(
        ExperimentResult(
            name="graph500_driver",
            title="Graph 500 driver (wall clock, this host)",
            rows=[
                {
                    "scale": result.scale,
                    "nbfs": result.num_roots,
                    "harmonic_mean_gteps": result.harmonic_mean_teps / 1e9,
                    "median_gteps": result.teps_stats.median / 1e9,
                    "validated": result.validated,
                }
            ],
        )
    )
    assert result.validated
