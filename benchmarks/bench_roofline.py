"""Bench for Table II / Section III-B — RCMA vs RCMB roofline."""

import pytest

from repro.bench.experiments import roofline_rcmb


def test_roofline_rcmb(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: roofline_rcmb.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    for row in result.rows:
        assert row["memory_bound"]
        assert row["rcmb_sp"] == pytest.approx(
            row["paper_rcmb_sp"], abs=0.05
        )
