"""Bench for Fig. 9 — combination performance per architecture."""

from repro.bench.experiments import fig09_combinations
from repro.bench.metrics import geometric_mean


def test_fig09_combinations(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: fig09_combinations.run(bench_config),
        rounds=1,
        iterations=1,
    )
    report(result)
    # Cross-architecture wins (or ties, when the optimal handoff is
    # level 0 and the plan degenerates to the GPU combination) on every
    # graph, most decisively over the MIC.
    for row in result.rows:
        assert row["cross_over_mic"] > 1.0
        assert row["cross_over_cpu"] >= 1.0
        assert row["cross_over_gpu"] >= 1.0
    assert geometric_mean(result.column("cross_over_mic")) > geometric_mean(
        result.column("cross_over_gpu")
    )
