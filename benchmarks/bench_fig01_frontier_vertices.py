"""Bench for Fig. 1 — frontier vertices per level.

Regenerates the figure's series and times the instrumented profiler
(the measurement kernel behind Figs. 1-3 and every downstream
experiment).
"""

from repro.bench.experiments import fig01_frontier_vertices
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.graph.generators import rmat


def test_fig01_frontier_vertices(benchmark, bench_config, report):
    result = fig01_frontier_vertices.run(bench_config)
    report(result)
    assert all(r["peak_in_middle"] for r in result.rows)

    graph = rmat(bench_config.base_scale - 2, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])
    benchmark(lambda: profile_bfs(graph, source))
