"""Bench for Table III — best M per graph (CPU).

Regenerates the table and times the M-scan (the paper's [1, 300]
exhaustive search, reduced to counter arithmetic here).
"""

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.experiments import table3_best_m
from repro.bench.workloads import WorkloadSpec, paper_scale_profile
from repro.tuning.search import best_m_scan


def test_table3_best_m(benchmark, bench_config, report):
    result = table3_best_m.run(bench_config)
    report(result)
    best = result.column("best_m")
    assert max(best) / min(best) > 1.5  # no single M fits all graphs

    profile = paper_scale_profile(
        WorkloadSpec(bench_config.base_scale, 16, seed=0), 22
    )
    model = CostModel(CPU_SANDY_BRIDGE)
    benchmark(lambda: best_m_scan(profile, model))
