"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` regenerates one of the paper's tables/figures: it
runs the experiment once (printing the table and writing JSON under
``benchmarks/results/``) and times a representative kernel with
pytest-benchmark so regressions in the heavy code paths are visible.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — measured graph scale (default 15; raise for
  higher fidelity, lower for speed).
* ``REPRO_CACHE_DIR`` — workload/profile cache location.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.runner import BenchConfig


def pytest_configure(config):
    # Benchmarks print the regenerated tables; keep output visible.
    config.option.verbose = max(config.option.verbose, 0)


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "15"))
    return BenchConfig(base_scale=scale)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def report(results_dir):
    """Print an experiment result and persist it."""

    def _report(result):
        print()
        print(result.render())
        result.save(results_dir)
        return result

    return _report
