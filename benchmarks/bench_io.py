"""Graph I/O throughput benchmarks.

Workload caching and interchange are part of the harness's critical
path (kernel 1 of Graph 500 is construction); these benches keep the
three formats' relative costs visible: NPZ (native, compressed),
edge-list text and MatrixMarket.
"""

import pytest

from repro.graph.generators import rmat
from repro.graph.io import (
    load_edgelist,
    load_matrix_market,
    load_npz,
    save_edgelist,
    save_matrix_market,
    save_npz,
)


@pytest.fixture(scope="module")
def graph(bench_config):
    return rmat(bench_config.base_scale - 3, 16, seed=0)


@pytest.fixture(scope="module")
def saved(graph, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("io")
    paths = {
        "npz": tmp / "g.npz",
        "edgelist": tmp / "g.txt",
        "mtx": tmp / "g.mtx",
    }
    save_npz(graph, paths["npz"])
    save_edgelist(graph, paths["edgelist"])
    save_matrix_market(graph, paths["mtx"])
    return paths


def test_io_save_npz(benchmark, graph, tmp_path):
    benchmark(lambda: save_npz(graph, tmp_path / "g.npz"))


def test_io_load_npz(benchmark, saved, graph):
    loaded = benchmark(lambda: load_npz(saved["npz"]))
    assert loaded.num_edges == graph.num_edges


def test_io_load_edgelist(benchmark, saved, graph):
    loaded = benchmark(
        lambda: load_edgelist(
            saved["edgelist"], num_vertices=graph.num_vertices
        )
    )
    assert loaded.num_edges == graph.num_edges


def test_io_load_matrix_market(benchmark, saved, graph):
    loaded = benchmark(lambda: load_matrix_market(saved["mtx"]))
    assert loaded.num_edges == graph.num_edges


def test_io_csr_construction(benchmark, bench_config):
    """Kernel 1: edge list -> CSR (the timed step of Graph 500)."""
    from repro.graph.csr import CSRGraph
    from repro.graph.generators import rmat_edges

    scale = bench_config.base_scale - 1
    src, dst = rmat_edges(scale, 16, seed=0)
    graph = benchmark(
        lambda: CSRGraph.from_edges(src, dst, 1 << scale, symmetrize=True)
    )
    assert graph.num_edges > 0
