"""Bench for Table IV — the step-by-step optimization matrix.

Regenerates all eight approaches on the 8M/128M graph and times a full
plan pricing on the simulated machine.
"""

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bench.experiments import table4_step_by_step
from repro.bench.workloads import WorkloadSpec, paper_scale_profile


def test_table4_step_by_step(benchmark, bench_config, report):
    result = table4_step_by_step.run(bench_config)
    report(result)
    speedups = {
        k: v for k, v in result.rows[-1].items() if k != "level"
    }
    assert max(speedups, key=speedups.get) == "CPUTD+GPUCB"
    assert speedups["GPUCB"] > 2.0
    assert speedups["CPUTD+GPUCB"] > 10.0

    machine = SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})
    profile = paper_scale_profile(
        WorkloadSpec(bench_config.base_scale, 16, seed=bench_config.seeds[0]),
        23,
    )
    plans = table4_step_by_step.build_approaches(machine, profile)

    def price_all():
        return {
            name: machine.run(profile, plan).total_seconds
            for name, plan in plans.items()
        }

    benchmark(price_all)
