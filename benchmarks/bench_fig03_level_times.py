"""Bench for Fig. 3 — per-level TD vs BU times (CPU model).

Regenerates the two curves and times the cost model's time-matrix
evaluation (the pricing primitive of the reproduction).
"""

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.experiments import fig03_level_times
from repro.bench.workloads import WorkloadSpec, paper_scale_profile


def test_fig03_level_times(benchmark, bench_config, report):
    result = fig03_level_times.run(bench_config)
    report(result)
    winners = [r["faster"] for r in result.rows]
    assert winners[0] == "td" and "bu" in winners

    profile = paper_scale_profile(
        WorkloadSpec(bench_config.base_scale, 16, seed=0), 22
    )
    model = CostModel(CPU_SANDY_BRIDGE)
    benchmark(lambda: model.time_matrix(profile))
