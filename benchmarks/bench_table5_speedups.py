"""Bench for Table V — cross-architecture speedup over GPU top-down."""

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bench.experiments import table5_speedups
from repro.bench.metrics import geometric_mean
from repro.bench.workloads import WorkloadSpec, paper_scale_profile
from repro.hetero.planner import cross_plan


def test_table5_speedups(benchmark, bench_config, report):
    result = table5_speedups.run(bench_config)
    report(result)
    speedups = result.column("speedup")
    assert min(speedups) > 5.0
    assert geometric_mean(speedups) > 15.0  # paper average: 64x

    machine = SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})
    profile = paper_scale_profile(
        WorkloadSpec(bench_config.base_scale, 16, seed=0), 23
    )
    benchmark(
        lambda: machine.run(
            profile, cross_plan(profile, 50, 50, 50, 50)
        ).total_seconds
    )
