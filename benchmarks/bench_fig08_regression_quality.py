"""Bench for Fig. 8 — switching-point selection quality.

Regenerates the Random/Average/Regression/Exhaustive comparison and
times the *online* path: one switching-point prediction (the paper's
"< 0.1% of BFS execution-time" claim is about exactly this call).
"""

from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bench.experiments import fig08_regression_quality
from repro.bench.experiments._shared import train_default_predictor
from repro.bench.metrics import geometric_mean
from repro.bench.workloads import WorkloadSpec, get_graph


def test_fig08_regression_quality(benchmark, bench_config, report):
    result = fig08_regression_quality.run(bench_config)
    report(result)
    assert geometric_mean(result.column("reg_vs_exhaustive")) > 0.5
    assert geometric_mean(result.column("reg_over_worst")) > 3.0

    predictor = train_default_predictor(bench_config)
    graph = get_graph(WorkloadSpec(bench_config.base_scale, 16, seed=900 + 16))
    benchmark(
        lambda: predictor.predict_mn(graph, CPU_SANDY_BRIDGE, GPU_K20X)
    )
