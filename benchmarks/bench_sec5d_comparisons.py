"""Bench for Section V-D — comparisons against other implementations."""

from repro.bench.experiments import sec5d_comparisons
from repro.bench.metrics import geometric_mean


def test_sec5d_comparisons(benchmark, bench_config, report):
    result = benchmark.pedantic(
        lambda: sec5d_comparisons.run(bench_config), rounds=1, iterations=1
    )
    report(result)
    assert geometric_mean(result.column("ours_cpu_over_graph500")) > 2.0
    assert geometric_mean(result.column("cross_over_graph500")) > 4.0
    assert geometric_mean(result.column("ours_mic_over_gao")) > 2.0
    # Parity with Beamer's oracle-tuned hybrid (paper: 1.12x).
    beamer = geometric_mean(result.column("ours_cpu_vs_beamer"))
    assert 0.5 < beamer < 2.0
