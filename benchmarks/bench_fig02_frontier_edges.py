"""Bench for Fig. 2 — frontier edges per level.

Regenerates the series and times the top-down step (whose work is the
``|E|cq`` this figure plots).
"""

import numpy as np

from repro.bench.experiments import fig02_frontier_edges
from repro.bfs.profiler import pick_sources
from repro.bfs.topdown import top_down_step
from repro.graph.generators import rmat


def test_fig02_frontier_edges(benchmark, bench_config, report):
    result = fig02_frontier_edges.run(bench_config)
    report(result)
    assert all(r["peak_in_middle"] for r in result.rows)

    graph = rmat(bench_config.base_scale - 2, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])

    def run_level():
        parent = np.full(graph.num_vertices, -1, dtype=np.int64)
        level = np.full(graph.num_vertices, -1, dtype=np.int64)
        parent[source] = source
        level[source] = 0
        frontier = np.array([source], dtype=np.int64)
        frontier, _ = top_down_step(graph, frontier, parent, level, 0)
        return top_down_step(graph, frontier, parent, level, 1)

    benchmark(run_level)
