"""Verbatim pre-workspace BFS kernels, kept for before/after benchmarks.

These are the kernels as they stood before the allocation-free datapath
landed: per-call output arrays, sort-based ``np.unique`` claim, a full
``parent < 0`` rescan plus whole-row scan per bottom-up level, and a
dense boolean frontier mask rebuilt with ``fill(False)`` every level.
``bench_kernels.py`` times them against the current engines and records
the ratios in ``BENCH_kernels.json``.

Do not import from application code — this module exists only so the
speedup claims stay measurable after the old code paths are gone.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.result import BFSResult, Direction


def legacy_expand_rows(graph, vertices):
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = graph.offsets[vertices]
    counts = graph.offsets[vertices + 1] - starts
    total = int(counts.sum())
    seg_starts = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_starts[1:])
    if total == 0:
        return (
            np.zeros(0, dtype=np.int32),
            np.zeros(0, dtype=np.int64),
            seg_starts,
        )
    pos = np.arange(total, dtype=np.int64)
    pos -= np.repeat(seg_starts[:-1], counts)
    pos += np.repeat(starts, counts)
    neighbours = graph.targets[pos]
    owners = np.repeat(vertices, counts)
    return neighbours, owners, seg_starts


def legacy_segment_first_true(flags, seg_starts):
    nseg = seg_starts.size - 1
    out = np.full(nseg, -1, dtype=np.int64)
    if flags.size == 0 or nseg == 0:
        return out
    big = np.int64(flags.size)
    pos = np.where(flags, np.arange(flags.size, dtype=np.int64), big)
    nonempty = seg_starts[:-1] < seg_starts[1:]
    if not nonempty.any():
        return out
    red_idx = seg_starts[:-1][nonempty]
    mins = np.minimum.reduceat(pos, red_idx)
    res = np.where(mins < big, mins, -1)
    out[nonempty] = res
    return out


def legacy_top_down_step(graph, frontier, parent, level, depth):
    neighbours, owners, _ = legacy_expand_rows(graph, frontier)
    edges_examined = int(neighbours.size)
    if edges_examined == 0:
        return np.zeros(0, dtype=np.int64), 0
    fresh = parent[neighbours] < 0
    cand = neighbours[fresh].astype(np.int64)
    cand_parent = owners[fresh]
    if cand.size == 0:
        return np.zeros(0, dtype=np.int64), edges_examined
    next_frontier, first_idx = np.unique(cand, return_index=True)
    parent[next_frontier] = cand_parent[first_idx]
    level[next_frontier] = depth + 1
    return next_frontier, edges_examined


def legacy_unique_claim(cand, cand_parent, parent, level, depth):
    """Just the sort-based claim, for the claim-step microbenchmark."""
    cand = cand.astype(np.int64)
    next_frontier, first_idx = np.unique(cand, return_index=True)
    parent[next_frontier] = cand_parent[first_idx]
    level[next_frontier] = depth + 1
    return next_frontier


def _legacy_chunk_bounds(degrees, chunk_entries):
    if degrees.size == 0:
        return []
    cum = np.cumsum(degrees)
    bounds = []
    lo = 0
    base = 0
    while lo < degrees.size:
        hi = int(np.searchsorted(cum, base + chunk_entries, side="right"))
        hi = max(hi, lo + 1)
        hi = min(hi, degrees.size)
        bounds.append((lo, hi))
        base = int(cum[hi - 1])
        lo = hi
    return bounds


def legacy_bottom_up_step(
    graph, in_frontier, parent, level, depth, chunk_entries=1 << 26
):
    unvisited = np.nonzero(parent < 0)[0].astype(np.int64)
    if unvisited.size == 0:
        return np.zeros(0, dtype=np.int64), 0
    claimed_chunks = []
    edges_checked = 0
    degrees = graph.offsets[unvisited + 1] - graph.offsets[unvisited]
    bounds = _legacy_chunk_bounds(degrees, chunk_entries)
    for lo, hi in bounds:
        chunk = unvisited[lo:hi]
        neighbours, _, seg_starts = legacy_expand_rows(graph, chunk)
        if neighbours.size == 0:
            continue
        hits = in_frontier[neighbours]
        first = legacy_segment_first_true(hits, seg_starts)
        found = first >= 0
        seg_lo = seg_starts[:-1]
        seg_len = np.diff(seg_starts)
        inspected = np.where(found, first - seg_lo + 1, seg_len)
        edges_checked += int(inspected.sum())
        if found.any():
            winners = chunk[found]
            parent[winners] = neighbours[first[found]]
            level[winners] = depth + 1
            claimed_chunks.append(winners)
    if claimed_chunks:
        next_frontier = np.concatenate(claimed_chunks)
    else:
        next_frontier = np.zeros(0, dtype=np.int64)
    return next_frontier, edges_checked


def legacy_bfs_hybrid(graph, source, *, m, n):
    nverts = graph.num_vertices
    nedges = max(graph.num_edges, 1)
    degrees = graph.degrees

    parent = np.full(nverts, -1, dtype=np.int64)
    level = np.full(nverts, -1, dtype=np.int64)
    parent[source] = source
    level[source] = 0

    frontier = np.array([source], dtype=np.int64)
    in_frontier = None
    directions = []
    edges_examined = []
    depth = 0
    while frontier.size:
        frontier_edges = int(degrees[frontier].sum())
        td = (
            frontier_edges < nedges / m
            and int(frontier.size) < nverts / n
        )
        if td:
            frontier, examined = legacy_top_down_step(
                graph, frontier, parent, level, depth
            )
            in_frontier = None
            directions.append(Direction.TOP_DOWN)
        else:
            if in_frontier is None:
                in_frontier = np.zeros(nverts, dtype=bool)
            else:
                in_frontier.fill(False)
            in_frontier[frontier] = True
            frontier, examined = legacy_bottom_up_step(
                graph, in_frontier, parent, level, depth
            )
            frontier = np.sort(frontier)
            directions.append(Direction.BOTTOM_UP)
        edges_examined.append(examined)
        depth += 1
    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
