"""The documented public API must exist and be importable as advertised.

Examples and downstream users rely exactly on these names; this test is
the contract.
"""

import importlib

import pytest

import repro

PUBLIC = {
    "repro": ["__version__", "ReproError"],
    "repro.graph": [
        "CSRGraph",
        "Bitmap",
        "Frontier",
        "rmat",
        "rmat_edges",
        "RMATParams",
        "GRAPH500_PARAMS",
        "erdos_renyi",
        "ring",
        "path",
        "star",
        "complete",
        "grid2d",
        "balanced_tree",
        "two_cliques_bridge",
        "save_npz",
        "load_npz",
        "save_edgelist",
        "load_edgelist",
        "compute_stats",
        "graph_features",
        "validate_bfs",
        "check_bfs",
    ],
    "repro.bfs": [
        "bfs_reference",
        "bfs_top_down",
        "bfs_bottom_up",
        "bfs_hybrid",
        "bfs_spmv",
        "MNPolicy",
        "ParallelBFS",
        "msbfs",
        "MultiSourceResult",
        "profile_bfs",
        "pick_sources",
        "BFSResult",
        "Direction",
        "LevelProfile",
        "LevelRecord",
    ],
    "repro.apps": [
        "connected_components",
        "ComponentLabels",
        "st_connectivity",
        "STResult",
        "pseudo_diameter",
        "DiameterEstimate",
    ],
    "repro.graph500": [
        "run_graph500",
        "Graph500Result",
        "Stats",
        "default_engine",
    ],
    "repro.arch": [
        "ArchSpec",
        "CPU_SANDY_BRIDGE",
        "GPU_K20X",
        "MIC_KNC",
        "PRESETS",
        "CostModel",
        "SimulatedMachine",
        "PlanStep",
        "TransferModel",
        "PCIE_GEN2",
        "rcma_spmv",
        "rcmb",
        "analyze",
        "scale_profile",
        "check_calibration",
        "sample_arch",
        "arch_features",
    ],
    "repro.ml": [
        "SVR",
        "KernelRidge",
        "LinearRegression",
        "StandardScaler",
        "rbf_kernel",
        "linear_kernel",
        "grid_search",
        "cross_val_score",
        "TrainingSet",
        "make_sample",
        "FEATURE_NAMES",
        "save_svr",
        "load_svr",
    ],
    "repro.tuning": [
        "candidate_mn_grid",
        "candidate_cross_grid",
        "evaluate_single",
        "evaluate_cross",
        "summarize_search",
        "best_m_scan",
        "SwitchingPointPredictor",
        "build_training_set",
        "profile_graph",
        "AlwaysTopDown",
        "AlwaysBottomUp",
        "HeuristicBeamerPolicy",
    ],
    "repro.hetero": [
        "mn_directions",
        "cross_plan",
        "oracle_plan",
        "run_single_device",
        "run_cross_architecture",
        "CrossArchitectureBFS",
        "execute_plan",
    ],
    "repro.bench": [
        "teps",
        "gteps",
        "BenchConfig",
        "ExperimentResult",
        "WorkloadSpec",
        "get_profile",
        "paper_scale_profile",
    ],
    "repro.obs": [
        "now",
        "ManualClock",
        "Tracer",
        "NullTracer",
        "NULL_TRACER",
        "Span",
        "SpanRecord",
        "EventRecord",
        "get_tracer",
        "set_tracer",
        "use_tracer",
        "MetricsRegistry",
        "Counter",
        "Gauge",
        "Histogram",
        "JSONL_FORMAT",
        "write_jsonl",
        "read_jsonl",
        "chrome_trace",
        "write_chrome_trace",
        "validate_chrome_trace",
        "MistuningReport",
        "CrossMistuningReport",
        "audit_switching_point",
        "audit_cross_architecture",
        "get_logger",
        "basic_config",
        "ROOT_LOGGER_NAME",
        "TraceContext",
        "METRICS_PAYLOAD_SCHEMA",
        "FRAME_SCHEMA",
        "ChannelExporter",
        "CaptureFile",
        "read_capture",
        "spawn_traced",
        "Collector",
        "QuantileSketch",
        "LiveAggregator",
        "SLOPolicy",
        "SLOAlert",
        "BurnRateEvaluator",
        "Dashboard",
    ],
    "repro.obs.live": [
        "FRAME_SCHEMA",
        "encode_frame",
        "decode_frame",
        "CaptureFile",
        "read_capture",
        "ChannelExporter",
        "TracedChild",
        "spawn_traced",
        "Collector",
        "QuantileSketch",
        "Window",
        "WindowRing",
        "LiveAggregator",
        "SLOPolicy",
        "SLOAlert",
        "BurnRateEvaluator",
        "Dashboard",
        "render",
        "sparkline",
        "child_workload",
        "run_traced_pair",
    ],
}


@pytest.mark.parametrize("module", sorted(PUBLIC))
def test_module_exports(module):
    mod = importlib.import_module(module)
    for name in PUBLIC[module]:
        assert hasattr(mod, name), f"{module}.{name} missing"
        assert name in mod.__all__, f"{module}.{name} not in __all__"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_all_errors_derive_from_repro_error():
    import repro.errors as errs

    for name in errs.__all__:
        obj = getattr(errs, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errs.ConvergenceWarning:
                assert issubclass(obj, errs.ReproError) or obj is errs.ReproError


def test_experiment_registry_importable():
    from repro.bench.experiments import REGISTRY

    assert len(REGISTRY) >= 16
