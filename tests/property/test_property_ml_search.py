"""Property-based tests for the SVR solver and the switching search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR
from repro.tuning.search import evaluate_single, summarize_search


@st.composite
def regression_problem(draw):
    n = draw(st.integers(min_value=5, max_value=40))
    d = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, d))
    w = rng.normal(size=d)
    y = X @ w + rng.normal(0, 0.05, n)
    return X, y


@given(regression_problem(), st.floats(min_value=0.5, max_value=50.0))
@settings(max_examples=30, deadline=None)
def test_svr_dual_feasibility(problem, c):
    """|β| ≤ C and Σβ = 0 hold for every solution the solver emits."""
    X, y = problem
    m = SVR(c=c, epsilon=0.05, gamma=1.0, max_iter=20_000).fit(X, y)
    assert np.all(np.abs(m.beta_) <= c * (1 + 1e-8))
    # Σ s α = 0 in the doubled space means Σ β = 0.
    assert abs(m.beta_.sum()) < 1e-6 * max(1.0, c)


@given(regression_problem())
@settings(max_examples=30, deadline=None)
def test_svr_predictions_finite_and_bounded(problem):
    X, y = problem
    m = SVR(c=10, epsilon=0.1, gamma=1.0, max_iter=20_000).fit(X, y)
    pred = m.predict(X)
    assert np.isfinite(pred).all()
    # An RBF expansion with |β| ≤ C over n points is bounded.
    assert np.abs(pred).max() <= 10 * len(y) + abs(m.intercept_) + 1


@given(regression_problem())
@settings(max_examples=30, deadline=None)
def test_scaler_roundtrip_property(problem):
    X, _ = problem
    sc = StandardScaler().fit(X)
    assert np.allclose(sc.inverse_transform(sc.transform(X)), X, atol=1e-9)


@st.composite
def mn_candidates(draw):
    count = draw(st.integers(min_value=2, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=1000))
    rng = np.random.default_rng(seed)
    return np.exp(rng.uniform(0, np.log(1000), size=(count, 2)))


def test_search_summary_invariants(medium_profile):
    model = CostModel(CPU_SANDY_BRIDGE)

    @given(mn_candidates())
    @settings(max_examples=30, deadline=None)
    def check(cands):
        secs = evaluate_single(medium_profile, model, cands)
        assert (secs > 0).all()
        out = summarize_search(cands, secs, seed=0)
        assert out.best_seconds <= out.average_seconds <= out.worst_seconds
        assert out.best_seconds <= out.random_seconds <= out.worst_seconds

    check()
