"""Property-based tests for histogram quantiles and bucket series.

``Histogram.quantile`` is total over every histogram state (nan on
empty, the sample itself on a singleton, otherwise bounded by the
observed min/max and monotone in q), and the cumulative bucket series
backing the OpenMetrics exposition is always monotone and complete.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry

finite = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


def hist(values):
    h = MetricsRegistry().histogram("teps")
    for v in values:
        h.observe(v)
    return h


@given(q=st.floats(min_value=0.0, max_value=1.0))
def test_empty_quantile_is_nan(q):
    assert math.isnan(hist([]).quantile(q))


@given(value=finite, q=st.floats(min_value=0.0, max_value=1.0))
def test_single_sample_quantile_is_that_sample(value, q):
    assert hist([value]).quantile(q) == value


@settings(max_examples=50)
@given(values=st.lists(finite, min_size=1, max_size=40))
def test_quantile_bounded_by_observations(values):
    h = hist(values)
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert min(values) <= h.quantile(q) <= max(values)
    assert h.quantile(0.0) == min(values)
    assert h.quantile(1.0) == max(values)


@settings(max_examples=50)
@given(
    values=st.lists(finite, min_size=2, max_size=40),
    qs=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=6
    ),
)
def test_quantile_monotone_in_q(values, qs):
    h = hist(values)
    out = [h.quantile(q) for q in sorted(qs)]
    assert out == sorted(out)


@settings(max_examples=50)
@given(values=st.lists(finite, min_size=1, max_size=40))
def test_buckets_monotone_and_complete(values):
    h = hist(values)
    buckets = h.buckets()
    bounds = [b for b, _ in buckets]
    counts = [c for _, c in buckets]
    assert bounds == sorted(set(bounds))  # strictly increasing
    assert counts == sorted(counts)  # cumulative
    assert counts[-1] == len(values)  # last finite bound covers the max
