"""Property-based tests for the live-telemetry aggregation tier.

Three guarantees the dashboard and the SLO evaluator lean on:

* :class:`~repro.obs.live.Window` merging is associative and
  commutative — "last 5 windows" vs "last 60 windows" views are
  recombinations of the same ring, so merge order must not matter;
* the :class:`~repro.obs.live.QuantileSketch` self-certifies:
  ``|true_rank(quantile(q)) - q*n| <= error_bound()`` even on
  adversarial (sorted, duplicated, sawtooth) streams and across
  merges;
* :class:`~repro.obs.live.BurnRateEvaluator` is monotone: a
  pointwise-worse stream never clears an alert a better stream raised
  at the same evaluation time.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.live import BurnRateEvaluator, QuantileSketch, SLOPolicy, Window

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

value_lists = st.lists(finite_floats, max_size=80)


def _window(values, k=8):
    w = Window(sketch_k=k)
    for v in values:
        w.observe(v)
    return w


def _assert_windows_agree(x: Window, y: Window):
    assert x.count == y.count
    assert x.sketch.n == y.sketch.n
    assert x.minimum == y.minimum
    assert x.maximum == y.maximum
    # float addition is not associative bit-for-bit; the totals must
    # agree to rounding
    assert math.isclose(x.total, y.total, rel_tol=1e-9, abs_tol=1e-6)


def _assert_rank_bound(sketch: QuantileSketch, data):
    """The certified guarantee, checked against the exact stream."""
    if not data:
        return
    ordered = sorted(data)
    n = len(ordered)
    assert sketch.n == n
    bound = sketch.error_bound()
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        v = sketch.quantile(q)
        # with ties the true rank of v is an interval: anything from
        # "strictly below" to "at or below" is a correct rank for v
        rank_lo = sum(1 for x in ordered if x < v)
        rank_hi = sum(1 for x in ordered if x <= v)
        target = q * n
        distance = max(rank_lo - target, target - rank_hi, 0.0)
        assert distance <= bound, (
            f"q={q}: rank interval [{rank_lo}, {rank_hi}] is {distance} "
            f"from target {target}, certified {bound}"
        )


class TestWindowMergeAlgebra:
    @given(value_lists, value_lists, value_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = _window(a).merge(_window(b)).merge(_window(c))
        right = _window(a).merge(_window(b).merge(_window(c)))
        _assert_windows_agree(left, right)
        # either association keeps the certified sketch bound
        _assert_rank_bound(left.sketch, a + b + c)
        _assert_rank_bound(right.sketch, a + b + c)

    @given(value_lists, value_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, a, b):
        ab = _window(a).merge(_window(b))
        ba = _window(b).merge(_window(a))
        _assert_windows_agree(ab, ba)
        _assert_rank_bound(ab.sketch, a + b)
        _assert_rank_bound(ba.sketch, a + b)

    @given(value_lists)
    @settings(max_examples=60, deadline=None)
    def test_empty_window_is_identity(self, a):
        merged = _window(a).merge(Window(sketch_k=8))
        plain = _window(a)
        _assert_windows_agree(merged, plain)


@st.composite
def adversarial_stream(draw):
    """Streams built to stress the compactor: sorted runs, duplicates,
    sawtooths — the orderings where a biased sketch drifts worst."""
    shape = draw(
        st.sampled_from(
            ("ascending", "descending", "sawtooth", "duplicates", "random")
        )
    )
    n = draw(st.integers(min_value=0, max_value=600))
    if shape == "ascending":
        return [float(i) for i in range(n)]
    if shape == "descending":
        return [float(n - i) for i in range(n)]
    if shape == "sawtooth":
        period = draw(st.integers(min_value=1, max_value=9))
        return [float(i % period) for i in range(n)]
    if shape == "duplicates":
        v = draw(finite_floats)
        return [v] * n
    return draw(
        st.lists(finite_floats, min_size=n, max_size=n)
    )


class TestQuantileSketchBound:
    @given(adversarial_stream(), st.sampled_from((2, 4, 8, 16)))
    @settings(max_examples=80, deadline=None)
    def test_certified_rank_error_bound(self, data, k):
        sketch = QuantileSketch(k)
        sketch.extend(data)
        _assert_rank_bound(sketch, data)

    @given(adversarial_stream(), adversarial_stream())
    @settings(max_examples=40, deadline=None)
    def test_bound_survives_merge(self, a, b):
        sa, sb = QuantileSketch(4), QuantileSketch(4)
        sa.extend(a)
        sb.extend(b)
        sa.merge(sb)
        _assert_rank_bound(sa, a + b)

    @given(st.lists(finite_floats, min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_short_streams_are_exact(self, data):
        # streams shorter than k never compact: error is one item weight
        sketch = QuantileSketch(16)
        sketch.extend(data)
        assert sketch.rank_error == 0
        assert sketch.error_bound() == 1
        assert sketch.quantile(0.5) in data


@st.composite
def paired_streams(draw):
    """One observation stream plus a pointwise-worse twin (op ``<``:
    every value only ever gets larger)."""
    n = draw(st.integers(min_value=1, max_value=60))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=30.0,
                          allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=4.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    bumps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=4.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    worse = [v + d for v, d in zip(values, bumps)]
    return times, values, worse


class TestBurnRateMonotonicity:
    @given(paired_streams())
    @settings(max_examples=80, deadline=None)
    def test_worse_stream_never_clears_an_alert(self, case):
        times, values, worse = case
        policy = SLOPolicy(
            metric="graph500.bfs",
            op="<",
            threshold=1.0,
            objective=0.9,
            window_seconds=1.0,
            fast_windows=3,
            slow_windows=10,
            burn_threshold=2.0,
        )
        better_eval = BurnRateEvaluator(policy)
        worse_eval = BurnRateEvaluator(policy)
        for t, v_good, v_bad in zip(times, values, worse):
            better_eval.record(t, v_good)
            worse_eval.record(t, v_bad)
            better_alert = better_eval.evaluate(t)
            worse_alert = worse_eval.evaluate(t)
            if better_alert is not None:
                assert worse_alert is not None, (
                    f"better stream fired at t={t} but worse did not"
                )
                assert worse_alert.fast_burn >= better_alert.fast_burn
                assert worse_alert.slow_burn >= better_alert.slow_burn

    @given(paired_streams())
    @settings(max_examples=40, deadline=None)
    def test_burn_rates_are_pointwise_monotone(self, case):
        times, values, worse = case
        policy = SLOPolicy.parse(
            "graph500.bfs<1.0@0.9", fast_windows=2, slow_windows=8
        )
        better_eval = BurnRateEvaluator(policy)
        worse_eval = BurnRateEvaluator(policy)
        for t, v_good, v_bad in zip(times, values, worse):
            better_eval.record(t, v_good)
            worse_eval.record(t, v_bad)
            fast_b, slow_b = better_eval.burn_rates(t)
            fast_w, slow_w = worse_eval.burn_rates(t)
            assert fast_w >= fast_b
            assert slow_w >= slow_b
