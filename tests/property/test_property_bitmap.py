"""Property-based tests for the bitmap (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bitmap import Bitmap

sizes = st.integers(min_value=0, max_value=500)


@st.composite
def bitmap_and_indices(draw):
    size = draw(st.integers(min_value=1, max_value=400))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1), max_size=100
        )
    )
    return size, np.array(indices, dtype=np.int64)


@given(bitmap_and_indices())
@settings(max_examples=60, deadline=None)
def test_set_many_equals_python_set(case):
    size, indices = case
    bm = Bitmap.from_indices(size, indices)
    want = sorted(set(indices.tolist()))
    assert bm.nonzero().tolist() == want
    assert bm.count() == len(want)


@given(bitmap_and_indices())
@settings(max_examples=60, deadline=None)
def test_roundtrip_bool(case):
    size, indices = case
    bm = Bitmap.from_indices(size, indices)
    assert Bitmap.from_bool(bm.to_bool()) == bm


@given(bitmap_and_indices(), bitmap_and_indices())
@settings(max_examples=60, deadline=None)
def test_union_intersection_laws(a, b):
    size = max(a[0], b[0])
    x = Bitmap.from_indices(size, a[1] % size if size else a[1])
    y = Bitmap.from_indices(size, b[1] % size if size else b[1])
    sx, sy = set(x.nonzero().tolist()), set(y.nonzero().tolist())
    assert set((x | y).nonzero().tolist()) == sx | sy
    assert set((x & y).nonzero().tolist()) == sx & sy
    # De Morgan within the finite domain.
    lhs = x.copy().invert().iand(y.copy().invert())
    rhs = (x | y).invert()
    assert lhs == rhs


@given(bitmap_and_indices())
@settings(max_examples=60, deadline=None)
def test_invert_involution(case):
    size, indices = case
    bm = Bitmap.from_indices(size, indices)
    original = bm.copy()
    bm.invert()
    assert bm.count() == size - original.count()
    bm.invert()
    assert bm == original


@given(bitmap_and_indices())
@settings(max_examples=60, deadline=None)
def test_clear_many_inverse_of_set_many(case):
    size, indices = case
    bm = Bitmap(size)
    bm.set_many(indices)
    bm.clear_many(indices)
    assert bm.count() == 0


@given(bitmap_and_indices())
@settings(max_examples=60, deadline=None)
def test_test_many_matches_membership(case):
    size, indices = case
    bm = Bitmap.from_indices(size, indices)
    probe = np.arange(size, dtype=np.int64)
    got = bm.test_many(probe)
    members = set(indices.tolist())
    assert got.tolist() == [i in members for i in range(size)]
