"""Property-based tests for the cost model and plan pricing.

Invariants the simulator must never violate, whatever the counters:
positivity, overhead floors, monotonicity in the work terms, and
consistency between plan pricing and per-level sums.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.calibration import scale_profile
from repro.arch.costmodel import CostModel
from repro.arch.machine import PlanStep, SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC, sample_arch
from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile, LevelRecord

ARCHS = (CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC)


@st.composite
def level_record(draw, level=0):
    fv = draw(st.integers(min_value=1, max_value=10**7))
    fe = draw(st.integers(min_value=0, max_value=10**9))
    uv = draw(st.integers(min_value=0, max_value=10**7))
    ue = draw(st.integers(min_value=0, max_value=10**9))
    chk = draw(st.integers(min_value=0, max_value=ue))
    fail = draw(st.integers(min_value=0, max_value=chk))
    claimed = draw(st.integers(min_value=0, max_value=uv))
    return LevelRecord(
        level=level,
        frontier_vertices=fv,
        frontier_edges=fe,
        unvisited_vertices=uv,
        unvisited_edges=ue,
        bu_edges_checked=chk,
        claimed=claimed,
        bu_edges_failed=fail,
    )


@st.composite
def profile(draw):
    depth = draw(st.integers(min_value=1, max_value=8))
    records = tuple(draw(level_record(level=i)) for i in range(depth))
    nv = draw(st.integers(min_value=1, max_value=10**8))
    ne = draw(st.integers(min_value=1, max_value=10**9))
    return LevelProfile(
        source=0, num_vertices=nv, num_edges=ne, records=records
    )


@given(level_record(), st.sampled_from(ARCHS), st.integers(1, 10**8))
@settings(max_examples=80, deadline=None)
def test_costs_positive_and_floored(rec, arch, n):
    model = CostModel(arch)
    td = model.top_down_seconds(rec, n)
    bu = model.bottom_up_seconds(rec, n)
    assert td.seconds >= arch.td_overhead_s
    assert bu.seconds >= arch.bu_overhead_s
    assert np.isfinite(td.seconds) and np.isfinite(bu.seconds)
    assert 0 < td.efficiency <= 1


@given(level_record(), st.sampled_from(ARCHS))
@settings(max_examples=50, deadline=None)
def test_topdown_monotone_in_edges(rec, arch):
    import dataclasses

    model = CostModel(arch)
    n = 1 << 22
    bigger = dataclasses.replace(
        rec, frontier_edges=rec.frontier_edges * 2 + 1
    )
    # On the occupancy ramp, work and efficiency both scale with |E|cq,
    # so the cost is *constant* there — monotonicity is weak, and float
    # rounding can undershoot by an ulp; allow that.
    assert model.top_down_seconds(bigger, n).seconds >= (
        model.top_down_seconds(rec, n).seconds * (1 - 1e-9)
    )


@given(level_record(), st.sampled_from(ARCHS))
@settings(max_examples=50, deadline=None)
def test_bottomup_monotone_in_checked(rec, arch):
    import dataclasses

    model = CostModel(arch)
    n = 1 << 22
    bigger = dataclasses.replace(
        rec,
        bu_edges_checked=rec.bu_edges_checked * 2 + 2,
        unvisited_edges=max(rec.unvisited_edges, rec.bu_edges_checked * 2 + 2),
        bu_edges_failed=rec.bu_edges_failed,
    )
    assert (
        model.bottom_up_seconds(bigger, n).seconds
        >= model.bottom_up_seconds(rec, n).seconds
    )


@given(profile())
@settings(max_examples=50, deadline=None)
def test_plan_pricing_equals_levels_plus_transfers(p):
    machine = SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})
    plan = [
        PlanStep(
            "cpu" if i % 2 else "gpu",
            Direction.TOP_DOWN if i % 3 else Direction.BOTTOM_UP,
        )
        for i in range(len(p))
    ]
    rep = machine.run(p, plan)
    assert rep.total_seconds == float(
        rep.level_seconds.sum() + rep.transfer_seconds.sum()
    )
    assert (rep.level_seconds > 0).all()


@given(profile(), st.floats(min_value=1.001, max_value=1000.0))
@settings(max_examples=50, deadline=None)
def test_scale_profile_unvisited_monotone(p, factor):
    big = scale_profile(p, factor)
    assert big.num_vertices >= p.num_vertices
    assert len(big) == len(p)
    for a, b in zip(p, big):
        assert b.unvisited_edges >= a.unvisited_edges
        assert b.bu_edges_checked >= a.bu_edges_checked
        assert b.bu_edges_failed <= b.bu_edges_checked
        assert b.frontier_edges >= a.frontier_edges or (
            b.frontier_edges == a.frontier_edges
        )


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_sampled_archs_price_sanely(seed):
    rng = np.random.default_rng(seed)
    arch = sample_arch(rng)
    model = CostModel(arch)
    rec = LevelRecord(
        level=0,
        frontier_vertices=1000,
        frontier_edges=100_000,
        unvisited_vertices=10**6,
        unvisited_edges=10**7,
        bu_edges_checked=10**6,
        claimed=500,
        bu_edges_failed=10**5,
    )
    td = model.top_down_seconds(rec, 1 << 22).seconds
    bu = model.bottom_up_seconds(rec, 1 << 22).seconds
    assert 0 < td < 60.0
    assert 0 < bu < 60.0
