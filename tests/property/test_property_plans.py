"""Property-based tests for plan builders and the Graph 500 stats."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile, LevelRecord
from repro.graph500 import Stats
from repro.hetero.planner import cross_plan, mn_directions


@st.composite
def profile(draw):
    depth = draw(st.integers(min_value=1, max_value=10))
    records = []
    for i in range(depth):
        fe = draw(st.integers(min_value=0, max_value=10**8))
        fv = draw(st.integers(min_value=1, max_value=10**6))
        records.append(
            LevelRecord(
                level=i,
                frontier_vertices=fv,
                frontier_edges=fe,
                unvisited_vertices=10**6,
                unvisited_edges=10**8,
                bu_edges_checked=10**6,
                claimed=0,
                bu_edges_failed=10**5,
            )
        )
    return LevelProfile(
        source=0,
        num_vertices=draw(st.integers(min_value=1, max_value=10**7)),
        num_edges=draw(st.integers(min_value=1, max_value=10**8)),
        records=tuple(records),
    )


thresholds = st.floats(min_value=1e-6, max_value=1e6)


@given(profile(), thresholds, thresholds)
@settings(max_examples=60, deadline=None)
def test_mn_directions_match_rule_pointwise(p, m, n):
    dirs = mn_directions(p, m, n)
    assert len(dirs) == len(p)
    for rec, d in zip(p, dirs):
        td = (
            rec.frontier_edges < p.num_edges / m
            and rec.frontier_vertices < p.num_vertices / n
        )
        assert d == (Direction.TOP_DOWN if td else Direction.BOTTOM_UP)


@given(profile(), thresholds, thresholds, thresholds, thresholds)
@settings(max_examples=60, deadline=None)
def test_cross_plan_structure_invariants(p, m1, n1, m2, n2):
    plan = cross_plan(p, m1, n1, m2, n2)
    assert len(plan) == len(p)
    devices = [s.device for s in plan]
    # Monotone: once on the GPU, never back.
    if "gpu" in devices:
        first = devices.index("gpu")
        assert all(d == "gpu" for d in devices[first:])
    # The CPU phase is top-down only.
    for s in plan:
        assert s.device in ("cpu", "gpu")
        if s.device == "cpu":
            assert s.direction == Direction.TOP_DOWN
    # Phase-2 directions obey the (M2, N2) rule pointwise.
    for rec, s in zip(p, plan):
        if s.device == "gpu":
            td = (
                rec.frontier_edges < p.num_edges / m2
                and rec.frontier_vertices < p.num_vertices / n2
            )
            assert s.direction == (
                Direction.TOP_DOWN if td else Direction.BOTTOM_UP
            )


@given(
    st.lists(
        st.floats(min_value=1e-9, max_value=1e9),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_graph500_stats_invariants(values):
    arr = np.array(values)
    s = Stats.of(arr)
    assert s.minimum <= s.firstquartile <= s.median
    assert s.median <= s.thirdquartile <= s.maximum
    # Float round-trips (1/(1/x)) can undershoot by an ulp.
    assert s.minimum * (1 - 1e-12) <= s.harmonic_mean
    assert s.harmonic_mean <= s.maximum * (1 + 1e-12)
    assert s.harmonic_mean <= s.mean * (1 + 1e-9)  # HM <= AM
    assert s.stddev >= 0
