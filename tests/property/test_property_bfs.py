"""Property-based tests for BFS on random graphs (hypothesis).

The invariants: every engine matches the reference level map, passes
Graph 500 validation, and matches networkx's shortest-path lengths.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs.bottomup import bfs_bottom_up
from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.reference import bfs_reference
from repro.bfs.spmv import bfs_spmv
from repro.bfs.topdown import bfs_top_down
from repro.graph.csr import CSRGraph


@st.composite
def random_graph_and_source(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    m = draw(st.integers(min_value=0, max_value=150))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m,
            max_size=m,
        )
    )
    dst = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m,
            max_size=m,
        )
    )
    source = draw(st.integers(min_value=0, max_value=n - 1))
    graph = CSRGraph.from_edges(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        n,
    )
    return graph, source


@st.composite
def random_mn(draw):
    m = draw(st.floats(min_value=0.5, max_value=2000.0))
    n = draw(st.floats(min_value=0.5, max_value=2000.0))
    return m, n


@given(random_graph_and_source())
@settings(max_examples=60, deadline=None)
def test_all_engines_agree(case):
    graph, source = case
    ref = bfs_reference(graph, source)
    for fn in (bfs_top_down, bfs_bottom_up, bfs_spmv):
        res = fn(graph, source)
        assert np.array_equal(res.level, ref.level)
        res.validate(graph)


@given(random_graph_and_source(), random_mn())
@settings(max_examples=60, deadline=None)
def test_hybrid_correct_for_any_switching_point(case, mn):
    graph, source = case
    m, n = mn
    ref = bfs_reference(graph, source)
    res = bfs_hybrid(graph, source, m=m, n=n)
    assert np.array_equal(res.level, ref.level)
    res.validate(graph)


@given(random_graph_and_source())
@settings(max_examples=40, deadline=None)
def test_levels_match_networkx(case):
    graph, source = case
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.edge_list()
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    want = nx.single_source_shortest_path_length(g, source)
    res = bfs_reference(graph, source)
    for v in range(graph.num_vertices):
        if v in want:
            assert res.level[v] == want[v]
        else:
            assert res.level[v] == -1


@given(random_graph_and_source())
@settings(max_examples=40, deadline=None)
def test_profile_conservation_laws(case):
    from repro.bfs.profiler import profile_bfs

    graph, source = case
    profile, result = profile_bfs(graph, source)
    assert profile.total_reached() == result.num_reached
    fv = profile.frontier_vertices()
    claimed = np.array([r.claimed for r in profile])
    if len(profile) > 1:
        assert np.array_equal(fv[1:], claimed[:-1])
    for rec in profile:
        assert rec.bu_edges_checked <= rec.unvisited_edges
        assert rec.bu_edges_failed <= rec.bu_edges_checked
        assert rec.claimed <= rec.unvisited_vertices
