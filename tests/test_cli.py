"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["info"],
            ["run", "fig01"],
            ["all"],
            ["bfs", "--scale", "10"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table4"])
        assert args.scale == 15
        assert args.candidates == 1000
        assert args.save is None


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "table4" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cpu-snb" in out and "RCMB" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc = main(
            ["run", "roofline", "--scale", "10", "--save", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "RCMB" in out
        assert (tmp_path / "roofline_rcmb.json").exists()

    def test_bfs_command(self, capsys):
        rc = main(
            [
                "bfs",
                "--scale",
                "10",
                "--edgefactor",
                "8",
                "--engine",
                "hybrid",
                "--m",
                "20",
                "--n",
                "100",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GTEPS" in out and "validated" in out

    def test_bfs_topdown(self, capsys):
        assert main(["bfs", "--scale", "9", "--engine", "td"]) == 0
        assert "GTEPS" in capsys.readouterr().out

    def test_bfs_bottomup(self, capsys):
        assert main(["bfs", "--scale", "9", "--engine", "bu"]) == 0
        assert "GTEPS" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_graph500_command(self, capsys):
        rc = main(
            [
                "graph500",
                "--scale",
                "9",
                "--edgefactor",
                "8",
                "--roots",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "TEPS_harmonic_mean" in out
        assert "validated: True" in out

    def test_graph500_engine_choice(self, capsys):
        assert (
            main(
                [
                    "graph500",
                    "--scale",
                    "8",
                    "--roots",
                    "2",
                    "--engine",
                    "td",
                ]
            )
            == 0
        )
        assert "headline" in capsys.readouterr().out
