"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["info"],
            ["run", "fig01"],
            ["all"],
            ["bfs", "--scale", "10"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table4"])
        assert args.scale == 15
        assert args.candidates == 1000
        assert args.save is None


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "table4" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cpu-snb" in out and "RCMB" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc = main(
            ["run", "roofline", "--scale", "10", "--save", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "RCMB" in out
        assert (tmp_path / "roofline_rcmb.json").exists()

    def test_bfs_command(self, capsys):
        rc = main(
            [
                "bfs",
                "--scale",
                "10",
                "--edgefactor",
                "8",
                "--engine",
                "hybrid",
                "--m",
                "20",
                "--n",
                "100",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GTEPS" in out and "validated" in out

    def test_bfs_topdown(self, capsys):
        assert main(["bfs", "--scale", "9", "--engine", "td"]) == 0
        assert "GTEPS" in capsys.readouterr().out

    def test_bfs_bottomup(self, capsys):
        assert main(["bfs", "--scale", "9", "--engine", "bu"]) == 0
        assert "GTEPS" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_graph500_command(self, capsys):
        rc = main(
            [
                "graph500",
                "--scale",
                "9",
                "--edgefactor",
                "8",
                "--roots",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "TEPS_harmonic_mean" in out
        assert "validated: True" in out

    def test_graph500_engine_choice(self, capsys):
        assert (
            main(
                [
                    "graph500",
                    "--scale",
                    "8",
                    "--roots",
                    "2",
                    "--engine",
                    "td",
                ]
            )
            == 0
        )
        assert "headline" in capsys.readouterr().out


class TestLintCommand:
    def test_parser_accepts_lint(self):
        args = build_parser().parse_args(["lint", "src", "--format", "json"])
        assert args.command == "lint"
        assert args.paths == ["src"]
        assert args.fmt == "json"

    def test_lint_package_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "no issues" in capsys.readouterr().out

    def test_lint_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR006" in out

    def test_lint_flags_bad_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("__all__ = []\nimport time\nt0 = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "RPR003" in captured.out
        assert "1 violation" in captured.err

    def test_lint_json_output(self, capsys, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("__all__ = []\nassert 1\n")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data[0]["rule"] == "RPR004"

    def test_lint_select_restricts_rules(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("assert 1\n")  # RPR004 + RPR006
        assert main(["lint", str(bad), "--select", "RPR006"]) == 1
        out = capsys.readouterr().out
        assert "RPR006" in out and "RPR004" not in out

    def test_lint_unknown_rule_is_usage_error(self, capsys, tmp_path):
        good = tmp_path / "ok.py"
        good.write_text("__all__ = []\n")
        assert main(["lint", str(good), "--select", "RPR999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestDeepLintAndDataflow:
    DEAD_STORE = (
        "import numpy as np\n"
        "__all__ = ['gather_step']\n"
        "def gather_step(workspace, frontier):\n"
        "    out = workspace.buffer('gathered', frontier.size, np.int64)\n"
        "    out[: frontier.size] = frontier\n"
        "    return int(frontier.size)\n"
    )

    def test_parser_accepts_deep_flag(self):
        args = build_parser().parse_args(["lint", "src", "--deep"])
        assert args.deep is True

    def test_parser_accepts_dataflow(self):
        args = build_parser().parse_args(
            ["dataflow", "src", "--format", "json", "--effects"]
        )
        assert args.command == "dataflow"
        assert args.fmt == "json"
        assert args.effects is True

    def test_lint_deep_package_clean(self, capsys):
        assert main(["lint", "--deep"]) == 0
        assert "no issues" in capsys.readouterr().out

    def test_lint_rules_lists_deep_tag(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR010" in out and "[deep]" in out

    def test_dataflow_package_clean(self, capsys):
        assert main(["dataflow"]) == 0
        assert "no issues" in capsys.readouterr().out

    def test_dataflow_flags_dead_store(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.DEAD_STORE)
        assert main(["dataflow", str(bad)]) == 1
        assert "RPR012" in capsys.readouterr().out

    def test_lint_without_deep_skips_deep_rules(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.DEAD_STORE)
        assert main(["lint", str(bad)]) == 0
        assert main(["lint", str(bad), "--deep"]) == 1

    def test_dataflow_json_output(self, capsys, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(self.DEAD_STORE)
        assert main(["dataflow", str(bad), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data[0]["rule"] == "RPR012"

    def test_dataflow_effects_dump(self, capsys, tmp_path):
        good = tmp_path / "mod.py"
        good.write_text(
            "__all__ = ['claim']\n"
            "def claim(rows, parent, depth):\n"
            "    parent[rows] = depth\n"
        )
        assert main(["dataflow", str(good), "--effects"]) == 0
        out = capsys.readouterr().out
        assert "claim(rows, parent, depth)" in out
        assert "writes={parent}" in out


class TestSanitizeCommand:
    def test_sanitize_clean_run(self, capsys):
        rc = main(
            ["sanitize", "--scale", "10", "--edgefactor", "8", "--m", "20",
             "--n", "100"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 invariant violations" in out
        assert "dimensionally consistent" in out

    def test_sanitize_engine_choices(self, capsys):
        for engine in ("td", "bu"):
            assert (
                main(
                    ["sanitize", "--scale", "9", "--edgefactor", "8",
                     "--engine", engine]
                )
                == 0
            )

    def test_sanitize_skip_units(self, capsys):
        rc = main(
            ["sanitize", "--scale", "9", "--edgefactor", "8", "--skip-units"]
        )
        assert rc == 0
        assert "dimensionally" not in capsys.readouterr().out


CHAIN = (
    "def _claim(rows, parent, depth):\n"
    "    parent[rows] = depth\n"
    "\n"
    "def level(frontier, parent, depth):\n"
    "    _claim(frontier, parent, depth)\n"
    "\n"
    "def outer(frontier, parent, depth):\n"
    "    level(frontier, parent, depth)\n"
)


class TestCallgraphCommand:
    def test_parser_accepts_callgraph(self):
        args = build_parser().parse_args(
            ["callgraph", "src", "--format", "dot", "--out", "cg.dot"]
        )
        assert args.command == "callgraph"
        assert args.fmt == "dot"
        assert args.out == "cg.dot"

    def test_stats_output(self, capsys, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(CHAIN, encoding="utf-8")
        assert main(["callgraph", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "whole-program call graph" in out
        assert "functions: 3" in out

    def test_dot_export_to_file(self, capsys, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(CHAIN, encoding="utf-8")
        out_file = tmp_path / "cg.dot"
        assert main(
            ["callgraph", str(tmp_path), "--format", "dot",
             "--out", str(out_file)]
        ) == 0
        dot = out_file.read_text(encoding="utf-8")
        assert dot.startswith("digraph callgraph {")
        assert '"m.outer" -> "m.level"' in dot

    def test_json_with_summaries(self, capsys, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(CHAIN, encoding="utf-8")
        assert main(
            ["callgraph", str(mod), "--format", "json", "--summaries"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.analysis.callgraph/1"
        assert "parent" in payload["summaries"]["m.outer"]["writes"]

    def test_who_writes(self, capsys, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(CHAIN, encoding="utf-8")
        assert main(["callgraph", str(mod), "--who-writes", "parent"]) == 0
        out = capsys.readouterr().out
        assert "m.outer" in out and "m._claim" in out

    def test_who_calls_unknown_function_is_an_error(self, capsys, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(CHAIN, encoding="utf-8")
        assert main(["callgraph", str(mod), "--who-calls", "m.nope"]) == 2

    def test_write_baseline(self, capsys, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(CHAIN, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(
            ["callgraph", str(mod), "--write-baseline", str(baseline)]
        ) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["schema"] == (
            "repro.analysis.wholeprogram_baseline/1"
        )
        assert payload["program_rules"] == [
            "RPR015", "RPR016", "RPR017", "RPR018", "RPR019"
        ]

    def test_no_inputs_is_an_error(self, capsys, tmp_path):
        assert main(["callgraph", str(tmp_path)]) == 2
        assert "callgraph error" in capsys.readouterr().err

    def test_parser_accepts_lint_changed(self):
        args = build_parser().parse_args(["lint", "--changed", "src"])
        assert args.changed is True
