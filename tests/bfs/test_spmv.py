"""Unit tests for the SpMV formulation of BFS."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bfs.spmv import adjacency_matrix, bfs_spmv, spmv_bytes, spmv_flops
from repro.errors import BFSError
from repro.graph.generators import ring, star


class TestAdjacencyMatrix:
    def test_structure(self, rmat_small):
        A = adjacency_matrix(rmat_small)
        assert isinstance(A, sp.csr_matrix)
        assert A.shape == (1024, 1024)
        assert A.nnz == rmat_small.num_directed_edges

    def test_symmetric_graph_symmetric_matrix(self, rmat_small):
        A = adjacency_matrix(rmat_small)
        assert (A != A.T).nnz == 0

    def test_spmv_frontier_semantics(self):
        """y = A x marks exactly the neighbours of the frontier."""
        g = star(5)
        A = adjacency_matrix(g).T
        x = np.zeros(5, dtype=np.int8)
        x[0] = 1  # hub
        y = A @ x
        assert (y[1:] > 0).all()


class TestFlopsBytes:
    def test_paper_rcma_value(self):
        """RCMA -> 0.5 for 4-byte elements (Section III-B)."""
        n = 1 << 20
        assert spmv_flops(n) / spmv_bytes(n) == pytest.approx(0.5, abs=1e-4)

    def test_flops_formula(self):
        assert spmv_flops(3) == 3 * 5

    def test_bytes_formula(self):
        assert spmv_bytes(3, 4) == 4 * 12

    def test_validation(self):
        with pytest.raises(BFSError):
            spmv_flops(0)
        with pytest.raises(BFSError):
            spmv_bytes(-1)


class TestBfsSpmv:
    def test_parent_is_min_id_neighbour(self):
        g = ring(6)
        res = bfs_spmv(g, 0)
        # Vertex 1's only previous-level neighbour is 0.
        assert res.parent[1] == 0
        res.validate(g)
