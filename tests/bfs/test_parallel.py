"""Unit tests for the thread-parallel BFS engine."""

import numpy as np
import pytest

from repro.bfs.parallel import ParallelBFS
from repro.bfs.reference import bfs_reference
from repro.bfs.result import Direction
from repro.errors import BFSError
from repro.graph.generators import grid2d, rmat, star


@pytest.fixture(scope="module")
def engine():
    with ParallelBFS(num_threads=4) as eng:
        yield eng


class TestCorrectness:
    @pytest.mark.parametrize("threads", [1, 2, 4, 7])
    def test_matches_reference_all_thread_counts(
        self, threads, rmat_small, rmat_source
    ):
        ref = bfs_reference(rmat_small, rmat_source)
        with ParallelBFS(num_threads=threads) as eng:
            res = eng.run(rmat_small, rmat_source)
        assert np.array_equal(res.level, ref.level)
        res.validate(rmat_small)

    def test_forced_bottom_up(self, engine, rmat_small, rmat_source):
        ref = bfs_reference(rmat_small, rmat_source)
        res = engine.run(rmat_small, rmat_source, direction="bu")
        assert np.array_equal(res.level, ref.level)
        assert set(res.directions) == {Direction.BOTTOM_UP}

    def test_forced_top_down(self, engine, rmat_small, rmat_source):
        res = engine.run(rmat_small, rmat_source, direction="td")
        assert set(res.directions) == {Direction.TOP_DOWN}

    def test_hybrid_factory(self, rmat_medium):
        from repro.bfs.profiler import pick_sources

        source = int(pick_sources(rmat_medium, 1, seed=2)[0])
        ref = bfs_reference(rmat_medium, source)
        with ParallelBFS.hybrid(4, 20, 100) as eng:
            res = eng.run(rmat_medium, source)
        assert np.array_equal(res.level, ref.level)
        assert Direction.BOTTOM_UP in res.directions

    def test_grid(self, engine):
        g = grid2d(20, 20)
        ref = bfs_reference(g, 0)
        res = engine.run(g, 0)
        assert np.array_equal(res.level, ref.level)

    def test_star(self, engine):
        g = star(100)
        res = engine.run(g, 50)
        assert res.num_levels == 3  # leaf -> hub -> other leaves


class TestValidation:
    def test_bad_threads(self):
        with pytest.raises(BFSError):
            ParallelBFS(num_threads=0)

    def test_bad_source(self, engine, rmat_small):
        with pytest.raises(BFSError):
            engine.run(rmat_small, -1)

    def test_bad_direction(self, engine, rmat_small, rmat_source):
        with pytest.raises(BFSError):
            engine.run(rmat_small, rmat_source, direction="up")

    def test_work_counters_match_sequential(
        self, engine, rmat_small, rmat_source
    ):
        from repro.bfs.topdown import bfs_top_down

        seq = bfs_top_down(rmat_small, rmat_source)
        par = engine.run(rmat_small, rmat_source, direction="td")
        assert seq.edges_examined == par.edges_examined


class TestLifecycle:
    """close() is idempotent and safe even when a traversal aborts."""

    def test_double_close_is_idempotent(self):
        eng = ParallelBFS(num_threads=2)
        eng.close()
        eng.close()  # second close must be a no-op, not an error
        assert eng.closed

    def test_run_after_close_raises_structured_error(self, rmat_small):
        eng = ParallelBFS(num_threads=2)
        eng.close()
        with pytest.raises(BFSError, match="closed"):
            eng.run(rmat_small, 0)

    def test_exit_after_mid_traversal_raise_closes_cleanly(self, rmat_small):
        """A raise inside the with-body (as from a failing run) must not
        hang the pool shutdown or leave the engine reusable."""
        with pytest.raises(BFSError):
            with ParallelBFS(num_threads=2) as eng:
                eng.run(rmat_small, -1)  # raises mid-block
        assert eng.closed
        with pytest.raises(BFSError, match="closed"):
            eng.run(rmat_small, 0)

    def test_close_then_exit_via_context_manager(self, rmat_small):
        with ParallelBFS(num_threads=2) as eng:
            res = eng.run(rmat_small, 0)
            eng.close()  # explicit close inside the block
        assert eng.closed  # __exit__'s close was the harmless second one
        assert res.num_levels >= 1
