"""BFSWorkspace: reuse correctness, adversarial topologies, claim step,
bitmap fast paths, and the parallel engine's pool lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs import (
    BFSWorkspace,
    ParallelBFS,
    bfs_bottom_up,
    bfs_hybrid,
    bfs_reference,
    bfs_top_down,
    msbfs,
)
from repro.bfs.topdown import claim_first_writer
from repro.errors import BFSError
from repro.graph.bitmap import Bitmap
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat


def _engines(ws=None):
    return {
        "td": lambda g, s: bfs_top_down(g, s, workspace=ws),
        "bu": lambda g, s: bfs_bottom_up(g, s, workspace=ws),
        "hybrid": lambda g, s: bfs_hybrid(g, s, m=20, n=100, workspace=ws),
    }


def _check_against_reference(graph, source, result):
    """Levels must equal the reference; parents must form a valid tree."""
    ref = bfs_reference(graph, source)
    np.testing.assert_array_equal(result.level, ref.level)
    result.validate(graph)


# -- adversarial topologies -------------------------------------------------


def star_graph(n=64):
    """Hub 0 connected to every other vertex."""
    hub = np.zeros(n - 1, dtype=np.int64)
    spokes = np.arange(1, n, dtype=np.int64)
    return CSRGraph.from_edges(hub, spokes, n)


def long_chain(n=200):
    """A single path 0-1-2-…-(n-1): maximal depth, frontier size 1."""
    src = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(src, src + 1, n)


def with_isolated(n=50):
    """A small clique plus a block of degree-0 vertices."""
    k = 6
    src, dst = np.meshgrid(np.arange(k), np.arange(k))
    sel = src != dst
    return CSRGraph.from_edges(src[sel], dst[sel], n)


def duplicate_edges(n=30):
    """Every edge stored several times (dedup disabled)."""
    rng = np.random.default_rng(0)
    src = rng.integers(0, n, 150)
    dst = rng.integers(0, n, 150)
    src = np.concatenate([src, src, src])
    dst = np.concatenate([dst, dst, dst])
    return CSRGraph.from_edges(src, dst, n, dedup=False)


ADVERSARIAL = {
    "star": (star_graph(), 0),
    "star-leaf": (star_graph(), 17),
    "chain": (long_chain(), 0),
    "chain-middle": (long_chain(), 99),
    "isolated": (with_isolated(), 2),
    "dup-edges": (duplicate_edges(), 0),
}


class TestAdversarialTopologies:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL))
    @pytest.mark.parametrize("engine", ["td", "bu", "hybrid"])
    def test_matches_reference(self, name, engine):
        graph, source = ADVERSARIAL[name]
        result = _engines()[engine](graph, source)
        _check_against_reference(graph, source, result)

    @pytest.mark.parametrize("engine", ["td", "bu", "hybrid"])
    def test_empty_graph(self, engine):
        graph = CSRGraph.empty(5)
        result = _engines()[engine](graph, 3)
        assert result.num_reached == 1
        assert result.parent[3] == 3
        _check_against_reference(graph, 3, result)

    def test_source_out_of_range(self):
        graph = CSRGraph.empty(5)
        for run in _engines().values():
            with pytest.raises(BFSError):
                run(graph, 5)


# -- workspace reuse --------------------------------------------------------


class TestWorkspaceReuse:
    def test_many_sources_identical_to_fresh(self, rmat_small):
        """One workspace across many roots must reproduce fresh runs
        bit for bit (parents, levels, counters)."""
        ws = BFSWorkspace.for_graph(rmat_small)
        rng = np.random.default_rng(1)
        sources = rng.integers(0, rmat_small.num_vertices, 12)
        for s in sources:
            s = int(s)
            for kind in ("td", "bu", "hybrid"):
                warm = _engines(ws)[kind](rmat_small, s)
                fresh = _engines()[kind](rmat_small, s)
                np.testing.assert_array_equal(warm.parent, fresh.parent)
                np.testing.assert_array_equal(warm.level, fresh.level)
                assert warm.edges_examined == fresh.edges_examined
                assert warm.directions == fresh.directions

    def test_mixed_engines_share_one_workspace(self, rmat_small):
        """Interleaving different engines on one workspace is safe."""
        ws = BFSWorkspace.for_graph(rmat_small)
        s = 5
        for kind in ("hybrid", "bu", "td", "hybrid", "bu"):
            result = _engines(ws)[kind](rmat_small, s)
            _check_against_reference(rmat_small, s, result)

    def test_adversarial_reuse(self):
        """Reuse across topologies that stress the unvisited tracking."""
        graph, _ = ADVERSARIAL["isolated"]
        ws = BFSWorkspace.for_graph(graph)
        for s in (2, 0, 5, 2, 40):
            result = bfs_hybrid(graph, s, m=2, n=2, workspace=ws)
            _check_against_reference(graph, s, result)

    def test_results_alias_workspace(self, rmat_small):
        ws = BFSWorkspace.for_graph(rmat_small)
        first = bfs_hybrid(rmat_small, 1, m=20, n=100, workspace=ws)
        assert first.parent is ws.parent
        kept = bfs_hybrid(
            rmat_small, 2, m=20, n=100, workspace=ws
        ).detach()
        assert kept.parent is not ws.parent
        third = bfs_hybrid(rmat_small, 3, m=20, n=100, workspace=ws)
        _check_against_reference(rmat_small, 2, kept)
        _check_against_reference(rmat_small, 3, third)

    def test_private_workspace_results_independent(self, rmat_small):
        """Without an explicit workspace, results own their arrays."""
        a = bfs_hybrid(rmat_small, 1, m=20, n=100)
        b = bfs_hybrid(rmat_small, 2, m=20, n=100)
        _check_against_reference(rmat_small, 1, a)
        _check_against_reference(rmat_small, 2, b)

    def test_msbfs_workspace_reuse(self, rmat_small):
        ws = BFSWorkspace.for_graph(rmat_small)
        sources = np.array([1, 5, 9], dtype=np.int64)
        warm1 = msbfs(rmat_small, sources, workspace=ws)
        fresh = msbfs(rmat_small, sources)
        np.testing.assert_array_equal(warm1.levels, fresh.levels)
        warm2 = msbfs(rmat_small, sources[::-1].copy(), workspace=ws)
        np.testing.assert_array_equal(
            warm2.levels, fresh.levels[::-1]
        )

    def test_bad_workspace_size_begin(self):
        ws = BFSWorkspace(4)
        with pytest.raises(BFSError):
            ws.begin(4)
        with pytest.raises(BFSError):
            BFSWorkspace(-1)


# -- the O(k) claim step ----------------------------------------------------


class TestClaimFirstWriter:
    def test_matches_unique_claim(self, rng):
        """The reversed-scatter claim must match the historical stable
        np.unique(return_index) claim on random duplicate-heavy input."""
        n = 500
        for trial in range(20):
            k = int(rng.integers(1, 2000))
            cand = rng.integers(0, n, k).astype(np.int32)
            cand_parent = rng.integers(0, n, k)

            parent_a = np.full(n, -1, dtype=np.int64)
            level_a = np.full(n, -1, dtype=np.int64)
            nf_a = claim_first_writer(
                cand, cand_parent, parent_a, level_a, depth=3
            )

            parent_b = np.full(n, -1, dtype=np.int64)
            level_b = np.full(n, -1, dtype=np.int64)
            uniq, first_idx = np.unique(cand, return_index=True)
            uniq = uniq.astype(np.int64)
            parent_b[uniq] = cand_parent[first_idx]
            level_b[uniq] = 4

            np.testing.assert_array_equal(nf_a, uniq)
            np.testing.assert_array_equal(parent_a, parent_b)
            np.testing.assert_array_equal(level_a, level_b)

    def test_workspace_and_cold_paths_agree(self, rng):
        n = 200
        ws = BFSWorkspace(n)
        cand = rng.integers(0, n, 700).astype(np.int32)
        cand_parent = rng.integers(0, n, 700)
        out = []
        for workspace in (None, ws):
            parent = np.full(n, -1, dtype=np.int64)
            level = np.full(n, -1, dtype=np.int64)
            nf = claim_first_writer(
                cand, cand_parent, parent, level, 0, workspace
            )
            out.append((nf, parent, level))
        np.testing.assert_array_equal(out[0][0], out[1][0])
        np.testing.assert_array_equal(out[0][1], out[1][1])
        np.testing.assert_array_equal(out[0][2], out[1][2])


# -- bitmap fast paths ------------------------------------------------------


class TestBitmapFastPaths:
    def test_test_many_unchecked_matches_checked(self, rng):
        bm = Bitmap.from_indices(300, rng.integers(0, 300, 80))
        probe = rng.integers(0, 300, 500)
        np.testing.assert_array_equal(
            bm.test_many(probe), bm.test_many(probe, checked=False)
        )

    def test_zero_words_of_clears_loaded_bits(self):
        bm = Bitmap.from_indices(200, np.array([0, 63, 64, 130, 199]))
        bm.zero_words_of(np.array([0, 63, 64, 130, 199]))
        assert bm.count() == 0

    def test_zero_words_of_is_word_granular(self):
        bm = Bitmap.from_indices(128, np.array([3, 70]))
        bm.zero_words_of(np.array([70]))
        # Bit 3 lives in word 0, untouched; word 1 is cleared whole.
        assert bm.test(3) and not bm.test(70)

    def test_workspace_load_frontier_cycles(self):
        ws = BFSWorkspace(150)
        bits = ws.load_frontier(np.array([1, 64, 149]))
        assert bits.nonzero().tolist() == [1, 64, 149]
        bits = ws.load_frontier(np.array([2]))
        assert bits.nonzero().tolist() == [2]
        bits = ws.load_frontier(np.zeros(0, dtype=np.int64))
        assert bits.count() == 0


# -- parallel engine lifecycle ----------------------------------------------


class TestParallelLifecycle:
    def test_closed_engine_raises(self, rmat_small):
        engine = ParallelBFS(num_threads=2)
        engine.close()
        assert engine.closed
        with pytest.raises(BFSError, match="closed"):
            engine.run(rmat_small, 0)

    def test_context_manager_closes(self, rmat_small):
        with ParallelBFS(num_threads=2) as engine:
            result = engine.run(rmat_small, 0)
            _check_against_reference(rmat_small, 0, result)
        assert engine.closed
        with pytest.raises(BFSError):
            engine.run(rmat_small, 0)

    def test_close_idempotent(self):
        engine = ParallelBFS(num_threads=1)
        engine.close()
        engine.close()

    def test_parallel_workspace_reuse(self, rmat_small):
        ws = BFSWorkspace.for_graph(rmat_small)
        with ParallelBFS.hybrid(num_threads=3, m=20, n=100) as engine:
            for s in (0, 7, 0, 31):
                warm = engine.run(rmat_small, s, workspace=ws)
                fresh = engine.run(rmat_small, s)
                np.testing.assert_array_equal(warm.parent, fresh.parent)
                np.testing.assert_array_equal(warm.level, fresh.level)
                assert warm.edges_examined == fresh.edges_examined


# -- warm-path allocation telemetry ----------------------------------------


class TestAllocationFreedom:
    def test_no_scratch_growth_after_warmup(self):
        """Once every source has been traversed once, repeating them
        must not grow the workspace's scratch pool: all reusable arrays
        are warm and nothing graph- or frontier-sized is reallocated."""
        graph = rmat(11, 8, seed=3)
        ws = BFSWorkspace.for_graph(graph)
        sources = (1, 2, 3, 4, 5, 6)
        for s in sources:
            bfs_hybrid(graph, s, m=20, n=100, workspace=ws)

        def pool_bytes():
            total = sum(b.nbytes for b in ws._buffers.values())
            for arr in (ws._iota, ws._claim_slot, ws._unv_backing,
                        ws._unv_spare):
                if arr is not None:
                    total += arr.nbytes
            return total

        before = pool_bytes()
        for _ in range(3):
            for s in sources:
                bfs_hybrid(graph, s, m=20, n=100, workspace=ws)
        assert pool_bytes() == before
