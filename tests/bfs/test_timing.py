"""Unit tests for wall-clock per-level timing."""

import numpy as np
import pytest

from repro.bfs.reference import bfs_reference
from repro.bfs.result import Direction
from repro.bfs.timing import timed_bfs
from repro.errors import BFSError
from repro.graph.generators import star


class TestTimedBFS:
    def test_result_correct(self, rmat_small, rmat_source):
        ref = bfs_reference(rmat_small, rmat_source)
        run = timed_bfs(rmat_small, rmat_source, m=20, n=100)
        assert np.array_equal(run.result.level, ref.level)
        run.result.validate(rmat_small)

    def test_level_records(self, rmat_small, rmat_source):
        run = timed_bfs(rmat_small, rmat_source, m=20, n=100)
        assert len(run.levels) == run.result.num_levels
        assert all(lv.seconds >= 0 for lv in run.levels)
        assert [lv.direction for lv in run.levels] == run.result.directions
        assert run.total_seconds == pytest.approx(
            sum(lv.seconds for lv in run.levels)
        )

    def test_forced_direction(self, rmat_small, rmat_source):
        run = timed_bfs(rmat_small, rmat_source, direction="bu")
        assert {lv.direction for lv in run.levels} == {Direction.BOTTOM_UP}

    def test_default_top_down(self, rmat_small, rmat_source):
        run = timed_bfs(rmat_small, rmat_source)
        assert {lv.direction for lv in run.levels} == {Direction.TOP_DOWN}

    def test_series_shape(self):
        g = star(10)
        run = timed_bfs(g, 0)
        series = run.series()
        assert series["level"] == [1, 2]
        assert len(series["seconds"]) == 2
        assert series["edges_examined"][0] == 9

    def test_frontier_counts_recorded(self, rmat_small, rmat_source):
        run = timed_bfs(rmat_small, rmat_source, m=20, n=100)
        sizes = run.result.frontier_sizes()
        for lv in run.levels:
            assert lv.frontier_vertices == sizes[lv.level]

    def test_validation(self, rmat_small):
        with pytest.raises(BFSError):
            timed_bfs(rmat_small, -1)
        with pytest.raises(BFSError):
            timed_bfs(rmat_small, 0, direction="sideways")

    def test_policy_argument(self, rmat_small, rmat_source):
        from repro.tuning.policy import AlwaysBottomUp

        run = timed_bfs(rmat_small, rmat_source, policy=AlwaysBottomUp())
        assert {lv.direction for lv in run.levels} == {Direction.BOTTOM_UP}
