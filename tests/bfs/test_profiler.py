"""Unit tests for the instrumented profiler."""

import numpy as np
import pytest

from repro.bfs.bottomup import bfs_bottom_up
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.bfs.reference import bfs_reference
from repro.errors import BFSError
from repro.graph.generators import path, rmat, star


class TestProfileBFS:
    def test_result_matches_reference(self, rmat_small, rmat_source):
        profile, result = profile_bfs(rmat_small, rmat_source)
        ref = bfs_reference(rmat_small, rmat_source)
        assert np.array_equal(result.level, ref.level)
        assert len(profile) == result.num_levels

    def test_counters_match_bottom_up_run(self, rmat_small, rmat_source):
        """The counterfactual bottom-up counters equal what the real
        bottom-up kernel actually inspects, level by level."""
        profile, _ = profile_bfs(rmat_small, rmat_source)
        bu = bfs_bottom_up(rmat_small, rmat_source)
        # Same level sets (validated elsewhere) -> identical checked counts.
        assert bu.edges_examined == profile.bu_edges_checked().tolist()

    def test_frontier_edges_are_degrees(self, rmat_small, rmat_source):
        profile, result = profile_bfs(rmat_small, rmat_source)
        level = result.level
        for rec in profile:
            members = np.nonzero(level == rec.level)[0]
            assert rec.frontier_vertices == members.size
            assert rec.frontier_edges == int(
                rmat_small.degrees[members].sum()
            )

    def test_max_levels_truncates(self):
        g = path(50)
        profile, _ = profile_bfs(g, 0, max_levels=5)
        assert len(profile) == 5

    def test_bad_source(self, rmat_small):
        with pytest.raises(BFSError):
            profile_bfs(rmat_small, -5)

    def test_star_profile_shape(self):
        profile, _ = profile_bfs(star(10), 0)
        assert len(profile) == 2
        assert profile[0].frontier_vertices == 1
        assert profile[0].claimed == 9
        # At level 0 every leaf checks exactly its one edge and wins.
        assert profile[0].bu_edges_checked == 9
        assert profile[0].bu_edges_failed == 0

    def test_level1_bottom_up_is_catastrophic(self, medium_profile):
        """Section IV: at level 1 bottom-up must touch nearly all edges."""
        rec = medium_profile[0]
        assert rec.bu_edges_checked > 0.5 * rec.unvisited_edges


class TestPickSources:
    def test_degree_floor(self, rmat_small):
        src = pick_sources(rmat_small, 20, seed=0)
        assert (rmat_small.degrees[src] >= 1).all()

    def test_deterministic(self, rmat_small):
        a = pick_sources(rmat_small, 5, seed=9)
        b = pick_sources(rmat_small, 5, seed=9)
        assert np.array_equal(a, b)

    def test_negative_count(self, rmat_small):
        with pytest.raises(BFSError):
            pick_sources(rmat_small, -1)

    def test_no_eligible(self):
        from repro.graph.csr import CSRGraph

        with pytest.raises(BFSError):
            pick_sources(CSRGraph.empty(5), 1)

    def test_replacement_when_needed(self):
        g = star(3)
        src = pick_sources(g, 10, seed=0)
        assert src.size == 10
