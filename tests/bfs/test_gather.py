"""Unit tests for the shared CSR gather primitives."""

import numpy as np
import pytest

from repro.bfs._gather import expand_rows, segment_first_true
from repro.graph.csr import CSRGraph


@pytest.fixture()
def small():
    # 0: [1,2]; 1: [0]; 2: [0]; 3: []
    return CSRGraph.from_edges([0, 0], [1, 2], 4)


class TestExpandRows:
    def test_basic(self, small):
        nbrs, owners, seg = expand_rows(small, np.array([0, 3, 1]))
        assert nbrs.tolist() == [1, 2, 0]
        assert owners.tolist() == [0, 0, 1]
        assert seg.tolist() == [0, 2, 2, 3]

    def test_empty_vertex_set(self, small):
        nbrs, owners, seg = expand_rows(small, np.array([], dtype=np.int64))
        assert nbrs.size == 0 and owners.size == 0
        assert seg.tolist() == [0]

    def test_all_empty_rows(self, small):
        nbrs, owners, seg = expand_rows(small, np.array([3, 3]))
        assert nbrs.size == 0
        assert seg.tolist() == [0, 0, 0]

    def test_matches_naive(self, rmat_small, rng):
        verts = rng.choice(rmat_small.num_vertices, 50, replace=False)
        nbrs, owners, seg = expand_rows(rmat_small, verts)
        naive = np.concatenate(
            [rmat_small.neighbors(v) for v in verts]
        ) if len(verts) else np.array([])
        assert np.array_equal(nbrs, naive)
        assert seg[-1] == naive.size


class TestSegmentFirstTrue:
    def test_basic(self):
        flags = np.array([False, True, True, False, False, True])
        seg = np.array([0, 3, 5, 6])
        first = segment_first_true(flags, seg)
        assert first.tolist() == [1, -1, 5]

    def test_empty_segments(self):
        flags = np.array([True])
        seg = np.array([0, 0, 1, 1])
        assert segment_first_true(flags, seg).tolist() == [-1, 0, -1]

    def test_all_false(self):
        flags = np.zeros(5, dtype=bool)
        seg = np.array([0, 2, 5])
        assert segment_first_true(flags, seg).tolist() == [-1, -1]

    def test_no_segments(self):
        assert segment_first_true(np.zeros(0, dtype=bool), np.array([0])).size == 0

    def test_matches_naive(self, rng):
        for _ in range(20):
            n_seg = int(rng.integers(1, 10))
            lens = rng.integers(0, 6, n_seg)
            seg = np.zeros(n_seg + 1, dtype=np.int64)
            np.cumsum(lens, out=seg[1:])
            flags = rng.random(int(seg[-1])) < 0.3
            got = segment_first_true(flags, seg)
            for k in range(n_seg):
                chunk = flags[seg[k] : seg[k + 1]]
                want = int(np.argmax(chunk)) + seg[k] if chunk.any() else -1
                assert got[k] == want
