"""Unit tests for BFSResult and the level-trace containers."""

import numpy as np
import pytest

from repro.bfs.reference import bfs_reference
from repro.bfs.result import BFSResult, Direction
from repro.bfs.trace import LevelProfile, LevelRecord, merge_mean
from repro.errors import BFSError
from repro.graph.generators import star


def make_record(level=0, **over):
    base = dict(
        level=level,
        frontier_vertices=1,
        frontier_edges=2,
        unvisited_vertices=3,
        unvisited_edges=4,
        bu_edges_checked=4,
        claimed=1,
        bu_edges_failed=2,
    )
    base.update(over)
    return LevelRecord(**base)


class TestBFSResult:
    def test_num_levels_and_reached(self):
        g = star(5)
        res = bfs_reference(g, 0)
        assert res.num_levels == 2
        assert res.num_reached == 5

    def test_empty_levels(self):
        res = BFSResult(
            source=0,
            parent=np.array([-1]),
            level=np.array([-1]),
        )
        assert res.num_levels == 0
        assert res.frontier_sizes().size == 0

    def test_shape_mismatch(self):
        with pytest.raises(BFSError):
            BFSResult(source=0, parent=np.zeros(2), level=np.zeros(3))

    def test_traversed_edges_component_only(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges([0, 2], [1, 3], 4)
        res = bfs_reference(g, 0)
        assert res.traversed_edges(g) == 1  # only edge 0-1

    def test_teps(self):
        g = star(5)
        res = bfs_reference(g, 0)
        assert res.teps(g, 2.0) == pytest.approx(res.traversed_edges(g) / 2)
        with pytest.raises(BFSError):
            res.teps(g, 0.0)

    def test_frontier_sizes(self):
        g = star(5)
        res = bfs_reference(g, 0)
        assert res.frontier_sizes().tolist() == [1, 4]

    def test_same_reachability(self):
        g = star(5)
        a = bfs_reference(g, 0)
        b = bfs_reference(g, 0)
        assert a.same_reachability(b)

    def test_direction_constants(self):
        assert set(Direction.ALL) == {"td", "bu"}


class TestLevelRecord:
    def test_negative_rejected(self):
        with pytest.raises(BFSError):
            make_record(frontier_vertices=-1)

    def test_failed_bounded_by_checked(self):
        with pytest.raises(BFSError):
            make_record(bu_edges_checked=3, bu_edges_failed=4)

    def test_bu_edges_won(self):
        rec = make_record(bu_edges_checked=10, bu_edges_failed=3)
        assert rec.bu_edges_won == 7


class TestLevelProfile:
    def make_profile(self, n=3):
        return LevelProfile(
            source=0,
            num_vertices=100,
            num_edges=400,
            records=tuple(make_record(level=i) for i in range(n)),
        )

    def test_contiguity_enforced(self):
        with pytest.raises(BFSError):
            LevelProfile(
                source=0,
                num_vertices=10,
                num_edges=10,
                records=(make_record(level=1),),
            )

    def test_views(self):
        p = self.make_profile()
        assert len(p) == 3
        assert p[1].level == 1
        assert [r.level for r in p] == [0, 1, 2]
        assert p.frontier_vertices().shape == (3,)
        assert p.frontier_edges().shape == (3,)
        assert p.bu_edges_checked().shape == (3,)
        assert p.unvisited_vertices().shape == (3,)

    def test_total_reached(self):
        p = self.make_profile()
        assert p.total_reached() == 4  # 3 claims + source

    def test_peak_level_empty(self):
        p = LevelProfile(source=0, num_vertices=1, num_edges=0, records=())
        with pytest.raises(BFSError):
            p.peak_level()

    def test_json_roundtrip(self):
        p = self.make_profile()
        q = LevelProfile.from_json(p.to_json())
        assert q == p

    def test_save_load(self, tmp_path):
        p = self.make_profile()
        path = tmp_path / "p.json"
        p.save(path)
        assert LevelProfile.load(path) == p

    def test_real_profile_invariants(self, small_profile):
        """Measured profiles obey conservation laws."""
        p = small_profile
        fv = p.frontier_vertices()
        claimed = np.array([r.claimed for r in p])
        # Next level's frontier == this level's claims.
        assert np.array_equal(fv[1:], claimed[:-1])
        # Unvisited shrinks by exactly the claims.
        uv = p.unvisited_vertices()
        assert np.array_equal(uv[:-1] - claimed[:-1], uv[1:])
        # Bottom-up checks bounded by unvisited edge mass.
        for r in p:
            assert r.bu_edges_checked <= r.unvisited_edges
            assert r.bu_edges_failed <= r.bu_edges_checked


class TestMergeMean:
    def test_empty(self):
        assert merge_mean([]) == []

    def test_alignment(self):
        a = LevelProfile(
            source=0,
            num_vertices=10,
            num_edges=10,
            records=(make_record(0), make_record(1)),
        )
        b = LevelProfile(
            source=1,
            num_vertices=10,
            num_edges=10,
            records=(make_record(0, frontier_vertices=3),),
        )
        merged = merge_mean([a, b])
        assert len(merged) == 2
        assert merged[0]["frontier_vertices"] == pytest.approx(2.0)
        assert merged[0]["samples"] == 2
        assert merged[1]["samples"] == 1
