"""Differential + unit tests for the four BFS engines.

Every engine must produce the same level map as the pure-Python
reference on every graph family, and every output must pass Graph 500
validation.
"""

import numpy as np
import pytest

from repro.bfs.bottomup import bfs_bottom_up
from repro.bfs.hybrid import MNPolicy, bfs_hybrid
from repro.bfs.reference import bfs_reference
from repro.bfs.result import Direction
from repro.bfs.spmv import bfs_spmv
from repro.bfs.topdown import bfs_top_down
from repro.errors import BFSError
from repro.graph.generators import (
    balanced_tree,
    complete,
    grid2d,
    path,
    ring,
    rmat,
    star,
    two_cliques_bridge,
)

ENGINES = {
    "top_down": bfs_top_down,
    "bottom_up": bfs_bottom_up,
    "spmv": bfs_spmv,
    "hybrid": lambda g, s: bfs_hybrid(g, s, m=20, n=100),
}

FAMILIES = {
    "ring": (ring(17), 0),
    "path": (path(12), 0),
    "path_mid": (path(12), 6),
    "star_hub": (star(30), 0),
    "star_leaf": (star(30), 7),
    "complete": (complete(9), 4),
    "grid": (grid2d(7, 9), 0),
    "tree": (balanced_tree(3, 4), 0),
    "cliques": (two_cliques_bridge(6), 0),
    "rmat": (rmat(9, 16, seed=5), 1),
}


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("family", FAMILIES)
def test_levels_match_reference_and_validate(engine, family):
    graph, source = FAMILIES[family]
    ref = bfs_reference(graph, source)
    res = ENGINES[engine](graph, source)
    assert np.array_equal(res.level, ref.level), f"{engine} on {family}"
    res.validate(graph)


@pytest.mark.parametrize("engine", ENGINES)
def test_bad_source_rejected(engine, rmat_small):
    with pytest.raises(BFSError):
        ENGINES[engine](rmat_small, rmat_small.num_vertices)
    with pytest.raises(BFSError):
        ENGINES[engine](rmat_small, -1)


@pytest.mark.parametrize("engine", ENGINES)
def test_isolated_source(engine):
    # Vertex 3 is isolated; only it is reached.
    from repro.graph.csr import CSRGraph

    g = CSRGraph.from_edges([0, 1], [1, 2], 4)
    res = ENGINES[engine](g, 3)
    assert res.num_reached == 1
    assert res.level[3] == 0
    res.validate(g)


class TestTopDownSpecifics:
    def test_edges_examined_equals_frontier_degree(self, rmat_small, rmat_source):
        res = bfs_top_down(rmat_small, rmat_source)
        sizes = res.frontier_sizes()
        # Sum of examined edges == total degree of all reached vertices.
        reached = res.level >= 0
        assert sum(res.edges_examined) == int(
            rmat_small.degrees[reached].sum()
        )
        assert len(res.directions) >= len(sizes)

    def test_all_directions_td(self, rmat_small, rmat_source):
        res = bfs_top_down(rmat_small, rmat_source)
        assert set(res.directions) == {Direction.TOP_DOWN}


class TestBottomUpSpecifics:
    def test_all_directions_bu(self, rmat_small, rmat_source):
        res = bfs_bottom_up(rmat_small, rmat_source)
        assert set(res.directions) == {Direction.BOTTOM_UP}

    def test_chunked_matches_unchunked(self, rmat_small, rmat_source):
        a = bfs_bottom_up(rmat_small, rmat_source)
        b = bfs_bottom_up(rmat_small, rmat_source, chunk_entries=100)
        assert np.array_equal(a.level, b.level)
        assert a.edges_examined == b.edges_examined

    def test_tiny_chunk_still_correct(self):
        g = star(20)
        a = bfs_bottom_up(g, 3, chunk_entries=1)
        ref = bfs_reference(g, 3)
        assert np.array_equal(a.level, ref.level)

    def test_bad_chunk_rejected(self, rmat_small, rmat_source):
        with pytest.raises(BFSError):
            bfs_bottom_up(rmat_small, rmat_source, chunk_entries=0)

    def test_early_termination_bounds(self, rmat_small, rmat_source):
        """Edges checked never exceeds the unvisited edge mass."""
        res = bfs_bottom_up(rmat_small, rmat_source)
        assert all(
            e <= rmat_small.num_directed_edges for e in res.edges_examined
        )


class TestHybridSpecifics:
    def test_switches_on_rmat(self, rmat_medium):
        from repro.bfs.profiler import pick_sources

        source = int(pick_sources(rmat_medium, 1, seed=2)[0])
        res = bfs_hybrid(rmat_medium, source, m=20, n=100)
        assert Direction.BOTTOM_UP in res.directions
        assert Direction.TOP_DOWN in res.directions

    def test_extreme_m_n_pure_td(self, rmat_small, rmat_source):
        # Huge |E|/M and |V|/N thresholds -> never switch.
        res = bfs_hybrid(rmat_small, rmat_source, m=1e-9, n=1e-9)
        assert set(res.directions) == {Direction.TOP_DOWN}

    def test_policy_and_mn_mutually_exclusive(self, rmat_small, rmat_source):
        with pytest.raises(BFSError):
            bfs_hybrid(rmat_small, rmat_source, policy=MNPolicy(2, 2), m=2)

    def test_missing_arguments(self, rmat_small, rmat_source):
        with pytest.raises(BFSError):
            bfs_hybrid(rmat_small, rmat_source)
        with pytest.raises(BFSError):
            bfs_hybrid(rmat_small, rmat_source, m=5)

    def test_mn_policy_validation(self):
        with pytest.raises(BFSError):
            MNPolicy(0, 1)
        with pytest.raises(BFSError):
            MNPolicy(1, -1)

    def test_bad_policy_direction(self, rmat_small, rmat_source):
        class Bad:
            def direction(self, state):
                return "sideways"

        with pytest.raises(BFSError):
            bfs_hybrid(rmat_small, rmat_source, policy=Bad())

    def test_hybrid_equals_reference_many_mn(self, rmat_small, rmat_source):
        ref = bfs_reference(rmat_small, rmat_source)
        for m, n in [(1, 1), (5, 50), (1000, 1000), (0.5, 2000)]:
            res = bfs_hybrid(rmat_small, rmat_source, m=m, n=n)
            assert np.array_equal(res.level, ref.level), (m, n)
