"""Unit tests for batched multi-source BFS."""

import numpy as np
import pytest

from repro.bfs.multisource import MAX_BATCH, msbfs
from repro.bfs.profiler import pick_sources
from repro.bfs.reference import bfs_reference
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.graph.generators import path, ring, star


class TestCorrectness:
    def test_rows_match_single_source(self, rmat_small):
        sources = pick_sources(rmat_small, 16, seed=2)
        out = msbfs(rmat_small, sources)
        assert out.levels.shape == (16, rmat_small.num_vertices)
        for i, src in enumerate(sources):
            ref = bfs_reference(rmat_small, int(src))
            assert np.array_equal(out.levels[i], ref.level), i

    def test_single_source(self):
        g = star(10)
        out = msbfs(g, np.array([0]))
        assert out.levels[0, 0] == 0
        assert (out.levels[0, 1:] == 1).all()

    def test_full_batch_width(self):
        g = ring(64)
        out = msbfs(g, np.arange(64))
        for i in range(64):
            ref = bfs_reference(g, i)
            assert np.array_equal(out.levels[i], ref.level)

    def test_duplicate_sources(self):
        g = path(8)
        out = msbfs(g, np.array([3, 3]))
        assert np.array_equal(out.levels[0], out.levels[1])

    def test_disconnected_minus_one(self):
        g = CSRGraph.from_edges([0], [1], 4)
        out = msbfs(g, np.array([0]))
        assert out.levels[0, 2] == -1 and out.levels[0, 3] == -1


class TestHelpers:
    def test_distance(self):
        g = path(6)
        out = msbfs(g, np.array([0, 5]))
        assert out.distance(0, 5) == 5
        assert out.distance(1, 0) == 5
        assert out.num_sources == 2

    def test_distance_histogram(self):
        g = star(5)
        out = msbfs(g, np.array([0]))
        hist = out.distance_histogram()
        assert hist.tolist() == [1, 4]

    def test_mean_distance(self, rmat_small):
        sources = pick_sources(rmat_small, 4, seed=1)
        out = msbfs(rmat_small, sources)
        assert 1.0 < out.mean_distance() < 10.0

    def test_mean_distance_no_pairs(self):
        g = CSRGraph.empty(3)
        out = msbfs(g, np.array([0]))
        with pytest.raises(BFSError):
            out.mean_distance()


class TestValidation:
    def test_empty_sources(self, rmat_small):
        with pytest.raises(BFSError):
            msbfs(rmat_small, np.array([], dtype=np.int64))

    def test_too_many_sources(self, rmat_small):
        with pytest.raises(BFSError):
            msbfs(rmat_small, np.arange(MAX_BATCH + 1))

    def test_out_of_range(self, rmat_small):
        with pytest.raises(BFSError):
            msbfs(rmat_small, np.array([-1]))
        with pytest.raises(BFSError):
            msbfs(rmat_small, np.array([10**7]))
