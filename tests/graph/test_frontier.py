"""Unit tests for repro.graph.frontier."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.bitmap import Bitmap
from repro.graph.frontier import Frontier


class TestConstruction:
    def test_from_indices(self):
        f = Frontier(10, indices=np.array([3, 1, 3]))
        assert len(f) == 2
        assert f.indices.tolist() == [1, 3]  # sorted, deduped

    def test_from_bitmap(self):
        bm = Bitmap.from_indices(10, np.array([4]))
        f = Frontier(10, bitmap=bm)
        assert len(f) == 1

    def test_exactly_one_representation(self):
        with pytest.raises(GraphError):
            Frontier(10)
        with pytest.raises(GraphError):
            Frontier(
                10,
                indices=np.array([1]),
                bitmap=Bitmap(10),
            )

    def test_out_of_range(self):
        with pytest.raises(GraphError):
            Frontier(10, indices=np.array([10]))

    def test_bitmap_size_mismatch(self):
        with pytest.raises(GraphError):
            Frontier(10, bitmap=Bitmap(20))

    def test_from_source(self):
        f = Frontier.from_source(10, 3)
        assert f.indices.tolist() == [3]

    def test_from_source_invalid(self):
        with pytest.raises(GraphError):
            Frontier.from_source(10, 10)

    def test_empty(self):
        f = Frontier.empty(5)
        assert f.is_empty()
        assert len(f) == 0


class TestConversion:
    def test_indices_to_bitmap(self):
        f = Frontier(100, indices=np.array([5, 70]))
        assert not f.has_bitmap()
        bm = f.bitmap
        assert f.has_bitmap()
        assert bm.nonzero().tolist() == [5, 70]

    def test_bitmap_to_indices(self):
        f = Frontier(100, bitmap=Bitmap.from_indices(100, np.array([9])))
        assert not f.has_indices()
        assert f.indices.tolist() == [9]
        assert f.has_indices()

    def test_conversion_bytes_zero_when_present(self):
        f = Frontier(100, indices=np.array([1]))
        assert f.conversion_bytes("indices") == 0
        assert f.conversion_bytes("bitmap") > 0
        _ = f.bitmap
        assert f.conversion_bytes("bitmap") == 0

    def test_conversion_bytes_unknown(self):
        with pytest.raises(GraphError):
            Frontier(10, indices=np.array([1])).conversion_bytes("sparse")


class TestQueries:
    def test_contains_indices_form(self):
        f = Frontier(10, indices=np.array([2, 5]))
        assert 2 in f and 5 in f and 3 not in f

    def test_contains_bitmap_form(self):
        f = Frontier(10, bitmap=Bitmap.from_indices(10, np.array([2])))
        assert 2 in f and 3 not in f

    def test_edge_count(self):
        degrees = np.array([5, 1, 2, 0])
        f = Frontier(4, indices=np.array([0, 2]))
        assert f.edge_count(degrees) == 7

    def test_edge_count_shape_checked(self):
        f = Frontier(4, indices=np.array([0]))
        with pytest.raises(GraphError):
            f.edge_count(np.array([1, 2]))

    def test_eq(self):
        a = Frontier(10, indices=np.array([1, 2]))
        b = Frontier(10, bitmap=Bitmap.from_indices(10, np.array([1, 2])))
        assert a == b
        assert a != Frontier(10, indices=np.array([1]))
        assert a != 42
