"""Unit tests for the Watts-Strogatz generator."""

import numpy as np
import pytest

from repro.bfs.hybrid import bfs_hybrid
from repro.errors import GraphError
from repro.graph.generators import watts_strogatz


class TestWattsStrogatz:
    def test_lattice_beta_zero(self):
        g = watts_strogatz(20, 4, 0.0)
        # Pure ring lattice: everyone has exactly k neighbours.
        assert (g.degrees == 4).all()
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert not g.has_edge(0, 3)

    def test_rewiring_changes_structure(self):
        lattice = watts_strogatz(200, 6, 0.0, seed=1)
        rewired = watts_strogatz(200, 6, 0.5, seed=1)
        assert not np.array_equal(lattice.targets, rewired.targets)

    def test_bounded_degree(self):
        g = watts_strogatz(500, 6, 0.2, seed=2)
        # Low-variance degrees (opposite of R-MAT).
        assert g.degrees.max() < 20

    def test_small_world_shortcut_effect(self):
        """Rewiring collapses the diameter — the defining property."""
        from repro.apps.diameter import pseudo_diameter

        lattice_d = pseudo_diameter(watts_strogatz(400, 4, 0.0), 0)
        small_world_d = pseudo_diameter(
            watts_strogatz(400, 4, 0.3, seed=3), 0
        )
        assert small_world_d.lower_bound < lattice_d.lower_bound / 2

    def test_meta(self):
        g = watts_strogatz(50, 4, 0.1, seed=4)
        assert g.meta["family"] == "watts_strogatz"
        assert g.meta["k"] == 4

    def test_bfs_traverses(self):
        g = watts_strogatz(300, 4, 0.1, seed=5)
        bfs_hybrid(g, 0, m=20, n=100).validate(g)

    def test_deterministic(self):
        a = watts_strogatz(100, 4, 0.3, seed=9)
        b = watts_strogatz(100, 4, 0.3, seed=9)
        assert np.array_equal(a.targets, b.targets)

    def test_validation(self):
        with pytest.raises(GraphError):
            watts_strogatz(2, 2, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            watts_strogatz(10, 10, 0.1)  # k >= n
        with pytest.raises(GraphError):
            watts_strogatz(10, 4, 1.5)  # bad beta
