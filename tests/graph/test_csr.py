"""Unit tests for repro.graph.csr."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, coalesce_edges


def triangle() -> CSRGraph:
    return CSRGraph.from_edges([0, 1, 2], [1, 2, 0], 3)


class TestCoalesce:
    def test_symmetrize(self):
        s, d = coalesce_edges(
            np.array([0]), np.array([1]), num_vertices=3
        )
        assert s.tolist() == [0, 1]
        assert d.tolist() == [1, 0]

    def test_dedup(self):
        s, d = coalesce_edges(
            np.array([0, 0, 1]), np.array([1, 1, 0]), num_vertices=2
        )
        assert s.tolist() == [0, 1]

    def test_self_loops_dropped(self):
        s, d = coalesce_edges(
            np.array([0, 1]), np.array([0, 2]), num_vertices=3
        )
        assert 0 not in set(zip(s.tolist(), d.tolist()))
        assert (1, 2) in set(zip(s.tolist(), d.tolist()))

    def test_self_loops_kept_when_asked(self):
        s, d = coalesce_edges(
            np.array([0]),
            np.array([0]),
            num_vertices=1,
            drop_self_loops=False,
            symmetrize=False,
        )
        assert s.tolist() == [0] and d.tolist() == [0]

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            coalesce_edges(np.array([0]), np.array([5]), num_vertices=3)

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            coalesce_edges(np.array([-1]), np.array([0]), num_vertices=3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            coalesce_edges(np.array([0, 1]), np.array([1]), num_vertices=3)

    def test_sorted_output(self, rng):
        src = rng.integers(0, 50, 200)
        dst = rng.integers(0, 50, 200)
        s, d = coalesce_edges(src, dst, num_vertices=50)
        key = s.astype(np.int64) * 50 + d
        assert np.all(np.diff(key) > 0)  # strictly increasing => sorted+unique


class TestConstruction:
    def test_triangle_basics(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.num_directed_edges == 6
        assert g.degrees.tolist() == [2, 2, 2]

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.degrees.tolist() == [0] * 5

    def test_zero_vertices(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0

    def test_from_edges_python_lists(self):
        g = CSRGraph.from_edges([0], [1], 2)
        assert g.num_edges == 1

    def test_offsets_validation(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([1, 2], dtype=np.int64),
                targets=np.array([0], dtype=np.int32),
            )

    def test_offsets_monotonic(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([0, 2, 1], dtype=np.int64),
                targets=np.array([0, 1], dtype=np.int32),
            )

    def test_offsets_tail_matches_targets(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([0, 3], dtype=np.int64),
                targets=np.array([0], dtype=np.int32),
            )

    def test_target_range_checked(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([0, 1], dtype=np.int64),
                targets=np.array([5], dtype=np.int32),
            )

    def test_negative_vertices_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([0], [1], -1)

    def test_dtypes(self):
        g = triangle()
        assert g.offsets.dtype == np.int64
        assert g.targets.dtype == np.int32


class TestAccessors:
    def test_neighbors_sorted_view(self):
        g = CSRGraph.from_edges([0, 0], [2, 1], 3)
        nbr = g.neighbors(0)
        assert nbr.tolist() == [1, 2]

    def test_neighbors_out_of_range(self):
        with pytest.raises(GraphError):
            triangle().neighbors(3)

    def test_degree(self):
        assert triangle().degree(0) == 2
        with pytest.raises(GraphError):
            triangle().degree(-1)

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)  # symmetrized
        assert not g.has_edge(0, 0)

    def test_has_edge_missing(self):
        g = CSRGraph.from_edges([0], [1], 4)
        assert not g.has_edge(2, 3)

    def test_num_edges_directed_graph(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3, symmetrize=False)
        assert g.num_edges == 2
        assert g.num_directed_edges == 2


class TestTransforms:
    def test_edge_list_roundtrip(self):
        g = triangle()
        s, d = g.edge_list()
        g2 = CSRGraph.from_edges(s, d, 3, symmetrize=False)
        assert np.array_equal(g2.offsets, g.offsets)
        assert np.array_equal(g2.targets, g.targets)

    def test_reverse_symmetric_identity(self):
        g = triangle()
        assert g.reverse() is g

    def test_reverse_directed(self):
        g = CSRGraph.from_edges([0], [1], 2, symmetrize=False)
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert not r.has_edge(0, 1)

    def test_subgraph_mask(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        sub = g.subgraph_mask(np.array([True, True, False, True]))
        assert sub.num_vertices == 3
        # Only edge 0-1 survives (2 was the cut vertex).
        assert sub.num_edges == 1
        assert sub.has_edge(0, 1)

    def test_subgraph_mask_shape_checked(self):
        with pytest.raises(GraphError):
            triangle().subgraph_mask(np.array([True]))

    def test_nbytes_positive(self):
        assert triangle().nbytes() > 0


class TestRmatIntegration:
    def test_rmat_graph_valid(self, rmat_small):
        g = rmat_small
        assert g.num_vertices == 1024
        assert g.symmetric
        # symmetry: every directed edge has its reverse
        s, d = g.edge_list()
        fwd = set(zip(s.tolist(), d.tolist()))
        assert all((b, a) in fwd for a, b in fwd)

    def test_rmat_no_self_loops(self, rmat_small):
        s, d = rmat_small.edge_list()
        assert (s != d).all()


class TestFrozenStorage:
    """Construction freezes the CSR arrays (RPR005's bug class at
    runtime); copy_writable() is the explicit escape hatch."""

    def test_arrays_read_only_by_default(self):
        g = triangle()
        assert not g.offsets.flags.writeable
        assert not g.targets.flags.writeable

    def test_writes_raise(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.offsets[0] = 1
        with pytest.raises(ValueError):
            g.targets[0] = 2

    def test_caller_supplied_arrays_frozen_too(self):
        offsets = np.array([0, 1, 2], dtype=np.int64)
        targets = np.array([1, 0], dtype=np.int32)
        CSRGraph(offsets=offsets, targets=targets)
        # No-copy construction: freezing reaches the caller's arrays.
        assert not offsets.flags.writeable

    def test_copy_writable_is_writable_deep_copy(self):
        g = triangle()
        w = g.copy_writable()
        assert w.offsets.flags.writeable and w.targets.flags.writeable
        assert w.offsets is not g.offsets
        w.targets[0] = 0  # must not raise, must not alias g
        assert not g.targets.flags.writeable

    def test_copy_writable_preserves_structure(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3, meta={"k": 1})
        w = g.copy_writable()
        assert np.array_equal(w.offsets, g.offsets)
        assert np.array_equal(w.targets, g.targets)
        assert w.symmetric == g.symmetric
        assert w.meta == g.meta

    def test_views_inherit_read_only(self):
        g = triangle()
        nbr = g.neighbors(0)
        with pytest.raises(ValueError):
            nbr[0] = 0
