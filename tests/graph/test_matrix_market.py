"""Unit tests for MatrixMarket graph I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.io import load_matrix_market, save_matrix_market


class TestRoundtrip:
    def test_symmetric(self, rmat_small, tmp_path):
        path = tmp_path / "g.mtx"
        save_matrix_market(rmat_small, path)
        back = load_matrix_market(path)
        assert np.array_equal(back.offsets, rmat_small.offsets)
        assert np.array_equal(back.targets, rmat_small.targets)
        assert back.symmetric

    def test_directed(self, tmp_path):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3, symmetrize=False)
        path = tmp_path / "d.mtx"
        save_matrix_market(g, path)
        text = path.read_text()
        assert "general" in text.splitlines()[0]
        back = load_matrix_market(path)
        assert not back.symmetric
        assert back.has_edge(0, 1) and not back.has_edge(1, 0)

    def test_header_qualifier(self, rmat_small, tmp_path):
        path = tmp_path / "g.mtx"
        save_matrix_market(rmat_small, path)
        first = path.read_text().splitlines()[0]
        assert first == "%%MatrixMarket matrix coordinate pattern symmetric"

    def test_one_indexed(self, tmp_path):
        g = CSRGraph.from_edges([0], [1], 2)
        path = tmp_path / "g.mtx"
        save_matrix_market(g, path)
        entries = [
            line
            for line in path.read_text().splitlines()
            if not line.startswith("%") and len(line.split()) == 2
        ]
        assert entries == ["2 1"]  # lower triangle, 1-based


class TestParsing:
    def test_external_file(self, tmp_path):
        """A hand-written file in the SuiteSparse style."""
        path = tmp_path / "ext.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% a comment\n"
            "4 4 3\n"
            "2 1\n"
            "3 2\n"
            "4 3\n"
        )
        g = load_matrix_market(path)
        assert g.num_vertices == 4
        assert g.num_edges == 3  # a path graph
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_weighted_entries_ignored(self, tmp_path):
        path = tmp_path / "w.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 3.5\n"
        )
        g = load_matrix_market(path)
        assert g.has_edge(0, 1)

    def test_not_matrix_market(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text("hello world\n")
        with pytest.raises(GraphFormatError):
            load_matrix_market(path)

    def test_unsupported_qualifier(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern hermitian\n1 1 0\n"
        )
        with pytest.raises(GraphFormatError):
            load_matrix_market(path)

    def test_non_square(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n2 3 0\n"
        )
        with pytest.raises(GraphFormatError):
            load_matrix_market(path)

    def test_bad_size_line(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\nnope\n"
        )
        with pytest.raises(GraphFormatError):
            load_matrix_market(path)

    def test_missing_entries(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n"
        )
        with pytest.raises(GraphFormatError):
            load_matrix_market(path)

    def test_zero_index_rejected(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n"
        )
        with pytest.raises(GraphFormatError):
            load_matrix_market(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_matrix_market(tmp_path / "nope.mtx")

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "e.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 0\n"
        )
        g = load_matrix_market(path)
        assert g.num_vertices == 3 and g.num_edges == 0

    def test_bfs_on_loaded_graph(self, tmp_path, rmat_small):
        """End to end: save, load, traverse, validate."""
        from repro.bfs import bfs_hybrid, pick_sources

        path = tmp_path / "g.mtx"
        save_matrix_market(rmat_small, path)
        g = load_matrix_market(path)
        src = int(pick_sources(g, 1, seed=0)[0])
        bfs_hybrid(g, src, m=20, n=100).validate(g)
