"""Unit tests for repro.graph.validate (Graph 500-style checks)."""

import numpy as np
import pytest

from repro.bfs.reference import bfs_reference
from repro.errors import ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.generators import ring, star
from repro.graph.validate import check_bfs, validate_bfs


@pytest.fixture()
def valid_run(rmat_small, rmat_source):
    res = bfs_reference(rmat_small, rmat_source)
    return rmat_small, rmat_source, res.parent.copy(), res.level.copy()


class TestAccepts:
    def test_reference_output_valid(self, valid_run):
        g, s, parent, level = valid_run
        assert check_bfs(g, s, parent, level) == []
        validate_bfs(g, s, parent, level)  # no raise

    def test_star_from_hub(self):
        g = star(6)
        res = bfs_reference(g, 0)
        validate_bfs(g, 0, res.parent, res.level)

    def test_star_from_leaf(self):
        g = star(6)
        res = bfs_reference(g, 3)
        validate_bfs(g, 3, res.parent, res.level)

    def test_ring(self):
        g = ring(9)
        res = bfs_reference(g, 4)
        validate_bfs(g, 4, res.parent, res.level)

    def test_disconnected_component_ok(self):
        # Two disjoint edges; BFS from 0 must leave 2, 3 unreached.
        g = CSRGraph.from_edges([0, 2], [1, 3], 4)
        res = bfs_reference(g, 0)
        assert res.level[2] == -1
        validate_bfs(g, 0, res.parent, res.level)

    def test_alternative_parent_accepted(self, valid_run):
        """Any shortest-path tree is valid, not just the reference's."""
        g, s, parent, level = valid_run
        # Pick a vertex at level >= 2 and re-parent it to another
        # neighbour one level up, if one exists.
        for v in np.nonzero(level >= 2)[0]:
            for u in g.neighbors(v):
                if level[u] == level[v] - 1 and u != parent[v]:
                    parent[v] = u
                    assert check_bfs(g, s, parent, level) == []
                    return
        pytest.skip("no alternative parent in this graph")


class TestRejects:
    def test_wrong_source_level(self, valid_run):
        g, s, parent, level = valid_run
        level[s] = 1
        assert check_bfs(g, s, parent, level)

    def test_source_not_own_parent(self, valid_run):
        g, s, parent, level = valid_run
        parent[s] = -1
        assert check_bfs(g, s, parent, level)

    def test_level_skip(self, valid_run):
        g, s, parent, level = valid_run
        v = int(np.nonzero(level == 1)[0][0])
        level[v] = 2
        failures = check_bfs(g, s, parent, level)
        assert failures

    def test_parent_level_disagree_on_reached(self, valid_run):
        g, s, parent, level = valid_run
        v = int(np.nonzero(level == 1)[0][0])
        parent[v] = -1  # level still says reached
        assert any("disagree" in f for f in check_bfs(g, s, parent, level))

    def test_fake_tree_edge(self, valid_run):
        g, s, parent, level = valid_run
        # Find a vertex at level 2 and claim its parent is a non-adjacent
        # level-1 vertex.
        lvl1 = np.nonzero(level == 1)[0]
        lvl2 = np.nonzero(level == 2)[0]
        for v in lvl2:
            nbrs = set(g.neighbors(v).tolist())
            for u in lvl1:
                if int(u) not in nbrs:
                    parent[v] = u
                    assert any(
                        "not graph edges" in f
                        for f in check_bfs(g, s, parent, level)
                    )
                    return
        pytest.skip("every level-1 vertex adjacent to every level-2 vertex")

    def test_unreached_but_adjacent(self, valid_run):
        g, s, parent, level = valid_run
        v = int(np.nonzero(level == 2)[0][0])
        parent[v] = -1
        level[v] = -1
        failures = check_bfs(g, s, parent, level)
        assert any("unreached" in f for f in failures)

    def test_shape_mismatch(self, valid_run):
        g, s, parent, level = valid_run
        assert check_bfs(g, s, parent[:-1], level[:-1])

    def test_bad_source(self, valid_run):
        g, _, parent, level = valid_run
        assert check_bfs(g, -1, parent, level)

    def test_validate_raises(self, valid_run):
        g, s, parent, level = valid_run
        level[s] = 3
        with pytest.raises(ValidationError):
            validate_bfs(g, s, parent, level)


class TestEdgeCases:
    """Boundary structures: isolated sources, self-loop-only vertices,
    deliberate parent-array corruption."""

    def test_disconnected_source(self):
        """BFS from an isolated vertex reaches only itself and must
        still validate (and reject any phantom reachability)."""
        g = CSRGraph.from_edges([0, 1], [1, 2], 5)  # 3, 4 isolated
        res = bfs_reference(g, 4)
        assert res.num_reached == 1
        assert check_bfs(g, 4, res.parent, res.level) == []
        # Claiming an unreachable vertex was reached must fail.
        parent, level = res.parent.copy(), res.level.copy()
        parent[0], level[0] = 4, 1
        assert check_bfs(g, 4, parent, level)

    def test_self_loop_only_vertex(self):
        """A vertex whose only incident edge is a self loop: with the
        Graph 500 preprocessing the loop is dropped, so the vertex is
        isolated and unreachable from the rest of the graph."""
        g = CSRGraph.from_edges([0, 1, 3], [1, 2, 3], 4)
        assert g.degree(3) == 0  # self loop removed by construction
        res = bfs_reference(g, 0)
        assert res.level[3] == -1
        assert check_bfs(g, 0, res.parent, res.level) == []
        # From the self-loop vertex itself: a single-vertex traversal.
        res3 = bfs_reference(g, 3)
        assert res3.num_reached == 1
        assert check_bfs(g, 3, res3.parent, res3.level) == []

    def test_self_loop_kept_when_not_dropped(self):
        """Self loops retained in storage must not break validation:
        the loop spans zero levels by definition."""
        g = CSRGraph.from_edges(
            [0, 1, 1], [1, 2, 1], 3, drop_self_loops=False
        )
        res = bfs_reference(g, 0)
        assert check_bfs(g, 0, res.parent, res.level) == []

    def test_corrupted_parent_array_rejected(self, valid_run):
        """A parent map pointing inside the right level structure but at
        non-adjacent vertices must be rejected by check 4."""
        g, s, parent, level = valid_run
        rng = np.random.default_rng(0)
        reached = np.nonzero(level > 0)[0]
        # Corrupt a swath of parents to random reached vertices.
        victims = reached[:: max(1, reached.size // 16)]
        parent = parent.copy()
        parent[victims] = rng.choice(reached, size=victims.size)
        failures = check_bfs(g, s, parent, level)
        assert failures, "corrupted parent array slipped through"

    def test_cyclic_parent_chain_rejected(self, valid_run):
        """Two vertices claiming each other as parents cannot form a
        valid BFS tree at consistent levels."""
        g, s, parent, level = valid_run
        lvl2 = np.nonzero(level == 2)[0]
        if lvl2.size < 2:
            pytest.skip("graph too shallow for a 2-cycle at level 2")
        a, b = int(lvl2[0]), int(lvl2[1])
        parent = parent.copy()
        parent[a], parent[b] = b, a
        assert check_bfs(g, s, parent, level)

    def test_all_parents_minus_one_except_source(self, valid_run):
        """Wiping the parent map while levels still claim reachability
        must trip the agreement check."""
        g, s, parent, level = valid_run
        parent = np.full_like(parent, -1)
        parent[s] = s
        failures = check_bfs(g, s, parent, level)
        assert any("disagree" in f for f in failures)
