"""Unit tests for repro.graph.stats."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import GRAPH500_PARAMS, complete, rmat, star
from repro.graph.stats import (
    compute_stats,
    estimate_rmat_params,
    graph_features,
)


class TestComputeStats:
    def test_complete_graph(self):
        st = compute_stats(complete(5))
        assert st.num_vertices == 5
        assert st.num_edges == 10
        assert st.avg_degree == 4.0
        assert st.max_degree == 4
        assert st.degree_gini == pytest.approx(0.0, abs=1e-12)
        assert st.isolated_vertices == 0
        assert st.self_loops == 0

    def test_star_gini_high(self):
        st = compute_stats(star(100))
        assert st.max_degree == 99
        assert st.degree_gini > 0.4

    def test_isolated_counted(self):
        g = CSRGraph.from_edges([0], [1], 5)
        assert compute_stats(g).isolated_vertices == 3

    def test_empty_graph(self):
        st = compute_stats(CSRGraph.empty(3))
        assert st.avg_degree == 0.0
        assert st.max_degree == 0
        assert st.degree_gini == 0.0

    def test_as_dict(self):
        d = compute_stats(complete(3)).as_dict()
        assert d["num_vertices"] == 3
        assert set(d) == {
            "num_vertices",
            "num_edges",
            "avg_degree",
            "max_degree",
            "degree_gini",
            "isolated_vertices",
            "self_loops",
        }

    def test_rmat_skewed(self, rmat_small):
        st = compute_stats(rmat_small)
        assert st.degree_gini > 0.3  # R-MAT heavy tail


class TestRmatParams:
    def test_known_params_returned(self, rmat_small):
        assert estimate_rmat_params(rmat_small) == GRAPH500_PARAMS.as_tuple()

    def test_unknown_params_estimated(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 2, 3], 4)
        a, b, c, d = estimate_rmat_params(g)
        assert a + b + c + d == pytest.approx(1.0)

    def test_empty_graph_uniform(self):
        assert estimate_rmat_params(CSRGraph.empty(4)) == (
            0.25,
            0.25,
            0.25,
            0.25,
        )


class TestGraphFeatures:
    def test_layout(self, rmat_small):
        f = graph_features(rmat_small)
        assert f.shape == (6,)
        assert f[0] == pytest.approx(1024 / 1e6)
        assert f[1] == pytest.approx(rmat_small.num_edges / 1e6)
        assert tuple(f[2:]) == GRAPH500_PARAMS.as_tuple()

    def test_matches_paper_units(self):
        """The paper's worked example uses millions for |V| and |E|."""
        g = rmat(10, 16, seed=0)
        f = graph_features(g)
        assert 0 < f[0] < 1  # a thousand vertices is 0.001 million
