"""Unit tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    GRAPH500_PARAMS,
    RMATParams,
    balanced_tree,
    complete,
    erdos_renyi,
    grid2d,
    path,
    ring,
    rmat,
    rmat_edges,
    star,
    two_cliques_bridge,
)


class TestRMATParams:
    def test_graph500_defaults(self):
        assert GRAPH500_PARAMS.as_tuple() == (0.57, 0.19, 0.19, 0.05)

    def test_must_sum_to_one(self):
        with pytest.raises(GraphError):
            RMATParams(0.5, 0.5, 0.5, 0.5)

    def test_non_negative(self):
        with pytest.raises(GraphError):
            RMATParams(1.2, -0.2, 0.0, 0.0)

    def test_uniform_allowed(self):
        RMATParams(0.25, 0.25, 0.25, 0.25)


class TestRmatEdges:
    def test_counts(self):
        s, d = rmat_edges(8, 16, seed=0)
        assert s.shape == d.shape == (16 * 256,)
        assert s.min() >= 0 and s.max() < 256

    def test_deterministic(self):
        a = rmat_edges(8, 16, seed=42)
        b = rmat_edges(8, 16, seed=42)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seed_changes_output(self):
        a = rmat_edges(8, 16, seed=1)
        b = rmat_edges(8, 16, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_negative_scale_rejected(self):
        with pytest.raises(GraphError):
            rmat_edges(-1, 16)

    def test_negative_edgefactor_rejected(self):
        with pytest.raises(GraphError):
            rmat_edges(4, -1)

    def test_skew_toward_a_quadrant(self):
        """With A=0.57 the bit distributions must be skewed (before the
        permutation the low half of id space would dominate; after
        permutation the *degree* distribution carries the skew)."""
        g = rmat(12, 16, seed=3)
        deg = g.degrees
        assert deg.max() > 20 * deg.mean()  # heavy-tailed

    def test_uniform_params_not_skewed(self):
        g = rmat(12, 16, RMATParams(0.25, 0.25, 0.25, 0.25), seed=3)
        assert g.degrees.max() < 10 * g.degrees.mean()


class TestRmat:
    def test_meta(self):
        g = rmat(8, 8, seed=0)
        assert g.meta["family"] == "rmat"
        assert g.meta["scale"] == 8
        assert g.meta["edgefactor"] == 8
        assert g.meta["rmat_params"] == GRAPH500_PARAMS.as_tuple()

    def test_edge_count_close_to_requested(self):
        g = rmat(12, 16, seed=1)
        requested = 16 * 4096
        assert 0.7 * requested < g.num_edges <= requested


class TestDeterministicFamilies:
    def test_ring(self):
        g = ring(10)
        assert g.num_edges == 10
        assert all(g.degree(v) == 2 for v in range(10))

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            ring(2)

    def test_path(self):
        g = path(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_path_single_vertex(self):
        g = path(1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_star(self):
        g = star(9)
        assert g.degree(0) == 8
        assert all(g.degree(v) == 1 for v in range(1, 9))

    def test_star_too_small(self):
        with pytest.raises(GraphError):
            star(1)

    def test_complete(self):
        g = complete(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in range(5))

    def test_grid2d(self):
        g = grid2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.degree(0) == 2  # corner

    def test_grid2d_bad_dims(self):
        with pytest.raises(GraphError):
            grid2d(0, 4)

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.num_vertices == 15
        assert g.degree(0) == 2
        assert g.degree(14) == 1  # leaf

    def test_balanced_tree_unary(self):
        g = balanced_tree(1, 4)
        assert g.num_vertices == 5  # degenerates to a path

    def test_balanced_tree_bad_args(self):
        with pytest.raises(GraphError):
            balanced_tree(0, 3)
        with pytest.raises(GraphError):
            balanced_tree(2, -1)

    def test_two_cliques_bridge(self):
        g = two_cliques_bridge(4)
        assert g.num_vertices == 8
        # 2 * C(4,2) + 1 bridge
        assert g.num_edges == 13
        assert g.has_edge(3, 4)

    def test_two_cliques_too_small(self):
        with pytest.raises(GraphError):
            two_cliques_bridge(1)


class TestErdosRenyi:
    def test_edge_count(self):
        g = erdos_renyi(1000, 10.0, seed=0)
        assert 0.8 * 5000 < g.num_edges <= 5000

    def test_validation(self):
        with pytest.raises(GraphError):
            erdos_renyi(0, 10.0)
        with pytest.raises(GraphError):
            erdos_renyi(10, -1.0)

    def test_low_skew(self):
        g = erdos_renyi(4096, 16.0, seed=1)
        assert g.degrees.max() < 5 * g.degrees.mean()
