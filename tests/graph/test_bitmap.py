"""Unit tests for repro.graph.bitmap."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.bitmap import WORD_BITS, Bitmap


class TestConstruction:
    def test_empty(self):
        bm = Bitmap(100)
        assert len(bm) == 100
        assert bm.count() == 0
        assert not bm.any()

    def test_zero_size(self):
        bm = Bitmap(0)
        assert bm.count() == 0
        assert bm.to_bool().shape == (0,)

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            Bitmap(-1)

    def test_word_count_rounds_up(self):
        assert Bitmap(1).words.shape == (1,)
        assert Bitmap(64).words.shape == (1,)
        assert Bitmap(65).words.shape == (2,)

    def test_wrap_existing_words(self):
        words = np.zeros(2, dtype=np.uint64)
        bm = Bitmap(100, words)
        assert bm.words is words

    def test_wrap_bad_dtype_rejected(self):
        with pytest.raises(GraphError):
            Bitmap(100, np.zeros(2, dtype=np.int64))

    def test_wrap_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            Bitmap(100, np.zeros(3, dtype=np.uint64))

    def test_from_indices(self):
        bm = Bitmap.from_indices(50, np.array([0, 7, 49]))
        assert bm.count() == 3
        assert bm.test(0) and bm.test(7) and bm.test(49)

    def test_from_indices_duplicates(self):
        bm = Bitmap.from_indices(10, np.array([3, 3, 3]))
        assert bm.count() == 1

    def test_from_bool(self):
        mask = np.zeros(70, dtype=bool)
        mask[[1, 64, 69]] = True
        bm = Bitmap.from_bool(mask)
        assert np.array_equal(bm.to_bool(), mask)

    def test_full(self):
        bm = Bitmap.full(67)
        assert bm.count() == 67
        assert bm.to_bool().all()


class TestSingleBit:
    def test_set_test_clear(self):
        bm = Bitmap(128)
        bm.set(100)
        assert bm.test(100)
        bm.clear(100)
        assert not bm.test(100)

    def test_contains(self):
        bm = Bitmap(10)
        bm.set(5)
        assert 5 in bm
        assert 6 not in bm
        assert -1 not in bm
        assert 100 not in bm

    def test_out_of_range(self):
        bm = Bitmap(10)
        with pytest.raises(GraphError):
            bm.set(10)
        with pytest.raises(GraphError):
            bm.clear(-1)
        with pytest.raises(GraphError):
            bm.test(10)


class TestBulk:
    def test_set_many_and_nonzero(self):
        bm = Bitmap(200)
        idx = np.array([0, 63, 64, 127, 199])
        bm.set_many(idx)
        assert np.array_equal(bm.nonzero(), idx)

    def test_set_many_empty(self):
        bm = Bitmap(10)
        bm.set_many(np.array([], dtype=np.int64))
        assert bm.count() == 0

    def test_set_many_out_of_range(self):
        bm = Bitmap(10)
        with pytest.raises(GraphError):
            bm.set_many(np.array([5, 10]))

    def test_clear_many(self):
        bm = Bitmap.full(100)
        bm.clear_many(np.arange(0, 100, 2))
        assert bm.count() == 50
        assert not bm.test(0)
        assert bm.test(1)

    def test_test_many(self):
        bm = Bitmap.from_indices(100, np.array([2, 65]))
        got = bm.test_many(np.array([0, 2, 64, 65]))
        assert got.tolist() == [False, True, False, True]

    def test_test_many_empty(self):
        bm = Bitmap(10)
        assert bm.test_many(np.array([], dtype=np.int64)).shape == (0,)

    def test_fill_and_reset(self):
        bm = Bitmap(70)
        bm.fill()
        assert bm.count() == 70
        bm.reset()
        assert bm.count() == 0


class TestAlgebra:
    def test_ior(self):
        a = Bitmap.from_indices(64, np.array([1]))
        b = Bitmap.from_indices(64, np.array([2]))
        a.ior(b)
        assert a.count() == 2

    def test_iand(self):
        a = Bitmap.from_indices(64, np.array([1, 2]))
        b = Bitmap.from_indices(64, np.array([2, 3]))
        a.iand(b)
        assert a.nonzero().tolist() == [2]

    def test_iandnot(self):
        a = Bitmap.from_indices(64, np.array([1, 2]))
        b = Bitmap.from_indices(64, np.array([2]))
        a.iandnot(b)
        assert a.nonzero().tolist() == [1]

    def test_invert_respects_size(self):
        bm = Bitmap.from_indices(70, np.array([0]))
        bm.invert()
        assert bm.count() == 69
        assert not bm.test(0)

    def test_or_operator_copies(self):
        a = Bitmap.from_indices(10, np.array([1]))
        b = Bitmap.from_indices(10, np.array([2]))
        c = a | b
        assert c.count() == 2
        assert a.count() == 1

    def test_and_operator(self):
        a = Bitmap.from_indices(10, np.array([1, 2]))
        b = Bitmap.from_indices(10, np.array([2]))
        assert (a & b).nonzero().tolist() == [2]

    def test_size_mismatch_rejected(self):
        with pytest.raises(GraphError):
            Bitmap(10).ior(Bitmap(20))


class TestQueriesAndDunder:
    def test_count_slack_bits_never_counted(self):
        bm = Bitmap.full(65)
        assert bm.count() == 65

    def test_to_bool_roundtrip(self, rng):
        mask = rng.random(300) < 0.3
        assert np.array_equal(Bitmap.from_bool(mask).to_bool(), mask)

    def test_copy_independent(self):
        a = Bitmap.from_indices(10, np.array([1]))
        b = a.copy()
        b.set(2)
        assert a.count() == 1

    def test_eq(self):
        a = Bitmap.from_indices(10, np.array([1]))
        b = Bitmap.from_indices(10, np.array([1]))
        assert a == b
        b.set(2)
        assert a != b
        assert a != "not a bitmap"

    def test_iter(self):
        bm = Bitmap.from_indices(100, np.array([5, 70]))
        assert list(bm) == [5, 70]

    def test_nbytes(self):
        assert Bitmap(128).nbytes() == 16

    def test_word_bits_constant(self):
        assert WORD_BITS == 64
