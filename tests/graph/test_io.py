"""Unit tests for repro.graph.io."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.io import load_edgelist, load_npz, save_edgelist, save_npz


class TestNpz:
    def test_roundtrip(self, tmp_path, rmat_small):
        path = tmp_path / "g.npz"
        save_npz(rmat_small, path)
        g = load_npz(path)
        assert np.array_equal(g.offsets, rmat_small.offsets)
        assert np.array_equal(g.targets, rmat_small.targets)
        assert g.symmetric == rmat_small.symmetric
        assert g.meta["family"] == "rmat"

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_npz(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a npz at all")
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_meta_survives_json(self, tmp_path):
        g = CSRGraph.from_edges([0], [1], 2, meta={"note": "hello"})
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path).meta["note"] == "hello"


class TestEdgeList:
    def test_roundtrip_symmetric(self, tmp_path):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        g2 = load_edgelist(path, num_vertices=4)
        assert np.array_equal(g2.offsets, g.offsets)
        assert np.array_equal(g2.targets, g.targets)

    def test_roundtrip_rmat(self, tmp_path, rmat_small):
        path = tmp_path / "g.txt"
        save_edgelist(rmat_small, path)
        g2 = load_edgelist(path, num_vertices=rmat_small.num_vertices)
        assert np.array_equal(g2.targets, rmat_small.targets)

    def test_header_comment_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = load_edgelist(path)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_infer_num_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 7\n")
        assert load_edgelist(path).num_vertices == 8

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edgelist(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edgelist(path)

    def test_negative_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 2\n")
        with pytest.raises(GraphFormatError):
            load_edgelist(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_edgelist(tmp_path / "nope.txt")

    def test_no_header_option(self, tmp_path):
        g = CSRGraph.from_edges([0], [1], 2)
        path = tmp_path / "g.txt"
        save_edgelist(g, path, header=False)
        assert not path.read_text().startswith("#")
