"""Unit tests for the Graph 500 benchmark driver."""

import numpy as np
import pytest

from repro.bfs.topdown import bfs_top_down
from repro.errors import BenchError
from repro.graph500 import Graph500Result, Stats, run_graph500


class TestStats:
    def test_values(self):
        s = Stats.of(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == 2.5
        assert s.mean == 2.5
        assert s.harmonic_mean == pytest.approx(4 / (1 + 0.5 + 1 / 3 + 0.25))
        assert s.firstquartile <= s.median <= s.thirdquartile

    def test_single_value(self):
        s = Stats.of(np.array([5.0]))
        assert s.stddev == 0.0
        assert s.minimum == s.maximum == 5.0

    def test_validation(self):
        with pytest.raises(BenchError):
            Stats.of(np.array([]))
        with pytest.raises(BenchError):
            Stats.of(np.array([1.0, 0.0]))

    def test_as_dict_keys(self):
        d = Stats.of(np.array([1.0, 2.0])).as_dict()
        assert set(d) == {
            "min", "q1", "median", "q3", "max", "mean", "stddev",
            "harmonic_mean",
        }


class TestRunGraph500:
    @pytest.fixture(scope="class")
    def result(self) -> Graph500Result:
        return run_graph500(9, 8, num_roots=6, seed=1)

    def test_structure(self, result):
        assert result.scale == 9
        assert result.num_roots == 6
        assert result.bfs_seconds.shape == (6,)
        assert result.teps.shape == (6,)
        assert result.construction_seconds > 0
        assert result.validated

    def test_teps_consistent(self, result):
        assert (result.teps > 0).all()
        assert result.harmonic_mean_teps == pytest.approx(
            result.teps_stats.harmonic_mean
        )

    def test_summary_format(self, result):
        text = result.summary()
        assert "SCALE: 9" in text
        assert "NBFS: 6" in text
        assert "TEPS_harmonic_mean:" in text
        assert "time_median:" in text

    def test_custom_engine(self):
        calls = []

        def engine(graph, source):
            calls.append(source)
            return bfs_top_down(graph, source)

        res = run_graph500(8, 4, num_roots=3, engine=engine, seed=2)
        assert len(calls) == 3
        assert res.validated

    def test_validation_can_be_skipped(self):
        res = run_graph500(8, 4, num_roots=2, validate=False, seed=3)
        assert not res.validated

    def test_bad_roots(self):
        with pytest.raises(BenchError):
            run_graph500(8, 4, num_roots=0)

    def test_deterministic_roots(self):
        a = run_graph500(8, 4, num_roots=3, seed=5)
        b = run_graph500(8, 4, num_roots=3, seed=5)
        assert np.array_equal(a.roots, b.roots)
