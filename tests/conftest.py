"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.graph.generators import rmat


@pytest.fixture(scope="session")
def rmat_small():
    """A small R-MAT graph (SCALE 10, ef 16) shared across the suite."""
    return rmat(10, 16, seed=7)


@pytest.fixture(scope="session")
def rmat_medium():
    """A medium R-MAT graph (SCALE 13, ef 16)."""
    return rmat(13, 16, seed=11)


@pytest.fixture(scope="session")
def rmat_source(rmat_small):
    """A Graph 500-style random root for the small graph."""
    return int(pick_sources(rmat_small, 1, seed=3)[0])


@pytest.fixture(scope="session")
def small_profile(rmat_small, rmat_source):
    """Measured level profile of the small graph."""
    profile, _ = profile_bfs(rmat_small, rmat_source)
    return profile


@pytest.fixture(scope="session")
def medium_profile(rmat_medium):
    """Measured level profile of the medium graph."""
    source = int(pick_sources(rmat_medium, 1, seed=5)[0])
    profile, _ = profile_bfs(rmat_medium, source)
    return profile


@pytest.fixture(scope="session")
def presets():
    """The three paper architecture presets."""
    return {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X, "mic": MIC_KNC}


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
