"""Construction invariants of the BitmapTileMatrix format."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.linalg import BitmapTileMatrix, tile_matrix


def star_graph(n=200):
    hub = np.zeros(n - 1, dtype=np.int64)
    spokes = np.arange(1, n, dtype=np.int64)
    return CSRGraph.from_edges(hub, spokes, n)


def empty_graph(n=70):
    return CSRGraph.from_edges(
        np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), n
    )


class TestConstruction:
    def test_popcounts_sum_to_degrees(self):
        """Every stored adjacency entry is exactly one set bit."""
        g = rmat(9, 8, seed=1)
        t = tile_matrix(g)
        # num_entries counts stored (directed) adjacency entries: both
        # directions of each undirected edge.
        assert t.num_entries == g.targets.size
        pops = np.bitwise_count(t.words).astype(np.int64)
        per_row = np.add.reduceat(
            pops, t.row_ptr[:-1][t.row_ptr[:-1] < t.row_ptr[1:]]
        )
        rows = np.flatnonzero(g.degrees > 0)
        np.testing.assert_array_equal(per_row, g.degrees[rows])

    def test_words_match_adjacency_bits(self):
        """Bit j of row v's word in column block cb <=> edge (v, cb*64+j)."""
        g = rmat(8, 6, seed=2)
        t = tile_matrix(g)
        for v in (0, 1, 17, g.num_vertices - 1):
            neigh = set(g.neighbors(v).tolist())
            rebuilt = set()
            for i in range(t.row_ptr[v], t.row_ptr[v + 1]):
                w = int(t.words[i])
                cb = int(t.word_cols[i])
                assert w != 0, "stored words must be non-empty"
                for j in range(64):
                    if w >> j & 1:
                        rebuilt.add(cb * 64 + j)
            assert rebuilt == neigh

    def test_word_cols_ascend_within_rows(self):
        g = rmat(9, 8, seed=3)
        t = tile_matrix(g)
        for v in range(0, g.num_vertices, 37):
            cols = t.word_cols[t.row_ptr[v] : t.row_ptr[v + 1]]
            assert (np.diff(cols) > 0).all()

    def test_tile_reconstruction(self):
        """The dense tile view must agree with the word-level storage."""
        g = rmat(8, 8, seed=4)
        t = tile_matrix(g)
        for rb in range(t.num_blocks):
            for cb in t.tile_cols[t.block_ptr[rb] : t.block_ptr[rb + 1]]:
                tl = t.tile(rb, int(cb))
                assert tl.any(), "indexed tiles are non-empty"
        # A tile outside the index is all-zero.
        full = {
            (int(rb), int(cb))
            for rb in range(t.num_blocks)
            for cb in t.tile_cols[t.block_ptr[rb] : t.block_ptr[rb + 1]]
        }
        for rb in range(t.num_blocks):
            for cb in range(t.num_blocks):
                if (rb, cb) not in full:
                    assert not t.tile(rb, cb).any()

    def test_tile_index_counts_words(self):
        """Each indexed tile holds >= 1 stored word; none are missed."""
        g = rmat(8, 4, seed=5)
        t = tile_matrix(g)
        pairs = set(
            zip(
                (np.repeat(np.arange(g.num_vertices), np.diff(t.row_ptr))
                 >> 6).tolist(),
                t.word_cols.tolist(),
            )
        )
        indexed = {
            (rb, int(cb))
            for rb in range(t.num_blocks)
            for cb in t.tile_cols[t.block_ptr[rb] : t.block_ptr[rb + 1]]
        }
        assert pairs == indexed

    def test_empty_graph(self):
        t = tile_matrix(empty_graph())
        assert t.num_words == 0
        assert t.num_tiles == 0
        assert t.compression() == 1.0
        assert t.row_ptr.size == 71

    def test_star_compression(self):
        """The hub's 199 spokes pack into ceil(200/64) = 4 words."""
        t = tile_matrix(star_graph())
        hub_words = t.row_ptr[1] - t.row_ptr[0]
        assert hub_words == 4
        assert t.compression() > 1.0

    def test_rejects_non_graph(self):
        with pytest.raises(GraphError):
            BitmapTileMatrix.from_graph(np.eye(3))


class TestCachingAndImmutability:
    def test_cached_like_degrees(self):
        g = rmat(7, 4, seed=0)
        assert tile_matrix(g) is tile_matrix(g)
        assert g.tiles is tile_matrix(g)

    def test_arrays_frozen(self):
        t = tile_matrix(rmat(7, 4, seed=0))
        for arr in (t.row_ptr, t.word_cols, t.words, t.block_ptr,
                    t.tile_cols):
            assert not arr.flags.writeable

    def test_nbytes_counts_all_arrays(self):
        t = tile_matrix(rmat(8, 8, seed=1))
        assert t.nbytes() == (
            t.row_ptr.nbytes + t.word_cols.nbytes + t.words.nbytes
            + t.block_ptr.nbytes + t.tile_cols.nbytes
        )
