"""The tensor-tile preset must be priceable and worth picking.

Acceptance for the linalg tier: the cost model prices the tile kernel
family (``bu_kernel="tile"``), the cross-architecture planner can place
levels on a tensor-tile device, and on a large-frontier workload the
oracle actually *prefers* it to the paper's CPU/GPU for the bottom-up
middle of the traversal.
"""

import numpy as np
import pytest

from repro.arch import (
    CPU_SANDY_BRIDGE,
    GPU_K20X,
    TENSOR_TILE,
    CostModel,
    SimulatedMachine,
)
from repro.bfs import pick_sources, profile_bfs
from repro.bfs.result import Direction
from repro.graph.generators import rmat
from repro.hetero.planner import oracle_plan


@pytest.fixture(scope="module")
def profile():
    graph = rmat(13, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])
    prof, _ = profile_bfs(graph, source)
    return prof


class TestTensorTilePricing:
    def test_priced_finite_and_positive(self, profile):
        model = CostModel(TENSOR_TILE)
        n = profile.num_vertices
        for rec in profile.records:
            for cost in (model.top_down_seconds(rec, n),
                         model.bottom_up_seconds(rec, n)):
                assert np.isfinite(cost.seconds)
                assert cost.seconds > 0

    def test_tile_branch_differs_from_scan(self, profile):
        """bu_kernel is not cosmetic: the same catalog numbers priced
        through the scan branch give different bottom-up costs."""
        import dataclasses

        scan_twin = dataclasses.replace(TENSOR_TILE, bu_kernel="scan")
        tile_model = CostModel(TENSOR_TILE)
        scan_model = CostModel(scan_twin)
        n = profile.num_vertices
        rec = max(profile.records, key=lambda r: r.frontier_edges)
        assert (
            tile_model.bottom_up_seconds(rec, n).seconds
            != scan_model.bottom_up_seconds(rec, n).seconds
        )

    def test_top_down_unaffected_by_kernel_family(self, profile):
        import dataclasses

        scan_twin = dataclasses.replace(TENSOR_TILE, bu_kernel="scan")
        n = profile.num_vertices
        rec = max(profile.records, key=lambda r: r.frontier_edges)
        assert (
            CostModel(TENSOR_TILE).top_down_seconds(rec, n).seconds
            == CostModel(scan_twin).top_down_seconds(rec, n).seconds
        )


class TestPlannerSelectsTensorTile:
    def test_wins_large_frontier_bottom_up_levels(self, profile):
        """On the scale-13 R-MAT profile the oracle must hand the
        peak-frontier level to the tensor-tile device, bottom-up."""
        machine = SimulatedMachine(
            {
                "cpu": CPU_SANDY_BRIDGE,
                "gpu": GPU_K20X,
                "tile": TENSOR_TILE,
            }
        )
        plan = oracle_plan(machine, profile)
        peak = int(
            max(
                range(len(profile)),
                key=lambda i: profile.records[i].frontier_edges,
            )
        )
        step = plan[peak]
        assert step.device == "tile"
        assert step.direction == Direction.BOTTOM_UP
        # And the plan as a whole must be priceable end to end.
        report = machine.run(profile, plan)
        assert np.isfinite(report.total_seconds)
        assert report.total_seconds > 0

    def test_beats_cpu_gpu_only_machine(self, profile):
        """Adding the tensor-tile device can only improve the oracle's
        total: it wins levels, so the three-device plan is faster."""
        two = SimulatedMachine(
            {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X}
        )
        three = SimulatedMachine(
            {
                "cpu": CPU_SANDY_BRIDGE,
                "gpu": GPU_K20X,
                "tile": TENSOR_TILE,
            }
        )
        t2 = two.run(profile, oracle_plan(two, profile)).total_seconds
        t3 = three.run(profile, oracle_plan(three, profile)).total_seconds
        assert t3 < t2
