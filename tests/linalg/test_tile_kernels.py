"""Bit-identity and contract tests for the masked tile kernels."""

import numpy as np
import pytest

from _topologies import ADVERSARIAL

from repro.bfs.bottomup import bottom_up_step
from repro.bfs.multisource import msbfs
from repro.bfs.topdown import top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.generators import rmat
from repro.linalg import bottom_up_tiles_step, msbfs_tiles_step, tile_matrix


def _bu_level_state(graph, source, td_levels=1):
    """Parent/level/frontier after ``td_levels`` top-down steps."""
    ws = BFSWorkspace.for_graph(graph)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)
    for depth in range(td_levels):
        frontier, _ = top_down_step(
            graph, frontier, parent, level, depth, workspace=ws
        )
        ws.retire_claimed(parent)
    return ws, parent, level, frontier


class TestBottomUpStepIdentity:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL))
    def test_matches_row_scan(self, name):
        """Winners, parents and levels must be bit-identical to the
        reference entry scan at every level of the traversal."""
        graph, source = ADVERSARIAL[name]
        ws, parent, level, frontier = _bu_level_state(graph, source)
        ws2, parent2, level2, frontier2 = _bu_level_state(graph, source)
        depth = 1
        while frontier.size:
            bits = ws.load_frontier(frontier)
            unv = ws.unvisited_ids(graph, parent)
            win_scan, _ = bottom_up_step(
                graph, bits, parent, level, depth,
                unvisited=unv, workspace=ws,
            )
            ws.retire_claimed(parent)

            bits2 = ws2.load_frontier(frontier2)
            unv2 = ws2.unvisited_ids(graph, parent2)
            win_tile, _ = bottom_up_tiles_step(
                graph, bits2, parent2, level2, depth,
                unvisited=unv2, workspace=ws2,
            )
            ws2.retire_claimed(parent2)

            np.testing.assert_array_equal(win_tile, win_scan)
            np.testing.assert_array_equal(parent2, parent)
            np.testing.assert_array_equal(level2, level)
            frontier, frontier2 = win_scan, win_tile
            depth += 1

    @pytest.mark.parametrize("window", [1, 2, 3, 64])
    def test_window_invariance(self, window):
        """Any positive word window gives the same winners/parents —
        the two-phase split is a pure optimization."""
        graph, source = ADVERSARIAL["rmat"]
        ws, parent, level, frontier = _bu_level_state(graph, source)
        bits = ws.load_frontier(frontier)
        unv = ws.unvisited_ids(graph, parent)
        pw, lw = parent.copy(), level.copy()
        win_ref, ex_ref = bottom_up_tiles_step(
            graph, bits, pw, lw, 1, unvisited=unv, workspace=ws, window=64
        )
        pv, lv = parent.copy(), level.copy()
        win, ex = bottom_up_tiles_step(
            graph, bits, pv, lv, 1,
            unvisited=unv, workspace=ws, window=window,
        )
        np.testing.assert_array_equal(win, win_ref)
        np.testing.assert_array_equal(pv, pw)
        assert ex == ex_ref, "examined accounting is window-independent"

    def test_parent_is_min_id_frontier_neighbour(self):
        """The tile claim rule must pick the same parent the reference
        scan defines: the smallest-id frontier neighbour."""
        graph, source = ADVERSARIAL["rmat"]
        ws, parent, level, frontier = _bu_level_state(graph, source)
        bits = ws.load_frontier(frontier)
        unv = ws.unvisited_ids(graph, parent)
        fset = set(frontier.tolist())
        winners, _ = bottom_up_tiles_step(
            graph, bits, parent, level, 1, unvisited=unv, workspace=ws
        )
        for v in winners[:50]:
            hits = [u for u in graph.neighbors(int(v)).tolist() if u in fset]
            assert parent[v] == min(hits)

    def test_examined_matches_independent_recomputation(self):
        """Word-granular accounting: every probed word charges its
        stored popcount, stopping at each row's winning word."""
        graph, source = ADVERSARIAL["rmat"]
        tiles = tile_matrix(graph)
        ws, parent, level, frontier = _bu_level_state(graph, source)
        bits = ws.load_frontier(frontier)
        unv = ws.unvisited_ids(graph, parent)
        _, examined = bottom_up_tiles_step(
            graph, bits, parent.copy(), level.copy(), 1,
            unvisited=unv, workspace=ws,
        )
        fwords = bits.words
        expect = 0
        for v in unv:
            for i in range(tiles.row_ptr[v], tiles.row_ptr[v + 1]):
                expect += int(np.bitwise_count(tiles.words[i]))
                if tiles.words[i] & fwords[tiles.word_cols[i]]:
                    break
        assert examined == expect

    def test_empty_unvisited(self):
        graph, source = ADVERSARIAL["star"]
        ws, parent, level, frontier = _bu_level_state(graph, source)
        bits = ws.load_frontier(frontier)
        empty = np.zeros(0, dtype=np.int64)
        winners, examined = bottom_up_tiles_step(
            graph, bits, parent, level, 1, unvisited=empty, workspace=ws
        )
        assert winners.size == 0 and examined == 0

    def test_rejects_dense_frontier(self):
        graph, source = ADVERSARIAL["star"]
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[source] = True
        with pytest.raises(BFSError, match="packed Bitmap"):
            bottom_up_tiles_step(
                graph, mask,
                np.full(graph.num_vertices, -1, dtype=np.int64),
                np.full(graph.num_vertices, -1, dtype=np.int64),
                0,
            )

    def test_rejects_bad_window(self):
        graph, source = ADVERSARIAL["star"]
        ws, parent, level, frontier = _bu_level_state(graph, source)
        bits = ws.load_frontier(frontier)
        with pytest.raises(BFSError, match="window"):
            bottom_up_tiles_step(
                graph, bits, parent, level, 1, workspace=ws, window=0
            )


class TestMsbfsTilesIdentity:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL))
    def test_matches_scatter(self, name):
        graph, source = ADVERSARIAL[name]
        k = min(17, graph.num_vertices)
        sources = np.arange(k, dtype=np.int64) * (graph.num_vertices // k)
        sources[0] = source
        a = msbfs(graph, sources)
        b = msbfs(graph, sources, kernel="tiles")
        np.testing.assert_array_equal(b.levels, a.levels)

    def test_full_batch_rmat(self):
        graph = rmat(10, 8, seed=11)
        rng = np.random.default_rng(0)
        sources = rng.choice(graph.num_vertices, size=64, replace=False)
        a = msbfs(graph, sources)
        b = msbfs(graph, sources, kernel="tiles")
        np.testing.assert_array_equal(b.levels, a.levels)

    def test_single_step_or_of_neighbour_masks(self):
        """One sweep computes incoming[v] = OR of frontier[u] over u in
        adj(v), verified against a per-vertex recomputation."""
        graph = rmat(8, 6, seed=3)
        tiles = tile_matrix(graph)
        n = graph.num_vertices
        rng = np.random.default_rng(1)
        frontier = rng.integers(0, 2**63, n, dtype=np.int64).astype(np.uint64)
        frontier[rng.random(n) < 0.6] = 0
        incoming = np.empty(n, dtype=np.uint64)
        msbfs_tiles_step(tiles, frontier, incoming)
        for v in range(0, n, 13):
            expect = np.uint64(0)
            for u in graph.neighbors(v):
                expect |= frontier[u]
            assert incoming[v] == expect

    def test_row_mask_skips_saturated_rows(self):
        """Saturated rows (all 64 searches done) keep incoming == 0 —
        the caller's ¬visited mask annihilates them anyway."""
        graph = rmat(8, 6, seed=3)
        tiles = tile_matrix(graph)
        n = graph.num_vertices
        rng = np.random.default_rng(2)
        frontier = rng.integers(0, 2**63, n, dtype=np.int64).astype(np.uint64)
        row_mask = np.zeros(n, dtype=np.uint64)
        row_mask[: n // 2] = ~np.uint64(0)
        incoming = np.empty(n, dtype=np.uint64)
        msbfs_tiles_step(tiles, frontier, incoming, row_mask=row_mask)
        assert not incoming[: n // 2].any()
        reference = np.empty(n, dtype=np.uint64)
        msbfs_tiles_step(tiles, frontier, reference)
        np.testing.assert_array_equal(incoming[n // 2 :], reference[n // 2 :])

    def test_zero_frontier_returns_zero_words(self):
        graph = rmat(7, 4, seed=0)
        tiles = tile_matrix(graph)
        n = graph.num_vertices
        incoming = np.empty(n, dtype=np.uint64)
        streamed = msbfs_tiles_step(
            tiles, np.zeros(n, dtype=np.uint64), incoming
        )
        assert streamed == 0
        assert not incoming.any()

    def test_streamed_words_bounded_by_storage(self):
        graph = rmat(9, 8, seed=5)
        tiles = tile_matrix(graph)
        n = graph.num_vertices
        frontier = np.zeros(n, dtype=np.uint64)
        frontier[:64] = 1
        incoming = np.empty(n, dtype=np.uint64)
        streamed = msbfs_tiles_step(tiles, frontier, incoming)
        assert 0 < streamed <= tiles.num_words

    def test_rejects_bad_shapes(self):
        graph = rmat(7, 4, seed=0)
        tiles = tile_matrix(graph)
        n = graph.num_vertices
        good = np.zeros(n, dtype=np.uint64)
        with pytest.raises(BFSError, match="frontier"):
            msbfs_tiles_step(tiles, np.zeros(n, dtype=np.int64), good.copy())
        with pytest.raises(BFSError, match="incoming"):
            msbfs_tiles_step(tiles, good, np.zeros(n - 1, dtype=np.uint64))
        with pytest.raises(BFSError, match="row_mask"):
            msbfs_tiles_step(
                tiles, good, good.copy(),
                row_mask=np.zeros(n, dtype=np.int64),
            )

    def test_unknown_kernel_rejected(self):
        graph = rmat(7, 4, seed=0)
        with pytest.raises(BFSError, match="kernel"):
            msbfs(graph, np.array([0]), kernel="cuda")
