"""Adversarial graph topologies shared by the linalg test modules."""

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat


def star_graph(n=300):
    """Hub 0 connected to every other vertex."""
    hub = np.zeros(n - 1, dtype=np.int64)
    spokes = np.arange(1, n, dtype=np.int64)
    return CSRGraph.from_edges(hub, spokes, n)


def long_chain(n=257):
    """A single path: maximal depth, frontier size 1, words of 1-2 bits."""
    src = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(src, src + 1, n)


def disconnected(n=120):
    """Two cliques with no path between them."""
    k = 9
    a, b = np.meshgrid(np.arange(k), np.arange(k))
    sel = a != b
    src = np.concatenate([a[sel], a[sel] + 60])
    dst = np.concatenate([b[sel], b[sel] + 60])
    return CSRGraph.from_edges(src, dst, n)


def zero_degree_tail(n=100):
    """A clique in the low ids followed by a block of isolated vertices
    (their rows store no words at all)."""
    k = 8
    a, b = np.meshgrid(np.arange(k), np.arange(k))
    sel = a != b
    return CSRGraph.from_edges(a[sel], b[sel], n)


ADVERSARIAL = {
    "star": (star_graph(), 0),
    "star-leaf": (star_graph(), 131),
    "chain": (long_chain(), 0),
    "chain-middle": (long_chain(), 128),
    "disconnected": (disconnected(), 2),
    "zero-degree-tail": (zero_degree_tail(), 1),
    "rmat": (rmat(10, 8, seed=7), 0),
}
