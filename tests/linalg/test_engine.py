"""Whole-traversal identity and workspace reuse for the tile engines."""

import numpy as np
import pytest

from _topologies import ADVERSARIAL

from repro.bfs.bottomup import bfs_bottom_up
from repro.bfs.hybrid import BOTTOM_UP_KERNELS, bfs_hybrid
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.generators import rmat
from repro.linalg import bfs_bottom_up_tiles


class TestBottomUpTilesEngine:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL))
    def test_matches_reference_engine(self, name):
        graph, source = ADVERSARIAL[name]
        ref = bfs_bottom_up(graph, source)
        res = bfs_bottom_up_tiles(graph, source)
        np.testing.assert_array_equal(res.parent, ref.parent)
        np.testing.assert_array_equal(res.level, ref.level)
        assert res.directions == ref.directions
        res.validate(graph)

    def test_sanitized_run(self):
        graph, source = ADVERSARIAL["rmat"]
        res = bfs_bottom_up_tiles(graph, source, sanitize=True)
        res.validate(graph)

    def test_rejects_bad_source(self):
        graph, _ = ADVERSARIAL["star"]
        with pytest.raises(BFSError):
            bfs_bottom_up_tiles(graph, graph.num_vertices)


class TestHybridTiles:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL))
    def test_bit_identical_to_scan_hybrid(self, name):
        """Same parents, levels, directions — the kernel family is an
        implementation detail of the bottom-up levels."""
        graph, source = ADVERSARIAL[name]
        ref = bfs_hybrid(graph, source, m=20, n=100)
        res = bfs_hybrid(graph, source, m=20, n=100, bottom_up="tiles")
        np.testing.assert_array_equal(res.parent, ref.parent)
        np.testing.assert_array_equal(res.level, ref.level)
        assert res.directions == ref.directions
        res.validate(graph)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_on_rmat_scales(self, seed):
        graph = rmat(11, 8, seed=seed)
        for source in (0, 5, graph.num_vertices - 1):
            ref = bfs_hybrid(graph, source, m=20, n=100)
            res = bfs_hybrid(
                graph, source, m=20, n=100, bottom_up="tiles"
            )
            np.testing.assert_array_equal(res.parent, ref.parent)
            np.testing.assert_array_equal(res.level, ref.level)
            assert res.directions == ref.directions

    def test_kernel_catalog(self):
        assert BOTTOM_UP_KERNELS == ("scan", "tiles")
        graph, source = ADVERSARIAL["star"]
        with pytest.raises(BFSError, match="bottom-up kernel"):
            bfs_hybrid(graph, source, m=20, n=100, bottom_up="blas")


class TestAllocationFreedom:
    def test_no_scratch_growth_after_warmup_tiles_hybrid(self):
        """Warm tile traversals must not grow the workspace pool: every
        recurring scratch array (including the lin-* kernel buffers) is
        grown once and reused."""
        graph = rmat(11, 8, seed=3)
        ws = BFSWorkspace.for_graph(graph)
        sources = (1, 2, 3, 4, 5, 6)
        for s in sources:
            bfs_hybrid(graph, s, m=20, n=100, bottom_up="tiles",
                       workspace=ws)

        def pool_bytes():
            total = sum(b.nbytes for b in ws._buffers.values())
            for arr in (ws._iota, ws._claim_slot, ws._unv_backing,
                        ws._unv_spare):
                if arr is not None:
                    total += arr.nbytes
            return total

        before = pool_bytes()
        for _ in range(3):
            for s in sources:
                bfs_hybrid(graph, s, m=20, n=100, bottom_up="tiles",
                           workspace=ws)
        assert pool_bytes() == before

    def test_no_scratch_growth_warm_bottom_up_tiles(self):
        graph = rmat(10, 8, seed=4)
        ws = BFSWorkspace.for_graph(graph)
        for s in (1, 2, 3):
            bfs_bottom_up_tiles(graph, s, workspace=ws)
        before = sum(b.nbytes for b in ws._buffers.values())
        for _ in range(3):
            for s in (1, 2, 3):
                bfs_bottom_up_tiles(graph, s, workspace=ws)
        assert sum(b.nbytes for b in ws._buffers.values()) == before

    def test_workspace_result_aliases_and_detaches(self):
        graph = rmat(9, 8, seed=5)
        ws = BFSWorkspace.for_graph(graph)
        first = bfs_bottom_up_tiles(graph, 1, workspace=ws).detach()
        second = bfs_bottom_up_tiles(graph, 2, workspace=ws)
        assert second.parent is not first.parent
        ref = bfs_bottom_up(graph, 2)
        np.testing.assert_array_equal(second.level, ref.level)
