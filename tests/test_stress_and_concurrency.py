"""Scale stress tests and concurrency properties.

The vectorized and thread-parallel engines must agree with the scalar
reference at sizes where chunking, threading and int32/int64 seams
actually engage — not just on toy graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs.bottomup import bfs_bottom_up
from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.parallel import ParallelBFS
from repro.bfs.profiler import pick_sources
from repro.bfs.topdown import bfs_top_down
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def big_graph():
    """SCALE 16: 65k vertices, ~1M edges — chunking and threading real."""
    return rmat(16, 16, seed=99)


class TestScaleStress:
    def test_engines_agree_at_scale(self, big_graph):
        src = int(pick_sources(big_graph, 1, seed=0)[0])
        td = bfs_top_down(big_graph, src)
        bu = bfs_bottom_up(big_graph, src)
        hy = bfs_hybrid(big_graph, src, m=20, n=100)
        assert np.array_equal(td.level, bu.level)
        assert np.array_equal(td.level, hy.level)
        hy.validate(big_graph)

    def test_chunked_bottom_up_at_scale(self, big_graph):
        src = int(pick_sources(big_graph, 1, seed=1)[0])
        full = bfs_bottom_up(big_graph, src)
        chunked = bfs_bottom_up(big_graph, src, chunk_entries=10_000)
        assert np.array_equal(full.level, chunked.level)
        assert full.edges_examined == chunked.edges_examined

    def test_parallel_engine_at_scale(self, big_graph):
        src = int(pick_sources(big_graph, 1, seed=2)[0])
        serial = bfs_hybrid(big_graph, src, m=20, n=100)
        with ParallelBFS.hybrid(8, 20, 100) as eng:
            par = eng.run(big_graph, src)
        assert np.array_equal(serial.level, par.level)
        par.validate(big_graph)

    def test_multiple_sources_at_scale(self, big_graph):
        for src in pick_sources(big_graph, 3, seed=3):
            bfs_hybrid(big_graph, int(src), m=20, n=100).validate(big_graph)

    def test_profile_at_scale_consistent(self, big_graph):
        from repro.bfs.profiler import profile_bfs

        src = int(pick_sources(big_graph, 1, seed=4)[0])
        profile, result = profile_bfs(big_graph, src)
        assert profile.total_reached() == result.num_reached
        # Total TD work over all levels = degree mass of the component.
        reached = result.level >= 0
        assert profile.frontier_edges().sum() == int(
            big_graph.degrees[reached].sum()
        )


class TestConcurrencyProperties:
    """Thread count must never affect the answer."""

    @given(
        seed=st.integers(min_value=0, max_value=50),
        threads=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=15, deadline=None)
    def test_thread_count_invariance(self, seed, threads):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 200))
        m = int(rng.integers(0, 400))
        graph = CSRGraph.from_edges(
            rng.integers(0, n, m), rng.integers(0, n, m), n
        )
        source = int(rng.integers(0, n))
        serial = bfs_top_down(graph, source)
        with ParallelBFS(num_threads=threads) as eng:
            par_td = eng.run(graph, source, direction="td")
            par_bu = eng.run(graph, source, direction="bu")
        assert np.array_equal(serial.level, par_td.level)
        assert np.array_equal(serial.level, par_bu.level)

    def test_engine_reusable_across_graphs(self):
        """One pool, many traversals, no state bleed."""
        with ParallelBFS(num_threads=4) as eng:
            for seed in range(4):
                g = rmat(10, 8, seed=seed)
                src = int(pick_sources(g, 1, seed=seed)[0])
                ref = bfs_top_down(g, src)
                got = eng.run(g, src)
                assert np.array_equal(ref.level, got.level)

    def test_concurrent_results_independent(self, big_graph):
        """Two traversals interleaved on one engine don't corrupt maps
        (each run owns its arrays; the pool is the only shared state)."""
        srcs = pick_sources(big_graph, 2, seed=5)
        with ParallelBFS(num_threads=4) as eng:
            a1 = eng.run(big_graph, int(srcs[0]))
            b1 = eng.run(big_graph, int(srcs[1]))
            a2 = eng.run(big_graph, int(srcs[0]))
        assert np.array_equal(a1.level, a2.level)
        assert not np.array_equal(a1.level, b1.level)


class BrokenParallelBFS(ParallelBFS):
    """An engine whose worker violates ownership protocol rule 3: it
    writes the shared parent map from the pool thread instead of
    returning proposals for the main-thread merge.  The static twin of
    this defect lives in tests/analysis/fixtures/rpr013_bad.py.

    The scribble fires once, at depth 0: un-claiming the frontier every
    level would let vertices be re-discovered forever and the traversal
    would never terminate — one rogue write is all the race tracker
    needs, and it keeps the unsanitized run finite."""

    def _top_down_level(self, graph, frontier, parent, level, depth,
                        workspace, tracer=None, race=None,
                        parent_span=None):
        def scribble(chunk):
            if race is not None:
                race.stamp_chunk(f"scribble@{depth}")
            parent[chunk] = -7  # cross-thread write, never claimed
            return chunk

        if depth == 0:
            list(self._pool.map(scribble, [frontier]))
        from repro.obs.tracer import NULL_TRACER

        return super()._top_down_level(
            graph, frontier, parent, level, depth, workspace,
            tracer if tracer is not None else NULL_TRACER, race,
            parent_span,
        )


class TestRaceSanitizer:
    """sanitize='race' write tracking on the parallel engine: clean
    protocol-following runs verify silently, a worker that scribbles on
    shared state is caught at the level where it raced."""

    def test_race_mode_clean_on_rmat(self, big_graph):
        src = int(pick_sources(big_graph, 1, seed=7)[0])
        serial = bfs_hybrid(big_graph, src, m=20, n=100)
        with ParallelBFS.hybrid(8, 20, 100) as eng:
            traced = eng.run(big_graph, src, sanitize="race")
        assert np.array_equal(serial.level, traced.level)
        assert "bu" in traced.directions  # both kernels ran under tracking

    def test_race_mode_forced_directions_clean(self, big_graph):
        src = int(pick_sources(big_graph, 1, seed=8)[0])
        with ParallelBFS(num_threads=4) as eng:
            td = eng.run(big_graph, src, direction="td", sanitize="race")
            bu = eng.run(big_graph, src, direction="bu", sanitize="race")
        assert np.array_equal(td.level, bu.level)

    def test_race_mode_catches_broken_worker(self, big_graph):
        from repro.errors import SanitizerError

        src = int(pick_sources(big_graph, 1, seed=9)[0])
        with BrokenParallelBFS(num_threads=4) as eng:
            with pytest.raises(SanitizerError) as exc:
                eng.run(big_graph, src, direction="td", sanitize="race")
        assert "bypassed the main-thread merge" in str(exc.value)
        assert exc.value.level == 0  # caught at the first racy level

    def test_broken_worker_undetected_without_race_mode(self, big_graph):
        """The defect is silent under sanitize=False — exactly why the
        write-tracking mode exists (the scribble targets already-
        visited vertices, so plain invariant checks can miss it)."""
        src = int(pick_sources(big_graph, 1, seed=9)[0])
        with BrokenParallelBFS(num_threads=4) as eng:
            result = eng.run(big_graph, src, direction="td")
        # The corruption really happened: a correct traversal roots the
        # tree at the source (parent[src] == src); after the rogue
        # write the source's self-parent is gone — either still -7, or
        # re-claimed from a neighbour one level too deep.
        assert result.parent[src] != src

    def test_static_twin_of_the_dynamic_defect(self):
        """The race fixture the static detector must flag encodes the
        same bug BrokenParallelBFS injects at runtime."""
        from pathlib import Path

        from repro.analysis import lint_source

        fixture = (
            Path(__file__).parent
            / "analysis" / "fixtures" / "rpr013_bad.py"
        )
        violations = lint_source(
            fixture.read_text(encoding="utf-8"),
            path="src/repro/bfs/rpr013_bad.py",
            select=["RPR013"],
            deep=True,
        )
        assert any("parent" in v.message for v in violations)
