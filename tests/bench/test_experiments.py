"""Integration tests: every registered experiment runs and its headline
claims hold at a reduced scale.

These use a small ``base_scale`` and few candidates so the whole module
stays fast; the benchmarks run the same experiments at full size.
"""

import pytest

from repro.bench.experiments import REGISTRY, run_experiment
from repro.bench.runner import BenchConfig


@pytest.fixture(scope="module")
def config(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    return BenchConfig(
        base_scale=12,
        seeds=(0,),
        candidate_count=200,
        cache_dir=cache,
    )


def test_registry_complete():
    names = set(REGISTRY)
    assert {
        "fig01",
        "fig02",
        "fig03",
        "fig08",
        "fig09",
        "fig10",
        "table3",
        "table4",
        "table5",
        "table6",
        "sec5d",
        "roofline",
    } <= names
    assert {n for n in names if n.startswith("ablation-")} == {
        "ablation-policy",
        "ablation-regression",
        "ablation-features",
        "ablation-transfer",
    }


def test_unknown_experiment():
    with pytest.raises(KeyError):
        run_experiment("fig99")


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_experiment_runs_and_renders(name, config):
    result = run_experiment(name, config)
    assert result.rows, name
    out = result.render()
    assert result.title in out


class TestHeadlineClaims:
    """Spot-check the claims that define the reproduction."""

    def test_fig01_unimodal(self, config):
        res = run_experiment("fig01", config)
        assert all(res.column("peak_in_middle"))

    def test_fig03_two_crossings(self, config):
        res = run_experiment("fig03", config)
        winners = res.column("faster")
        assert winners[0] == "td"
        assert "bu" in winners

    def test_table4_cross_wins(self, config):
        res = run_experiment("table4", config)
        speedups = res.rows[-1]
        assert speedups["CPUTD+GPUCB"] == max(
            v for k, v in speedups.items() if k != "level"
        )
        assert speedups["GPUCB"] > 2.0
        assert speedups["CPUTD+GPUCB"] > 10.0

    def test_table5_speedups_large(self, config):
        res = run_experiment("table5", config)
        assert min(res.column("speedup")) > 5.0

    def test_fig09_cross_wins_everywhere(self, config):
        res = run_experiment("fig09", config)
        for row in res.rows:
            assert row["cross_over_mic"] > 1.0
            assert row["cross_over_cpu"] > 1.0
            assert row["cross_over_gpu"] > 1.0

    def test_fig10_scaling_grows(self, config):
        res = run_experiment("fig10", config)
        for arch in ("cpu-snb", "mic-knc"):
            series = [
                r["gteps"]
                for r in res.rows
                if r["panel"] == "strong"
                and r["arch"] == arch
                and r["edgefactor"] == 16
            ]
            assert series[-1] > series[0]

    def test_table6_mic_below_cpu(self, config):
        """At the reduced test scale only the MIC-vs-CPU ordering is
        stable; the full GPU ordering is asserted by the scale-15
        benchmark run (see EXPERIMENTS.md)."""
        res = run_experiment("table6", config)
        by = {r["arch"]: r for r in res.rows}
        for label in ("2M", "4M", "8M"):
            assert by["mic"][f"gteps_{label}"] < by["cpu"][f"gteps_{label}"]

    def test_fig08_regression_quality(self, config):
        from repro.bench.metrics import geometric_mean

        res = run_experiment("fig08", config)
        # Reduced-scale corpus: demand the orderings, not the paper's
        # 95% headline (the scale-15 bench reaches it).
        assert geometric_mean(res.column("reg_vs_exhaustive")) > 0.3
        assert geometric_mean(res.column("reg_over_worst")) > 2.0
        for row in res.rows:
            assert row["regression_s"] <= row["worst_s"]

    def test_roofline_memory_bound(self, config):
        res = run_experiment("roofline", config)
        assert all(res.column("memory_bound"))

    def test_sec5d_beats_reference(self, config):
        res = run_experiment("sec5d", config)
        import numpy as np

        assert np.mean(res.column("cross_over_graph500")) > 2.0

    def test_ablation_transfer_pcie_survives(self, config):
        res = run_experiment("ablation-transfer", config)
        pcie = [r for r in res.rows if r["link"] == "pcie_gen2"]
        assert all(r["cross_still_wins"] for r in pcie)
