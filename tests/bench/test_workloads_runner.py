"""Unit tests for workload caching and the experiment runner."""

import pytest

from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import (
    PAPER_SUITE,
    TABLE5_GRAPHS,
    WorkloadSpec,
    get_graph,
    get_profile,
    paper_scale_profile,
)
from repro.errors import BenchError


class TestWorkloadSpec:
    def test_key_stable_and_distinct(self):
        a = WorkloadSpec(scale=10, edgefactor=16, seed=0)
        b = WorkloadSpec(scale=10, edgefactor=16, seed=0)
        c = WorkloadSpec(scale=10, edgefactor=16, seed=1)
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_label(self):
        assert WorkloadSpec(12, 8).label() == "scale=12 ef=8"

    def test_validation(self):
        with pytest.raises(BenchError):
            WorkloadSpec(scale=0)
        with pytest.raises(BenchError):
            WorkloadSpec(scale=10, edgefactor=0)


class TestProfileCache:
    def test_cache_hit(self, tmp_path):
        spec = WorkloadSpec(scale=9, edgefactor=8, seed=1)
        p1 = get_profile(spec, cache_dir=tmp_path)
        files = list(tmp_path.glob("profile-*.json"))
        assert len(files) == 1
        mtime = files[0].stat().st_mtime_ns
        p2 = get_profile(spec, cache_dir=tmp_path)
        assert files[0].stat().st_mtime_ns == mtime  # not regenerated
        assert p1 == p2

    def test_graph_regeneration_deterministic(self):
        spec = WorkloadSpec(scale=9, edgefactor=8, seed=2)
        import numpy as np

        a, b = get_graph(spec), get_graph(spec)
        assert np.array_equal(a.targets, b.targets)

    def test_paper_scale(self, tmp_path):
        spec = WorkloadSpec(scale=9, edgefactor=8, seed=3)
        big = paper_scale_profile(spec, 13, cache_dir=tmp_path)
        assert big.num_vertices == 16 * (1 << 9)

    def test_paper_scale_below_measured(self, tmp_path):
        spec = WorkloadSpec(scale=9, edgefactor=8, seed=3)
        with pytest.raises(BenchError):
            paper_scale_profile(spec, 8, cache_dir=tmp_path)

    def test_suites(self):
        assert len(PAPER_SUITE) == 9
        assert len(TABLE5_GRAPHS) == 7
        # Table V sizes: |E| = ef * 2^(scale-20) million matches paper list.
        sizes = [
            (2 ** (s - 20), ef * 2 ** (s - 20)) for s, ef in TABLE5_GRAPHS
        ]
        assert (2, 32) in sizes and (8, 128) in sizes


class TestBenchConfig:
    def test_defaults(self):
        c = BenchConfig()
        assert c.base_scale == 15
        assert c.candidate_count == 1000

    def test_validation(self):
        with pytest.raises(BenchError):
            BenchConfig(base_scale=4)
        with pytest.raises(BenchError):
            BenchConfig(seeds=())
        with pytest.raises(BenchError):
            BenchConfig(candidate_count=1)


class TestExperimentResult:
    def test_render_and_save(self, tmp_path):
        res = ExperimentResult(
            name="demo",
            title="Demo",
            rows=[{"a": 1.0}],
            notes=["hello"],
        )
        out = res.render()
        assert "Demo" in out and "note: hello" in out
        path = res.save(tmp_path)
        assert path.exists()

    def test_column(self):
        res = ExperimentResult(
            name="demo", title="t", rows=[{"a": 1}, {"a": 2}]
        )
        assert res.column("a") == [1, 2]
        with pytest.raises(BenchError):
            res.column("b")
