"""Unit tests for bench metrics and reporting."""

import pytest

from repro.bench.metrics import (
    geometric_mean,
    gteps,
    harmonic_mean,
    speedup,
    teps,
)
from repro.bench.reporting import (
    format_table,
    format_value,
    load_rows,
    save_rows,
)
from repro.errors import BenchError


class TestMetrics:
    def test_teps(self):
        assert teps(1000, 2.0) == 500.0
        assert gteps(2_000_000_000, 1.0) == 2.0

    def test_teps_validation(self):
        with pytest.raises(BenchError):
            teps(100, 0)
        with pytest.raises(BenchError):
            teps(-1, 1)

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        with pytest.raises(BenchError):
            speedup(0, 1)

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(BenchError):
            geometric_mean([])
        with pytest.raises(BenchError):
            geometric_mean([1, -1])

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)
        with pytest.raises(BenchError):
            harmonic_mean([0.0])


class TestFormatting:
    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(True) == "True"
        assert format_value("x") == "x"
        assert "e" in format_value(1.2e-9)
        assert format_value(3.14159, precision=3) == "3.14"

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out

    def test_format_table_missing_column(self):
        with pytest.raises(BenchError):
            format_table([{"a": 1}], columns=["z"])

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="X")

    def test_save_load_rows(self, tmp_path):
        rows = [{"x": 1.5, "name": "r"}]
        path = tmp_path / "out" / "rows.json"
        save_rows(rows, path, meta={"k": "v"})
        assert load_rows(path) == rows

    def test_load_rows_missing(self, tmp_path):
        with pytest.raises(BenchError):
            load_rows(tmp_path / "nope.json")
