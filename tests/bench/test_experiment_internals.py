"""Unit tests for experiment-module internals that carry logic."""

import numpy as np
import pytest

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bench.experiments._shared import (
    corpus_arch_pairs,
    scaled_graph_features,
)
from repro.bench.experiments.table4_step_by_step import build_approaches
from repro.bench.runner import BenchConfig
from repro.bench.workloads import WorkloadSpec
from repro.tuning.training import _plateau_center


class TestPlateauCenter:
    def test_single_minimum(self):
        cands = np.array([[1.0, 1.0], [10.0, 10.0], [100.0, 100.0]])
        secs = np.array([5.0, 1.0, 5.0])
        m, n = _plateau_center(cands, secs)
        assert m == pytest.approx(10.0)
        assert n == pytest.approx(10.0)

    def test_plateau_centroid(self):
        cands = np.array(
            [[1.0, 1.0], [4.0, 16.0], [16.0, 4.0], [1000.0, 1.0]]
        )
        secs = np.array([9.0, 1.0, 1.0, 9.0])
        m, n = _plateau_center(cands, secs)
        # Log-space centroid of the two winners.
        assert m == pytest.approx(8.0)
        assert n == pytest.approx(8.0)

    def test_tolerance_widens_region(self):
        cands = np.array([[1.0, 1.0], [100.0, 100.0]])
        secs = np.array([1.0, 1.005])
        m, _ = _plateau_center(cands, secs, rel_tol=0.02)
        assert 1.0 < m < 100.0  # both inside the 2% band

    def test_center_achieves_optimum_on_real_profile(self, medium_profile):
        from repro.arch.costmodel import CostModel
        from repro.tuning.search import candidate_mn_grid, evaluate_single

        model = CostModel(CPU_SANDY_BRIDGE)
        cands = candidate_mn_grid(500, seed=3)
        secs = evaluate_single(medium_profile, model, cands)
        m, n = _plateau_center(cands, secs)
        achieved = float(
            evaluate_single(medium_profile, model, np.array([[m, n]]))[0]
        )
        assert achieved <= float(secs.min()) * 1.05


class TestBuildApproaches:
    @pytest.fixture(scope="class")
    def setup(self, medium_profile):
        from repro.arch.calibration import scale_profile

        machine = SimulatedMachine(
            {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X}
        )
        profile = scale_profile(medium_profile, 2**10)
        return machine, profile, build_approaches(machine, profile)

    def test_eight_approaches(self, setup):
        _, _, plans = setup
        assert set(plans) == {
            "GPUTD",
            "GPUBU",
            "GPUCB",
            "CPUTD",
            "CPUBU",
            "CPUCB",
            "CPUTD+GPUBU",
            "CPUTD+GPUCB",
        }

    def test_handoff_is_optimal(self, setup):
        """No other handoff level beats the one build_approaches picks."""
        machine, profile, plans = setup
        from repro.arch.machine import PlanStep
        from repro.bfs.result import Direction

        best = machine.run(profile, plans["CPUTD+GPUCB"]).total_seconds
        gpu_cb = plans["GPUCB"]
        depth = len(profile)
        for h in range(depth + 1):
            plan = [
                PlanStep("cpu", Direction.TOP_DOWN) if i < h else gpu_cb[i]
                for i in range(depth)
            ]
            alt = machine.run(profile, plan).total_seconds
            # Allow the transfer charge: build_approaches optimizes the
            # kernel-time sum; the single handoff transfer is tiny.
            assert best <= alt + 2 * machine.transfer.handoff_seconds(
                profile.num_vertices, 10**6
            )

    def test_cross_never_loses_to_gpucb_by_more_than_transfer(self, setup):
        machine, profile, plans = setup
        cross = machine.run(profile, plans["CPUTD+GPUCB"]).total_seconds
        gpucb = machine.run(profile, plans["GPUCB"]).total_seconds
        slack = machine.transfer.handoff_seconds(profile.num_vertices, 10**6)
        assert cross <= gpucb + slack

    def test_combination_plans_match_per_level_min(self, setup):
        machine, profile, plans = setup
        mats = machine.time_matrices(profile)
        from repro.bfs.result import Direction

        for dev, name in (("gpu", "GPUCB"), ("cpu", "CPUCB")):
            t = mats[dev]
            for i, step in enumerate(plans[name]):
                want = (
                    Direction.TOP_DOWN
                    if t[i, 0] <= t[i, 1]
                    else Direction.BOTTOM_UP
                )
                assert step.direction == want


class TestSharedHelpers:
    def test_scaled_graph_features(self):
        config = BenchConfig(base_scale=10, seeds=(0,))
        spec = WorkloadSpec(scale=10, edgefactor=8, seed=0)
        base = scaled_graph_features(config, spec, 10)
        scaled = scaled_graph_features(config, spec, 13)
        assert scaled[0] == pytest.approx(base[0] * 8)
        assert scaled[1] == pytest.approx(base[1] * 8)
        assert np.array_equal(scaled[2:], base[2:])  # A-D unchanged

    def test_corpus_arch_pairs_structure(self):
        pairs = corpus_arch_pairs(synthetic=3, seed=1)
        names = [(a.name, b.name) for a, b in pairs]
        assert ("cpu-snb", "gpu-k20x") in names
        assert sum(a == b for a, b in names) == len(pairs) - 1
        assert len(pairs) == 4 + 3
