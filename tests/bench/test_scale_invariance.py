"""Fidelity check of the paper-scale substitution.

``scale_profile`` replaces generating a graph ``2**k`` times larger.
These tests verify the substitution against the real thing: profile the
same R-MAT family at two scales and check the scaled-up small profile
predicts the measured larger profile's structure (depth, peak location,
counter magnitudes within a factor).
"""

import numpy as np
import pytest

from repro.arch.calibration import scale_profile
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def two_scales():
    profiles = {}
    for scale in (11, 14):
        g = rmat(scale, 16, seed=31)
        src = int(pick_sources(g, 1, seed=4)[0])
        profiles[scale], _ = profile_bfs(g, src)
    return profiles


class TestScaleInvariance:
    def test_depth_stable(self, two_scales):
        assert abs(len(two_scales[11]) - len(two_scales[14])) <= 2

    def test_peak_position_stable(self, two_scales):
        assert abs(
            two_scales[11].peak_level() - two_scales[14].peak_level()
        ) <= 1

    def test_scaled_counters_within_factor(self, two_scales):
        """Middle-level counters of the scaled-up SCALE-11 profile must
        be within ~4x of the measured SCALE-14 profile."""
        small, big = two_scales[11], two_scales[14]
        predicted = scale_profile(small, 2 ** 3)
        depth = min(len(predicted), len(big))
        mid_levels = range(1, depth - 1)
        for i in mid_levels:
            a = predicted[i].bu_edges_checked
            b = big[i].bu_edges_checked
            if min(a, b) > 1000:  # only meaningful for substantial levels
                assert 0.2 < a / b < 5.0, (i, a, b)

    def test_unvisited_mass_matches(self, two_scales):
        small, big = two_scales[11], two_scales[14]
        predicted = scale_profile(small, 2 ** 3)
        a = predicted[0].unvisited_edges
        b = big[0].unvisited_edges
        assert 0.5 < a / b < 2.0

    def test_peak_share_of_edges_stable(self, two_scales):
        """The fraction of |E| concentrated at the peak level is the
        scale-free quantity the switching rule keys on."""
        shares = {}
        for scale, profile in two_scales.items():
            fe = profile.frontier_edges()
            shares[scale] = fe.max() / (2 * profile.num_edges)
        assert abs(shares[11] - shares[14]) < 0.3
