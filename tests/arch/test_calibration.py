"""Calibration tests: the model must reproduce Table IV's structure.

These are the load-bearing tests of the whole reproduction: if they
pass, every per-level "who wins" claim of the paper holds in the model,
and the combination speedups fall in the right ranges.
"""

import numpy as np
import pytest

from repro.arch.calibration import (
    TABLE_IV_SECONDS,
    TABLE_IV_SPEEDUPS,
    check_calibration,
    scale_profile,
)
from repro.bfs.trace import LevelProfile, LevelRecord
from repro.errors import CalibrationError


@pytest.fixture(scope="module")
def paper_scale(medium_profile):
    """Counters scaled from SCALE 13 to SCALE 23 (the Table IV graph)."""
    return scale_profile(medium_profile, 2**10)


class TestScaleProfile:
    def test_scales_counts(self, small_profile):
        big = scale_profile(small_profile, 4)
        assert big.num_vertices == small_profile.num_vertices * 4
        assert big.num_edges == small_profile.num_edges * 4
        for a, b in zip(small_profile, big):
            # Unvisited-side counters always scale; frontier-side only
            # in the proportional middle (edges > threshold).
            assert b.unvisited_edges == a.unvisited_edges * 4
            assert b.bu_edges_checked == a.bu_edges_checked * 4
            if a.frontier_edges > 256:
                assert b.frontier_edges == a.frontier_edges * 4
            else:
                assert b.frontier_edges == a.frontier_edges
            assert b.bu_edges_failed <= b.bu_edges_checked

    def test_head_and_tail_keep_absolute_size(self, medium_profile):
        big = scale_profile(medium_profile, 1024)
        assert big[0].frontier_edges == medium_profile[0].frontier_edges
        last = len(big) - 1
        if medium_profile[last].frontier_edges <= 256:
            assert (
                big[last].frontier_edges
                == medium_profile[last].frontier_edges
            )

    def test_depth_preserved(self, small_profile):
        assert len(scale_profile(small_profile, 16)) == len(small_profile)

    def test_identity(self, small_profile):
        same = scale_profile(small_profile, 1)
        assert same.frontier_edges().tolist() == (
            small_profile.frontier_edges().tolist()
        )

    def test_invalid_factor(self, small_profile):
        with pytest.raises(CalibrationError):
            scale_profile(small_profile, 0)

    def test_fractional_factor(self, small_profile):
        half = scale_profile(small_profile, 0.5)
        assert half.num_vertices == round(small_profile.num_vertices * 0.5)


class TestTableIVData:
    def test_all_approaches_present(self):
        assert len(TABLE_IV_SECONDS) == 8
        assert len(TABLE_IV_SPEEDUPS) == 8

    def test_paper_totals_consistent(self):
        """The transcribed per-level times must reproduce the paper's own
        speedup row (sanity of our transcription)."""
        totals = {k: sum(v) for k, v in TABLE_IV_SECONDS.items()}
        base = totals["GPUTD"]
        for name, speedup in TABLE_IV_SPEEDUPS.items():
            assert base / totals[name] == pytest.approx(speedup, rel=0.05)


class TestStructuralClaims:
    def test_report_holds(self, paper_scale):
        report = check_calibration(paper_scale)
        assert report.structural_claims_hold(), report

    def test_level1_gpu_bottomup_catastrophic(self, paper_scale):
        report = check_calibration(paper_scale)
        # Paper: 0.4389 / 0.0537 = 8.2x; accept a broad band.
        assert 3.0 < report.level1_gpubu_over_cpubu < 25.0

    def test_mid_level_orderings(self, paper_scale):
        report = check_calibration(paper_scale)
        assert 1.2 < report.mid_cputd_speedup_over_gputd < 8.0
        assert 1.2 < report.mid_gpubu_speedup_over_cpubu < 10.0

    def test_combination_speedups_in_band(self, paper_scale):
        report = check_calibration(paper_scale)
        # Paper: 16.5 GPUCB, 36.1 cross over GPUTD.  Accept the order of
        # magnitude; the exact factor is workload-dependent.
        assert 4.0 < report.gpucb_speedup_over_gputd < 80.0
        assert 10.0 < report.cross_speedup_over_gputd < 200.0

    def test_cross_beats_both_single_device(self, paper_scale):
        report = check_calibration(paper_scale)
        assert report.cross_speedup_over_gpucb > 1.0
        assert report.cross_speedup_over_cpucb > 1.0

    def test_shallow_profile_rejected(self):
        shallow = LevelProfile(
            source=0,
            num_vertices=10,
            num_edges=10,
            records=tuple(
                LevelRecord(
                    level=i,
                    frontier_vertices=1,
                    frontier_edges=1,
                    unvisited_vertices=1,
                    unvisited_edges=1,
                    bu_edges_checked=1,
                    claimed=1,
                )
                for i in range(2)
            ),
        )
        with pytest.raises(CalibrationError):
            check_calibration(shallow)

    def test_holds_across_seeds(self):
        """The structure must not be an artifact of one graph."""
        from repro.bfs.profiler import pick_sources, profile_bfs
        from repro.graph.generators import rmat

        for seed in (1, 2):
            g = rmat(12, 16, seed=seed)
            src = int(pick_sources(g, 1, seed=seed)[0])
            profile, _ = profile_bfs(g, src)
            big = scale_profile(profile, 2**11)
            report = check_calibration(big)
            assert report.structural_claims_hold(), (seed, report)
