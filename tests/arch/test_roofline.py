"""Unit tests for the roofline (RCMA/RCMB) analysis."""

import pytest

from repro.arch.roofline import analyze, rcma_spmv, rcmb
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.errors import ArchError


class TestRCMA:
    def test_tends_to_half(self):
        assert rcma_spmv(1 << 22) == pytest.approx(0.5, abs=1e-5)

    def test_small_n(self):
        # n=1: 1 flop over 8 bytes.
        assert rcma_spmv(1) == pytest.approx(1 / 8)

    def test_element_size(self):
        assert rcma_spmv(1 << 20, element_bytes=8) == pytest.approx(
            0.25, abs=1e-4
        )


class TestRCMB:
    def test_sp_dp_dispatch(self):
        assert rcmb(CPU_SANDY_BRIDGE, precision="sp") == pytest.approx(
            7.52, abs=0.05
        )
        assert rcmb(CPU_SANDY_BRIDGE, precision="dp") == pytest.approx(
            3.76, abs=0.05
        )

    def test_unknown_precision(self):
        with pytest.raises(ArchError):
            rcmb(CPU_SANDY_BRIDGE, precision="half")


class TestAnalyze:
    def test_memory_bound_everywhere(self):
        """Section III-B: RCMA << RCMB on all three platforms."""
        for spec in (CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC):
            point = analyze(spec)
            assert point.memory_bound
            assert point.bandwidth_gap > 10

    def test_gpu_has_largest_gap(self):
        gaps = {
            s.name: analyze(s).bandwidth_gap
            for s in (CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC)
        }
        assert gaps["gpu-k20x"] == max(gaps.values())

    def test_as_dict(self):
        d = analyze(CPU_SANDY_BRIDGE).as_dict()
        assert d["arch"] == "cpu-snb"
        assert d["memory_bound"] is True
