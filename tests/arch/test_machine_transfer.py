"""Unit tests for the transfer model and simulated machine."""

import numpy as np
import pytest

from repro.arch.machine import PlanStep, SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.arch.transfer import PCIE_GEN2, TransferModel
from repro.bfs.result import Direction
from repro.errors import ArchError, PlanError

TD, BU = Direction.TOP_DOWN, Direction.BOTTOM_UP


class TestTransferModel:
    def test_seconds_formula(self):
        t = TransferModel(latency_s=1e-5, bandwidth_gbs=8.0)
        assert t.seconds(0) == pytest.approx(1e-5)
        assert t.seconds(8_000_000_000) == pytest.approx(1.0 + 1e-5)

    def test_handoff_payload(self):
        t = PCIE_GEN2
        base = t.handoff_seconds(8_000_000, 0)
        with_frontier = t.handoff_seconds(8_000_000, 1_000_000)
        assert with_frontier > base

    def test_validation(self):
        with pytest.raises(ArchError):
            TransferModel(latency_s=-1, bandwidth_gbs=1)
        with pytest.raises(ArchError):
            TransferModel(latency_s=0, bandwidth_gbs=0)
        with pytest.raises(ArchError):
            PCIE_GEN2.seconds(-1)
        with pytest.raises(ArchError):
            PCIE_GEN2.handoff_seconds(-1, 0)


class TestPlanStep:
    def test_direction_validated(self):
        with pytest.raises(PlanError):
            PlanStep("cpu", "diagonal")


@pytest.fixture(scope="module")
def machine():
    return SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})


class TestSimulatedMachine:
    def test_needs_devices(self):
        with pytest.raises(PlanError):
            SimulatedMachine({})

    def test_constant_plan(self, machine, small_profile):
        plan = machine.constant_plan(
            small_profile, "cpu", [TD] * len(small_profile)
        )
        assert all(s.device == "cpu" for s in plan)

    def test_constant_plan_validation(self, machine, small_profile):
        with pytest.raises(PlanError):
            machine.constant_plan(small_profile, "tpu", [TD])
        with pytest.raises(PlanError):
            machine.constant_plan(small_profile, "cpu", [TD])

    def test_run_totals(self, machine, small_profile):
        plan = [PlanStep("cpu", TD)] * len(small_profile)
        rep = machine.run(small_profile, plan)
        assert rep.total_seconds == pytest.approx(
            float(rep.level_seconds.sum() + rep.transfer_seconds.sum())
        )
        assert rep.transfer_seconds.sum() == 0  # single device

    def test_run_charges_handoffs(self, machine, small_profile):
        depth = len(small_profile)
        plan = [
            PlanStep("cpu" if i % 2 == 0 else "gpu", TD) for i in range(depth)
        ]
        rep = machine.run(small_profile, plan)
        assert (rep.transfer_seconds[1:] > 0).all()
        assert rep.transfer_seconds[0] == 0  # no transfer into level 1

    def test_run_length_checked(self, machine, small_profile):
        with pytest.raises(PlanError):
            machine.run(small_profile, [PlanStep("cpu", TD)])

    def test_unknown_device_in_plan(self, machine, small_profile):
        plan = [PlanStep("tpu", TD)] * len(small_profile)
        with pytest.raises(PlanError):
            machine.run(small_profile, plan)

    def test_teps_and_gteps(self, machine, small_profile):
        plan = [PlanStep("gpu", BU)] * len(small_profile)
        rep = machine.run(small_profile, plan)
        assert rep.teps > 0
        assert rep.gteps == pytest.approx(rep.teps / 1e9)

    def test_traversed_edges_override(self, machine, small_profile):
        plan = [PlanStep("cpu", TD)] * len(small_profile)
        rep = machine.run(small_profile, plan, traversed_edges=123)
        assert rep.traversed_edges == 123

    def test_per_level_rows(self, machine, small_profile):
        plan = [PlanStep("cpu", TD)] * len(small_profile)
        rows = machine.run(small_profile, plan).per_level()
        assert rows[0]["level"] == 1  # paper numbering
        assert {"device", "direction", "seconds"} <= set(rows[0])

    def test_time_matrices(self, machine, small_profile):
        mats = machine.time_matrices(small_profile)
        assert set(mats) == {"cpu", "gpu"}
        assert mats["cpu"].shape == (len(small_profile), 2)
