"""Unit tests for the per-level cost model."""

import pytest

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.bfs.result import Direction
from repro.bfs.trace import LevelRecord
from repro.errors import ArchError


def rec(fv=100, fe=1000, uv=1000, ue=10000, chk=5000, claimed=50, fail=2000):
    return LevelRecord(
        level=0,
        frontier_vertices=fv,
        frontier_edges=fe,
        unvisited_vertices=uv,
        unvisited_edges=ue,
        bu_edges_checked=chk,
        claimed=claimed,
        bu_edges_failed=fail,
    )


@pytest.fixture(scope="module")
def cpu():
    return CostModel(CPU_SANDY_BRIDGE)


@pytest.fixture(scope="module")
def gpu():
    return CostModel(GPU_K20X)


class TestTopDown:
    def test_overhead_floor(self, cpu):
        empty = rec(fv=1, fe=0)
        cost = cpu.top_down_seconds(empty, 1 << 20)
        assert cost.seconds >= CPU_SANDY_BRIDGE.td_overhead_s

    def test_monotone_in_edges(self, cpu):
        a = cpu.top_down_seconds(rec(fe=10_000_000), 1 << 23).seconds
        b = cpu.top_down_seconds(rec(fe=20_000_000), 1 << 23).seconds
        assert b > a

    def test_efficiency_ramp(self, gpu):
        """Sub-saturation frontiers pay the occupancy penalty."""
        small = gpu.top_down_seconds(rec(fe=100_000), 1 << 23)
        assert small.efficiency < 1.0
        big = gpu.top_down_seconds(rec(fe=50_000_000), 1 << 23)
        assert big.efficiency == 1.0

    def test_efficiency_floor(self, gpu):
        tiny = gpu.top_down_seconds(rec(fe=10), 1 << 23)
        assert tiny.efficiency == GPU_K20X.td_efficiency_floor

    def test_miss_rate_grows_with_graph(self, cpu):
        small_graph = cpu.top_down_seconds(rec(fe=10_000_000), 1 << 18).seconds
        big_graph = cpu.top_down_seconds(rec(fe=10_000_000), 1 << 24).seconds
        assert big_graph > small_graph

    def test_parent_miss_rate_bounds(self, cpu):
        assert cpu.parent_miss_rate(0) == 0.0
        assert 0.0 <= cpu.parent_miss_rate(1 << 30) <= 1.0
        assert cpu.parent_miss_rate(1000) == 0.0  # fits in L3


class TestBottomUp:
    def test_overhead_floor(self, gpu):
        empty = rec(fv=1, fe=0, uv=0, ue=0, chk=0, fail=0, claimed=0)
        assert (
            gpu.bottom_up_seconds(empty, 0).seconds
            >= GPU_K20X.bu_overhead_s
        )

    def test_sweep_scales_with_vertices(self, cpu):
        a = cpu.bottom_up_seconds(rec(), 1 << 20).seconds
        b = cpu.bottom_up_seconds(rec(), 1 << 24).seconds
        assert b > a

    def test_fail_cheaper_than_win_on_cpu(self, cpu):
        """CPU streams failed scans; successful probes are latency-bound."""
        win = rec(chk=10_000_000, fail=0)
        fail = rec(chk=10_000_000, fail=10_000_000)
        assert (
            cpu.bottom_up_seconds(fail, 1 << 20).seconds
            < cpu.bottom_up_seconds(win, 1 << 20).seconds
        )

    def test_fail_expensive_on_gpu(self, gpu):
        """GPU pays divergence on failed full-list scans."""
        win = rec(chk=10_000_000, fail=0)
        fail = rec(chk=10_000_000, fail=10_000_000)
        assert (
            gpu.bottom_up_seconds(fail, 1 << 20).seconds
            > gpu.bottom_up_seconds(win, 1 << 20).seconds
        )


class TestDispatch:
    def test_level_seconds_directions(self, cpu):
        r = rec()
        td = cpu.level_seconds(r, 1 << 20, Direction.TOP_DOWN)
        bu = cpu.level_seconds(r, 1 << 20, Direction.BOTTOM_UP)
        assert td == cpu.top_down_seconds(r, 1 << 20).seconds
        assert bu == cpu.bottom_up_seconds(r, 1 << 20).seconds

    def test_unknown_direction(self, cpu):
        with pytest.raises(ArchError):
            cpu.level_seconds(rec(), 1 << 20, "sideways")

    def test_time_matrix_shape(self, cpu, small_profile):
        m = cpu.time_matrix(small_profile)
        assert m.shape == (len(small_profile), 2)
        assert (m > 0).all()

    def test_traversal_seconds(self, cpu, small_profile):
        dirs = [Direction.TOP_DOWN] * len(small_profile)
        total = cpu.traversal_seconds(small_profile, dirs)
        m = cpu.time_matrix(small_profile)
        assert total == pytest.approx(float(m[:, 0].sum()))

    def test_traversal_plan_length_checked(self, cpu, small_profile):
        with pytest.raises(ArchError):
            cpu.traversal_seconds(small_profile, [Direction.TOP_DOWN])


class TestCrossArchOrderings:
    """The Table IV who-wins structure on a synthetic mid-level record."""

    def test_mic_slowest_mid_level(self, medium_profile):
        mid = medium_profile[medium_profile.peak_level()]
        n = medium_profile.num_vertices
        cpu_t = CostModel(CPU_SANDY_BRIDGE).bottom_up_seconds(mid, n).seconds
        mic_t = CostModel(MIC_KNC).bottom_up_seconds(mid, n).seconds
        assert mic_t > cpu_t
