"""Unit tests for architecture specifications."""

import dataclasses

import numpy as np
import pytest

from repro.arch.specs import (
    CPU_SANDY_BRIDGE,
    GPU_K20X,
    MIC_KNC,
    PRESETS,
    ArchSpec,
    arch_features,
    sample_arch,
)
from repro.errors import ArchError


class TestTableII:
    """Catalog fields must match the paper's Table II verbatim."""

    def test_cpu(self):
        s = CPU_SANDY_BRIDGE
        assert (s.freq_ghz, s.cores) == (2.00, 8)
        assert (s.peak_sp_gflops, s.peak_dp_gflops) == (256.0, 128.0)
        assert (s.l1_kb, s.l2_kb, s.l3_mb) == (32.0, 256.0, 20.0)
        assert (s.theoretical_bw_gbs, s.measured_bw_gbs) == (51.2, 34.0)

    def test_gpu(self):
        s = GPU_K20X
        assert (s.freq_ghz, s.cores) == (0.73, 2496)
        assert (s.peak_sp_gflops, s.peak_dp_gflops) == (3950.0, 1320.0)
        assert (s.l1_kb, s.l2_kb, s.l3_mb) == (64.0, 1536.0, 0.0)
        assert (s.theoretical_bw_gbs, s.measured_bw_gbs) == (250.0, 188.0)

    def test_mic(self):
        s = MIC_KNC
        assert (s.freq_ghz, s.cores) == (1.09, 61)
        assert (s.peak_sp_gflops, s.peak_dp_gflops) == (2020.0, 1010.0)
        assert (s.theoretical_bw_gbs, s.measured_bw_gbs) == (352.0, 159.0)

    def test_rcmb_matches_table(self):
        assert CPU_SANDY_BRIDGE.rcmb_sp == pytest.approx(7.52, abs=0.05)
        assert MIC_KNC.rcmb_sp == pytest.approx(12.70, abs=0.05)
        assert GPU_K20X.rcmb_sp == pytest.approx(21.01, abs=0.05)
        assert CPU_SANDY_BRIDGE.rcmb_dp == pytest.approx(3.76, abs=0.05)
        assert MIC_KNC.rcmb_dp == pytest.approx(6.35, abs=0.05)
        assert GPU_K20X.rcmb_dp == pytest.approx(7.02, abs=0.05)

    def test_presets_dict(self):
        assert set(PRESETS) == {"cpu", "gpu", "mic", "tensor-tile"}

    def test_paper_presets_use_scan_kernel(self):
        for key in ("cpu", "gpu", "mic"):
            assert PRESETS[key].bu_kernel == "scan"
        assert PRESETS["tensor-tile"].bu_kernel == "tile"


class TestValidation:
    def test_positive_fields(self):
        with pytest.raises(ArchError):
            dataclasses.replace(CPU_SANDY_BRIDGE, freq_ghz=0)

    def test_ooo_range(self):
        with pytest.raises(ArchError):
            dataclasses.replace(CPU_SANDY_BRIDGE, ooo_factor=1.5)

    def test_efficiency_floor_range(self):
        with pytest.raises(ArchError):
            dataclasses.replace(CPU_SANDY_BRIDGE, td_efficiency_floor=0)

    def test_measured_below_theoretical(self):
        with pytest.raises(ArchError):
            dataclasses.replace(CPU_SANDY_BRIDGE, measured_bw_gbs=100.0)


class TestDerived:
    def test_compute_rate_mic_penalty(self):
        """Section V-C: the serial MIC core is ~20x weaker than the CPU
        core; per-core compute rates must reflect that."""
        cpu_core = CPU_SANDY_BRIDGE.compute_rate_gops / CPU_SANDY_BRIDGE.cores
        mic_core = MIC_KNC.compute_rate_gops / MIC_KNC.cores
        assert 10 < cpu_core / mic_core < 45

    def test_cache_capacity(self):
        assert CPU_SANDY_BRIDGE.cache_capacity_bytes() == 20e6
        assert GPU_K20X.cache_capacity_bytes() == pytest.approx(1536e3)
        assert MIC_KNC.cache_capacity_bytes() < 10e6

    def test_with_cores_scaling(self):
        half = CPU_SANDY_BRIDGE.with_cores(4)
        assert half.cores == 4
        assert half.peak_sp_gflops == pytest.approx(128.0)
        assert half.measured_bw_gbs < CPU_SANDY_BRIDGE.measured_bw_gbs
        assert half.td_overhead_s < CPU_SANDY_BRIDGE.td_overhead_s

    def test_with_cores_reference_identity(self):
        same = CPU_SANDY_BRIDGE.with_cores(8)
        assert same.measured_bw_gbs == pytest.approx(34.0)
        assert same.td_overhead_s == pytest.approx(
            CPU_SANDY_BRIDGE.td_overhead_s
        )

    def test_with_cores_bandwidth_saturates(self):
        many = CPU_SANDY_BRIDGE.with_cores(64)
        assert many.measured_bw_gbs <= CPU_SANDY_BRIDGE.theoretical_bw_gbs

    def test_with_cores_invalid(self):
        with pytest.raises(ArchError):
            CPU_SANDY_BRIDGE.with_cores(0)


class TestFeatures:
    def test_layout_matches_fig7(self):
        f = arch_features(GPU_K20X)
        assert f.tolist() == [3950.0, 64.0, 188.0]


class TestSampleArch:
    def test_valid_and_deterministic(self):
        a = sample_arch(np.random.default_rng(0))
        b = sample_arch(np.random.default_rng(0))
        assert a.measured_bw_gbs == b.measured_bw_gbs
        assert a.cores >= 1

    def test_within_preset_envelope(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            s = sample_arch(rng, jitter=0.1)
            assert 0.3 < s.freq_ghz < 5.0
            assert 10 < s.measured_bw_gbs < 400
            assert s.measured_bw_gbs <= s.theoretical_bw_gbs

    def test_negative_jitter_rejected(self):
        with pytest.raises(ArchError):
            sample_arch(np.random.default_rng(0), jitter=-1)

    def test_custom_name(self):
        s = sample_arch(np.random.default_rng(0), name="mybox")
        assert s.name == "mybox"
