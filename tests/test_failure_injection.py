"""Failure-injection tests: corrupted inputs, adversarial components,
and boundary abuse must fail loudly with library errors — never wrong
answers or raw stack-trace surprises from deep inside NumPy.
"""

import json

import numpy as np
import pytest

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile
from repro.errors import (
    BFSError,
    GraphFormatError,
    ModelError,
    ReproError,
    TuningError,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import star


class TestCorruptedProfiles:
    def test_truncated_json(self, tmp_path, small_profile):
        path = tmp_path / "p.json"
        small_profile.save(path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(json.JSONDecodeError):
            LevelProfile.load(path)

    def test_negative_counter_rejected(self, small_profile):
        data = json.loads(small_profile.to_json())
        data["records"][0]["frontier_edges"] = -5
        with pytest.raises(BFSError):
            LevelProfile.from_json(json.dumps(data))

    def test_non_contiguous_levels_rejected(self, small_profile):
        data = json.loads(small_profile.to_json())
        data["records"][1]["level"] = 7
        with pytest.raises(BFSError):
            LevelProfile.from_json(json.dumps(data))

    def test_inconsistent_bu_split_rejected(self, small_profile):
        data = json.loads(small_profile.to_json())
        rec = data["records"][0]
        rec["bu_edges_failed"] = rec["bu_edges_checked"] + 1
        with pytest.raises(BFSError):
            LevelProfile.from_json(json.dumps(data))


class TestAdversarialPolicies:
    def test_policy_raising_mid_traversal(self, rmat_small, rmat_source):
        class Bomb:
            def direction(self, state):
                if state.depth >= 2:
                    raise RuntimeError("boom")
                return Direction.TOP_DOWN

        with pytest.raises(RuntimeError, match="boom"):
            bfs_hybrid(rmat_small, rmat_source, policy=Bomb())

    def test_policy_returning_garbage_type(self, rmat_small, rmat_source):
        class Wrong:
            def direction(self, state):
                return 42

        with pytest.raises(BFSError):
            bfs_hybrid(rmat_small, rmat_source, policy=Wrong())

    def test_oscillating_policy_still_correct(self, rmat_small, rmat_source):
        """A pathological policy that flips direction every level must
        still produce a valid BFS (slower, never wrong)."""

        class Flip:
            def direction(self, state):
                return (
                    Direction.TOP_DOWN
                    if state.depth % 2 == 0
                    else Direction.BOTTOM_UP
                )

        res = bfs_hybrid(rmat_small, rmat_source, policy=Flip())
        res.validate(rmat_small)


class TestCorruptedModels:
    def test_nan_features_rejected_by_training(self):
        from repro.ml.dataset import TrainingSet

        ts = TrainingSet()
        bad = np.full(12, np.nan)
        ts.add(bad, 10.0, 10.0)
        X, _, _ = ts.as_arrays()
        # The scaler propagates NaN; the predictor must surface it
        # rather than silently producing a numeric answer.
        from repro.tuning.predictor import SwitchingPointPredictor

        pred = SwitchingPointPredictor()
        with pytest.raises((ModelError, ValueError, ReproError)):
            pred.fit(ts)
            m, n = pred.predict_sample(bad)
            if np.isnan(m) or np.isnan(n):
                raise ModelError("NaN prediction")

    def test_svr_rejects_nan_via_no_convergence_or_nan_output(self, rng):
        from repro.ml.svr import SVR

        X = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        X[3, 1] = np.inf
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = SVR(c=1.0, max_iter=100)
            try:
                model.fit(X, y)
                pred = model.predict(X[:1])
                assert not np.isfinite(pred).all() or True
            except (ValueError, FloatingPointError):
                pass  # loud failure is acceptable


class TestBoundaryAbuse:
    def test_csr_offsets_overflowish(self):
        # offsets referencing beyond targets must be rejected.
        with pytest.raises(ReproError):
            CSRGraph(
                offsets=np.array([0, 2], dtype=np.int64),
                targets=np.array([0], dtype=np.int32),
            )

    def test_search_with_inf_candidates(self, small_profile):
        from repro.tuning.search import evaluate_single

        model = CostModel(CPU_SANDY_BRIDGE)
        cands = np.array([[np.inf, 1.0], [1.0, np.inf]])
        # inf thresholds mean |E|/M = 0 -> always bottom-up; must price
        # finitely, not crash.
        secs = evaluate_single(small_profile, model, cands)
        assert np.isfinite(secs).all()

    def test_zero_vertex_traversal(self):
        g = CSRGraph.empty(0)
        with pytest.raises(BFSError):
            bfs_hybrid(g, 0, m=1, n=1)

    def test_single_vertex_graph(self):
        g = CSRGraph.empty(1)
        res = bfs_hybrid(g, 0, m=1, n=1)
        assert res.num_reached == 1
        res.validate(g)

    def test_star_leaf_bottom_up_chunk1(self):
        """Degenerate chunking plus bottom-up on a hub topology."""
        from repro.bfs.bottomup import bfs_bottom_up

        g = star(6)
        res = bfs_bottom_up(g, 3, chunk_entries=1)
        res.validate(g)

    def test_fixed_plan_on_wrong_graph(self, rmat_small, rmat_source):
        from repro.tuning.policy import FixedPlanPolicy

        # Plan measured on the star graph: too short for the R-MAT.
        with pytest.raises(TuningError):
            bfs_hybrid(
                rmat_small,
                rmat_source,
                policy=FixedPlanPolicy([Direction.TOP_DOWN]),
            )

    def test_edgelist_with_huge_ids_rejected(self, tmp_path):
        from repro.graph.io import load_edgelist

        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        with pytest.raises(ReproError):
            load_edgelist(path, num_vertices=3)

    def test_matrix_market_binary_garbage(self, tmp_path):
        from repro.graph.io import load_matrix_market

        path = tmp_path / "g.mtx"
        path.write_bytes(b"\x00\x01\x02nonsense")
        with pytest.raises((GraphFormatError, UnicodeDecodeError)):
            load_matrix_market(path)
