"""Unit tests for the Fig. 7 dataset layout and model persistence."""

import numpy as np
import pytest

from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.errors import ModelError
from repro.ml.dataset import (
    FEATURE_NAMES,
    TrainingSet,
    make_sample,
    sample_from_features,
)
from repro.ml.model_io import load_scaler, load_svr, save_scaler, save_svr
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR


class TestSampleLayout:
    def test_twelve_features(self, rmat_small):
        s = make_sample(rmat_small, CPU_SANDY_BRIDGE, GPU_K20X)
        assert s.shape == (12,)
        assert len(FEATURE_NAMES) == 12

    def test_blocks(self, rmat_small):
        s = make_sample(rmat_small, CPU_SANDY_BRIDGE, GPU_K20X)
        # graph block
        assert s[0] == pytest.approx(rmat_small.num_vertices / 1e6)
        assert tuple(s[2:6]) == (0.57, 0.19, 0.19, 0.05)
        # td arch block = CPU, bu arch block = GPU
        assert s[6] == 256.0 and s[9] == 3950.0
        assert s[8] == 34.0 and s[11] == 188.0

    def test_same_arch_duplicated(self, rmat_small):
        s = make_sample(rmat_small, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)
        assert np.array_equal(s[6:9], s[9:12])

    def test_sample_from_features_checked(self):
        with pytest.raises(ModelError):
            sample_from_features(
                np.zeros(5), CPU_SANDY_BRIDGE, GPU_K20X
            )


class TestTrainingSet:
    def test_add_and_arrays(self, rmat_small):
        ts = TrainingSet()
        s = make_sample(rmat_small, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)
        ts.add(s, 64.0, 256.0, tag="t")
        X, lm, ln = ts.as_arrays()
        assert X.shape == (1, 12)
        assert lm[0] == pytest.approx(6.0)
        assert ln[0] == pytest.approx(8.0)
        assert len(ts) == 1

    def test_validation(self, rmat_small):
        ts = TrainingSet()
        with pytest.raises(ModelError):
            ts.add(np.zeros(5), 1, 1)
        s = make_sample(rmat_small, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)
        with pytest.raises(ModelError):
            ts.add(s, 0, 1)
        with pytest.raises(ModelError):
            ts.as_arrays()

    def test_save_load(self, tmp_path, rmat_small):
        ts = TrainingSet()
        s = make_sample(rmat_small, CPU_SANDY_BRIDGE, GPU_K20X)
        ts.add(s, 10.0, 20.0, tag="a")
        ts.add(s * 2, 30.0, 40.0, tag="b")
        path = tmp_path / "corpus.npz"
        ts.save(path)
        back = TrainingSet.load(path)
        assert len(back) == 2
        assert back.tags == ["a", "b"]
        assert back.best_m[0] == pytest.approx(10.0)
        X0, _, _ = ts.as_arrays()
        X1, _, _ = back.as_arrays()
        assert np.allclose(X0, X1)


class TestModelIO:
    def test_svr_roundtrip(self, tmp_path, rng):
        X = rng.uniform(-1, 1, size=(40, 2))
        y = np.sin(X[:, 0])
        m = SVR(c=10, epsilon=0.05, gamma=1.5).fit(X, y)
        path = tmp_path / "svr.npz"
        save_svr(m, path)
        back = load_svr(path)
        assert np.allclose(back.predict(X), m.predict(X))
        assert back.n_support_ == m.n_support_

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            save_svr(SVR(), tmp_path / "x.npz")

    def test_callable_kernel_rejected(self, tmp_path, rng):
        from repro.ml.kernels import linear_kernel

        X = rng.normal(size=(10, 1))
        m = SVR(kernel=linear_kernel, c=1).fit(X, X[:, 0])
        with pytest.raises(ModelError):
            save_svr(m, tmp_path / "x.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"junk")
        with pytest.raises(ModelError):
            load_svr(path)
        with pytest.raises(ModelError):
            load_scaler(path)

    def test_scaler_roundtrip(self, tmp_path, rng):
        X = rng.normal(3, 2, size=(20, 4))
        sc = StandardScaler().fit(X)
        path = tmp_path / "scaler.npz"
        save_scaler(sc, path)
        back = load_scaler(path)
        assert np.allclose(back.transform(X), sc.transform(X))

    def test_unfitted_scaler_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            save_scaler(StandardScaler(), tmp_path / "x.npz")
