"""Unit tests for StandardScaler and the SMO-trained SVR."""

import numpy as np
import pytest

from repro.errors import ConvergenceWarning, ModelError, NotFittedError
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR


class TestScaler:
    def test_fit_transform(self, rng):
        X = rng.normal(3.0, 2.0, size=(200, 3))
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Xs.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature(self):
        X = np.ones((5, 2))
        X[:, 1] = [1, 2, 3, 4, 5]
        Xs = StandardScaler().fit_transform(X)
        assert np.isfinite(Xs).all()
        assert np.allclose(Xs[:, 0], 0.0)

    def test_inverse(self, rng):
        X = rng.normal(size=(20, 2))
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((1, 2)))
        with pytest.raises(NotFittedError):
            StandardScaler().inverse_transform(np.ones((1, 2)))

    def test_dim_mismatch(self, rng):
        sc = StandardScaler().fit(rng.normal(size=(5, 3)))
        with pytest.raises(ModelError):
            sc.transform(np.ones((2, 4)))

    def test_empty(self):
        with pytest.raises(ModelError):
            StandardScaler().fit(np.zeros((0, 2)))


class TestSVRValidation:
    def test_constructor(self):
        with pytest.raises(ModelError):
            SVR(c=0)
        with pytest.raises(ModelError):
            SVR(epsilon=-0.1)
        with pytest.raises(ModelError):
            SVR(tol=0)
        with pytest.raises(ModelError):
            SVR(max_iter=0)

    def test_sample_target_mismatch(self, rng):
        with pytest.raises(ModelError):
            SVR().fit(rng.normal(size=(5, 2)), np.zeros(4))

    def test_too_few_samples(self):
        with pytest.raises(ModelError):
            SVR().fit(np.ones((1, 1)), np.ones(1))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            SVR().predict(np.ones((1, 1)))
        with pytest.raises(NotFittedError):
            _ = SVR().n_support_

    def test_unknown_kernel(self, rng):
        with pytest.raises(ModelError):
            SVR(kernel="sigmoid").fit(
                rng.normal(size=(5, 2)), rng.normal(size=5)
            )


class TestSVRFits:
    def test_linear_function_rbf(self, rng):
        X = rng.uniform(-1, 1, size=(80, 2))
        y = 2.0 * X[:, 0] - X[:, 1]
        m = SVR(c=50, epsilon=0.01, gamma=0.5).fit(X, y)
        Xt = rng.uniform(-1, 1, size=(30, 2))
        pred = m.predict(Xt)
        assert np.abs(pred - (2 * Xt[:, 0] - Xt[:, 1])).max() < 0.25

    def test_nonlinear_function(self, rng):
        X = rng.uniform(-2, 2, size=(150, 1))
        y = np.sin(2 * X[:, 0])
        m = SVR(c=50, epsilon=0.02, gamma=2.0).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_linear_kernel(self, rng):
        X = rng.uniform(-1, 1, size=(60, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        m = SVR(c=5, epsilon=0.01, kernel="linear").fit(X, y)
        assert m.score(X, y) > 0.9

    def test_epsilon_tube_sparsifies(self, rng):
        X = rng.uniform(-1, 1, size=(100, 1))
        y = X[:, 0]
        tight = SVR(c=10, epsilon=0.001, gamma=1.0).fit(X, y)
        loose = SVR(c=10, epsilon=0.5, gamma=1.0).fit(X, y)
        assert loose.n_support_ < tight.n_support_

    def test_constant_target(self):
        X = np.arange(10, dtype=float)[:, None]
        y = np.full(10, 3.0)
        m = SVR(c=10, epsilon=0.01).fit(X, y)
        assert np.allclose(m.predict(X), 3.0, atol=0.05)

    def test_deterministic(self, rng):
        X = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        a = SVR(c=5, epsilon=0.1, gamma=1.0).fit(X, y).predict(X)
        b = SVR(c=5, epsilon=0.1, gamma=1.0).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_max_iter_warns(self, rng):
        X = rng.normal(size=(60, 3))
        y = rng.normal(size=60)
        with pytest.warns(ConvergenceWarning):
            SVR(c=100, epsilon=0.0, max_iter=5).fit(X, y)

    def test_gamma_scale(self, rng):
        X = rng.normal(0, 10.0, size=(50, 2))
        y = X[:, 0] / 10.0
        m = SVR(c=10, epsilon=0.05, gamma="scale").fit(X, y)
        assert m.score(X, y) > 0.8

    def test_callable_kernel(self, rng):
        from repro.ml.kernels import rbf_kernel

        X = rng.uniform(-1, 1, size=(50, 1))
        y = X[:, 0] ** 2
        m = SVR(
            c=20, epsilon=0.02, kernel=lambda A, B: rbf_kernel(A, B, 1.0)
        ).fit(X, y)
        assert m.score(X, y) > 0.9

    def test_score_constant_y(self):
        X = np.arange(4, dtype=float)[:, None]
        m = SVR(c=1, epsilon=0.1).fit(X, np.array([1.0, 2, 3, 4]))
        assert m.score(X, np.full(4, 2.5)) <= 1.0

    def test_dual_feasibility(self, rng):
        """Solution must satisfy the box constraint and Σ s α = 0 (via
        the β representation: |β| <= C)."""
        X = rng.uniform(-1, 1, size=(60, 2))
        y = np.sin(X[:, 0])
        c = 7.0
        m = SVR(c=c, epsilon=0.05, gamma=1.0).fit(X, y)
        assert np.all(np.abs(m.beta_) <= c + 1e-8)
