"""Unit tests for regression baselines and cross-validation."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.crossval import cross_val_score, grid_search, kfold_indices
from repro.ml.ridge import KernelRidge, LinearRegression
from repro.ml.svr import SVR


class TestLinearRegression:
    def test_exact_on_linear(self, rng):
        X = rng.normal(size=(50, 3))
        y = X @ np.array([1.0, 2.0, -1.0]) + 4.0
        m = LinearRegression().fit(X, y)
        assert np.allclose(m.coef_, [1, 2, -1], atol=1e-8)
        assert m.intercept_ == pytest.approx(4.0)
        assert m.score(X, y) == pytest.approx(1.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.ones((1, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            LinearRegression().fit(np.ones((3, 1)), np.ones(4))


class TestKernelRidge:
    def test_interpolates_with_small_alpha(self, rng):
        X = rng.uniform(-1, 1, size=(30, 1))
        y = np.sin(3 * X[:, 0])
        m = KernelRidge(alpha=1e-8, gamma=5.0).fit(X, y)
        assert m.score(X, y) > 0.999

    def test_alpha_regularizes(self, rng):
        X = rng.uniform(-1, 1, size=(30, 1))
        y = np.sin(3 * X[:, 0]) + rng.normal(0, 0.2, 30)
        tight = KernelRidge(alpha=1e-8, gamma=5.0).fit(X, y)
        smooth = KernelRidge(alpha=10.0, gamma=5.0).fit(X, y)
        assert smooth.score(X, y) < tight.score(X, y)

    def test_validation(self):
        with pytest.raises(ModelError):
            KernelRidge(alpha=0)
        with pytest.raises(NotFittedError):
            KernelRidge().predict(np.ones((1, 1)))
        with pytest.raises(ModelError):
            KernelRidge().fit(np.ones((3, 1)), np.ones(2))

    def test_linear_kernel_option(self, rng):
        X = rng.normal(size=(20, 2))
        y = X[:, 0]
        m = KernelRidge(alpha=1e-6, kernel="linear").fit(X, y)
        assert m.score(X, y) > 0.99


class TestKFold:
    def test_partition(self):
        folds = list(kfold_indices(20, 4, seed=0))
        assert len(folds) == 4
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in folds:
            assert set(train.tolist()).isdisjoint(test.tolist())
            assert len(train) + len(test) == 20

    def test_validation(self):
        with pytest.raises(ModelError):
            list(kfold_indices(10, 1))
        with pytest.raises(ModelError):
            list(kfold_indices(3, 5))

    def test_deterministic(self):
        a = [t.tolist() for _, t in kfold_indices(10, 3, seed=5)]
        b = [t.tolist() for _, t in kfold_indices(10, 3, seed=5)]
        assert a == b


class TestCrossVal:
    def test_rmse_scores(self, rng):
        X = rng.normal(size=(40, 2))
        y = X[:, 0]
        scores = cross_val_score(
            LinearRegression, X, y, k=4, metric="rmse"
        )
        assert scores.shape == (4,)
        assert (scores < 1e-6).all()

    def test_metrics(self, rng):
        X = rng.normal(size=(30, 2))
        y = X[:, 0] + rng.normal(0, 0.1, 30)
        for metric in ("rmse", "mae", "r2"):
            scores = cross_val_score(
                LinearRegression, X, y, k=3, metric=metric
            )
            assert np.isfinite(scores).all()

    def test_unknown_metric(self, rng):
        X = rng.normal(size=(30, 2))
        with pytest.raises(ModelError):
            cross_val_score(
                LinearRegression, X, X[:, 0], k=3, metric="mape"
            )


class TestGridSearch:
    def test_picks_better_config(self, rng):
        X = rng.uniform(-1, 1, size=(60, 1))
        y = np.sin(3 * X[:, 0])
        res = grid_search(
            lambda gamma: KernelRidge(alpha=1e-6, gamma=gamma),
            {"gamma": [0.001, 5.0]},
            X,
            y,
            k=3,
        )
        assert res.best_params == {"gamma": 5.0}
        assert len(res.all_scores) == 2

    def test_r2_maximized(self, rng):
        X = rng.uniform(-1, 1, size=(60, 1))
        y = np.sin(3 * X[:, 0])
        res = grid_search(
            lambda gamma: KernelRidge(alpha=1e-6, gamma=gamma),
            {"gamma": [0.001, 5.0]},
            X,
            y,
            k=3,
            metric="r2",
        )
        assert res.best_params == {"gamma": 5.0}

    def test_empty_grid(self, rng):
        with pytest.raises(ModelError):
            grid_search(SVR, {}, np.ones((4, 1)), np.ones(4))
