"""Unit tests for kernel functions."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.kernels import linear_kernel, make_kernel, poly_kernel, rbf_kernel


@pytest.fixture()
def data(rng):
    return rng.normal(size=(10, 4)), rng.normal(size=(7, 4))


class TestLinear:
    def test_values(self):
        X = np.array([[1.0, 2.0]])
        Z = np.array([[3.0, 4.0]])
        assert linear_kernel(X, Z)[0, 0] == pytest.approx(11.0)

    def test_shape(self, data):
        X, Z = data
        assert linear_kernel(X, Z).shape == (10, 7)

    def test_dim_mismatch(self):
        with pytest.raises(ModelError):
            linear_kernel(np.ones((2, 3)), np.ones((2, 4)))


class TestRBF:
    def test_diagonal_ones(self, data):
        X, _ = data
        K = rbf_kernel(X, X, gamma=0.7)
        assert np.allclose(np.diag(K), 1.0)

    def test_symmetric_psd(self, data):
        X, _ = data
        K = rbf_kernel(X, X, gamma=0.5)
        assert np.allclose(K, K.T)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-10

    def test_range(self, data):
        X, Z = data
        K = rbf_kernel(X, Z, gamma=2.0)
        assert (K > 0).all() and (K <= 1).all()

    def test_known_value(self):
        X = np.array([[0.0]])
        Z = np.array([[1.0]])
        assert rbf_kernel(X, Z, gamma=1.0)[0, 0] == pytest.approx(np.exp(-1))

    def test_gamma_validated(self):
        with pytest.raises(ModelError):
            rbf_kernel(np.ones((1, 1)), np.ones((1, 1)), gamma=0)


class TestPoly:
    def test_known_value(self):
        X = np.array([[1.0, 1.0]])
        assert poly_kernel(X, X, degree=2, coef0=1.0)[0, 0] == pytest.approx(9.0)

    def test_degree_validated(self):
        with pytest.raises(ModelError):
            poly_kernel(np.ones((1, 1)), np.ones((1, 1)), degree=0)


class TestMakeKernel:
    def test_dispatch(self, data):
        X, Z = data
        assert np.allclose(make_kernel("linear")(X, Z), linear_kernel(X, Z))
        assert np.allclose(
            make_kernel("rbf", gamma=0.3)(X, Z), rbf_kernel(X, Z, gamma=0.3)
        )
        assert np.allclose(
            make_kernel("poly", degree=2)(X, Z),
            poly_kernel(X, Z, degree=2),
        )

    def test_unknown(self):
        with pytest.raises(ModelError):
            make_kernel("sigmoid")

    def test_stray_params_rejected(self):
        with pytest.raises(ModelError):
            make_kernel("linear", gamma=1.0)
        with pytest.raises(ModelError):
            make_kernel("rbf", degree=2)
