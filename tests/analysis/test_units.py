"""Dimensional analysis: Quantity algebra and the cost-model audit."""

import pytest

import repro.arch.costmodel as costmodel_mod
from repro.analysis import (
    BYTES,
    DIMENSIONLESS,
    EDGES,
    OPS,
    SECONDS,
    VERTICES,
    Quantity,
    check_cost_model,
)
from repro.errors import UnitsError


class TestQuantityAlgebra:
    def test_multiplication_combines_units(self):
        q = Quantity(3.0, EDGES) * Quantity(4.0, BYTES / EDGES)
        assert isinstance(q, Quantity)
        assert q.unit == BYTES
        assert q.value == 12.0

    def test_division_cancels_to_float(self):
        r = Quantity(10.0, EDGES) / Quantity(5.0, EDGES)
        assert isinstance(r, float)
        assert r == 2.0

    def test_scalar_scaling_preserves_unit(self):
        q = Quantity(2.0, SECONDS) * 1e-9
        assert q.unit == SECONDS
        q2 = 3 * Quantity(2.0, SECONDS)
        assert q2.unit == SECONDS and q2.value == 6.0

    def test_addition_same_unit(self):
        q = Quantity(1.0, SECONDS) + Quantity(2.0, SECONDS)
        assert q.unit == SECONDS and q.value == 3.0

    def test_addition_mismatched_units_raises(self):
        with pytest.raises(UnitsError):
            Quantity(1.0, SECONDS) + Quantity(1.0, EDGES)

    def test_adding_plain_number_to_dimensioned_raises(self):
        with pytest.raises(UnitsError):
            Quantity(1.0, SECONDS) + 2.5

    def test_adding_literal_zero_allowed(self):
        q = Quantity(1.5, BYTES) + 0
        assert q.unit == BYTES and q.value == 1.5

    def test_comparison_same_unit(self):
        assert Quantity(1.0, SECONDS) < Quantity(2.0, SECONDS)
        assert max(Quantity(1.0, OPS), Quantity(3.0, OPS)).value == 3.0

    def test_comparison_mismatched_units_raises(self):
        with pytest.raises(UnitsError):
            Quantity(1.0, SECONDS) < Quantity(2.0, VERTICES)

    def test_sign_check_against_zero_allowed(self):
        assert Quantity(-1.0, SECONDS) < 0
        assert Quantity(1.0, EDGES) > 0
        assert not Quantity(1.0, EDGES) <= 0

    def test_nonzero_scalar_comparison_raises(self):
        with pytest.raises(UnitsError):
            Quantity(1.0, SECONDS) < 2.0

    def test_unit_str(self):
        assert str(BYTES / SECONDS) == "byte/second"
        assert str(DIMENSIONLESS) == "1"


class TestCostModelAudit:
    def test_cost_model_is_dimensionally_consistent(self):
        assert check_cost_model() == []

    def test_audit_restores_module_constants(self):
        before = costmodel_mod.BYTES_EDGE_ID
        check_cost_model()
        assert costmodel_mod.BYTES_EDGE_ID is before
        assert isinstance(costmodel_mod.BYTES_EDGE_ID, int)

    def test_audit_catches_mistagged_constant(self, monkeypatch):
        """If a per-edge ops constant were really a time, adding it to
        edge-derived terms must surface as a failure."""
        from repro.analysis import units as units_mod

        broken = dict(units_mod.CONSTANT_UNITS)
        broken["OPS_PER_EDGE_TD"] = SECONDS  # wrong dimension on purpose
        monkeypatch.setattr(units_mod, "CONSTANT_UNITS", broken)
        failures = check_cost_model()
        assert failures
        assert any("top-down" in f for f in failures)

    def test_audit_catches_dropped_bandwidth_divisor(self, monkeypatch):
        """Simulate the classic refactor bug: a memory term left in
        bytes (divisor dropped) is reported, not silently summed."""
        from repro.analysis import units as units_mod

        class _BadSpec(units_mod._UnitSpec):
            def __init__(self):
                super().__init__()
                # bandwidth accidentally dimensionless: mem term stays bytes
                self.measured_bw_gbs = Quantity(150.0, DIMENSIONLESS)

        monkeypatch.setattr(units_mod, "_UnitSpec", _BadSpec)
        failures = check_cost_model()
        assert failures
