"""Each lint rule must fire on a minimal bad example and stay silent on
a minimal good one; suppression and reporters are covered too."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)
from repro.errors import LintError


def codes(violations):
    return [v.rule for v in violations]


class TestRegistry:
    def test_all_rules_registered(self):
        assert set(RULES) == {
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
            "RPR008",
            "RPR009",
            "RPR010",
            "RPR011",
            "RPR012",
            "RPR013",
            "RPR014",
            "RPR015",
            "RPR016",
            "RPR017",
            "RPR018",
            "RPR019",
            "RPR020",
            "RPR021",
            "RPR022",
            "RPR023",
            "RPR024",
            "RPR025",
            "RPR026",
        }

    def test_deep_rules_flagged(self):
        from repro.analysis import deep_rule_codes

        assert deep_rule_codes() == [
            "RPR010", "RPR011", "RPR012", "RPR013", "RPR014",
            "RPR015", "RPR016", "RPR017", "RPR018", "RPR019",
            "RPR021",
            "RPR022", "RPR023", "RPR024", "RPR025", "RPR026",
        ]
        for code in deep_rule_codes():
            assert RULES[code].deep
        # the whole-program subset is flagged as such
        for code in ("RPR015", "RPR016", "RPR017", "RPR018", "RPR019"):
            assert RULES[code].whole_program
        for code in ("RPR010", "RPR011", "RPR012", "RPR013", "RPR014",
                     "RPR021"):
            assert not RULES[code].whole_program

    def test_deep_rules_excluded_by_default(self):
        # a seeded RPR010 bug must stay silent without deep=True
        body = (
            "import numpy as np\n"
            "def gather_step(workspace, frontier):\n"
            "    idx = workspace.iota(frontier.size)\n"
            "    return idx.astype(np.int32)\n"
        )
        assert "RPR010" not in codes(lint_source(body, hot_path=True))
        deep = lint_source(body, hot_path=True, deep=True)
        assert "RPR010" in codes(deep)

    def test_rules_have_summaries(self):
        for rl in RULES.values():
            assert rl.summary and rl.code.startswith("RPR")

    def test_unknown_select_rejected(self):
        with pytest.raises(LintError):
            lint_source("x = 1\n", select=["RPR999"])

    def test_unparsable_source_rejected(self):
        with pytest.raises(LintError):
            lint_source("def broken(:\n", select=["RPR004"])


class TestRPR001HotPathLoops:
    def fires(self, body):
        return lint_source(body, select=["RPR001"], hot_path=True)

    def test_fires_on_frontier_loop(self):
        v = self.fires("for v in frontier:\n    visit(v)\n")
        assert codes(v) == ["RPR001"]

    def test_fires_on_range_num_vertices(self):
        v = self.fires("for v in range(graph.num_vertices):\n    pass\n")
        assert codes(v) == ["RPR001"]

    def test_fires_on_neighbors_call(self):
        v = self.fires("for w in graph.neighbors(u):\n    pass\n")
        assert codes(v) == ["RPR001"]

    def test_fires_in_comprehension(self):
        v = self.fires("out = [f(v) for v in frontier]\n")
        assert codes(v) == ["RPR001"]

    def test_silent_on_chunk_loop(self):
        assert self.fires("for lo, hi in bounds:\n    pass\n") == []

    def test_silent_on_plain_range(self):
        assert self.fires("for i in range(10):\n    pass\n") == []

    def test_silent_outside_hot_path(self):
        v = lint_source(
            "for v in frontier:\n    pass\n",
            select=["RPR001"],
            hot_path=False,
        )
        assert v == []

    def test_hot_path_inferred_from_path(self):
        v = lint_source(
            "for v in frontier:\n    pass\n",
            path="src/repro/bfs/custom.py",
            select=["RPR001"],
        )
        assert codes(v) == ["RPR001"]


class TestRPR002OffsetNarrowing:
    def test_fires_on_astype(self):
        v = lint_source(
            "x = graph.offsets.astype(np.int32)\n", select=["RPR002"]
        )
        assert codes(v) == ["RPR002"]

    def test_fires_on_derived_expression(self):
        v = lint_source(
            "x = (offsets[1:] - offsets[:-1]).astype(np.int32)\n",
            select=["RPR002"],
        )
        assert codes(v) == ["RPR002"]

    def test_fires_on_asarray_dtype(self):
        v = lint_source(
            "x = np.asarray(g.offsets, dtype=np.int32)\n", select=["RPR002"]
        )
        assert codes(v) == ["RPR002"]

    def test_silent_on_int64(self):
        v = lint_source(
            "x = graph.offsets.astype(np.int64)\n", select=["RPR002"]
        )
        assert v == []

    def test_silent_on_targets_narrowing(self):
        # targets hold vertex ids, which do fit int32 by design.
        v = lint_source("x = key.astype(np.int32)\n", select=["RPR002"])
        assert v == []


class TestRPR003WallClock:
    def test_fires_on_time_time(self):
        v = lint_source("t0 = time.time()\n", select=["RPR003"])
        assert codes(v) == ["RPR003"]

    def test_fires_on_from_import(self):
        v = lint_source("from time import time\n", select=["RPR003"])
        assert codes(v) == ["RPR003"]

    def test_silent_on_perf_counter(self):
        v = lint_source("t0 = time.perf_counter()\n", select=["RPR003"])
        assert v == []


class TestRPR008AdHocPerfCounter:
    def test_fires_on_call(self):
        v = lint_source("t0 = time.perf_counter()\n", select=["RPR008"])
        assert codes(v) == ["RPR008"]

    def test_fires_on_from_import(self):
        v = lint_source("from time import perf_counter\n", select=["RPR008"])
        assert codes(v) == ["RPR008"]

    def test_exempt_inside_obs_package(self):
        v = lint_source(
            "t0 = time.perf_counter()\n",
            path="src/repro/obs/clock.py",
            select=["RPR008"],
        )
        assert v == []

    def test_silent_on_obs_clock(self):
        v = lint_source(
            "from repro.obs.clock import now\nt0 = now()\n",
            select=["RPR008"],
        )
        assert v == []

    def test_suppressed_by_noqa(self):
        v = lint_source(
            "t0 = time.perf_counter()  # repro: noqa[RPR008]\n",
            select=["RPR008"],
        )
        assert v == []


class TestRPR009MetricNames:
    def test_fires_on_undeclared_name(self):
        v = lint_source('tracer.count("not.declared", 1)\n', select=["RPR009"])
        assert codes(v) == ["RPR009"]
        assert "METRIC_CATALOG" in v[0].message

    def test_fires_on_malformed_name(self):
        v = lint_source(
            'registry.histogram("My.BadName")\n', select=["RPR009"]
        )
        assert codes(v) == ["RPR009"]
        assert "lowercase" in v[0].message

    def test_silent_on_catalog_name(self):
        v = lint_source('tracer.count("bfs.levels", 1)\n', select=["RPR009"])
        assert v == []

    def test_ignores_non_string_first_arg(self):
        # DriftMonitor.observe(report) / Histogram.observe(value) must
        # not be mistaken for metric registrations.
        v = lint_source(
            "monitor.observe(report)\nhist.observe(0.5)\n",
            select=["RPR009"],
        )
        assert v == []

    def test_suppressed_by_noqa(self):
        v = lint_source(
            'tracer.count("ad.hoc", 1)  # repro: noqa[RPR009]\n',
            select=["RPR009"],
        )
        assert v == []


class TestRPR004BareAssert:
    def test_fires_on_assert(self):
        v = lint_source("assert x > 0\n", select=["RPR004"])
        assert codes(v) == ["RPR004"]

    def test_silent_on_raise(self):
        v = lint_source(
            "if x <= 0:\n    raise GraphError('bad')\n", select=["RPR004"]
        )
        assert v == []


class TestRPR005CSRMutation:
    def test_fires_on_element_write(self):
        v = lint_source("g.offsets[0] = 5\n", select=["RPR005"])
        assert codes(v) == ["RPR005"]

    def test_fires_on_rebinding(self):
        v = lint_source("g.targets = other\n", select=["RPR005"])
        assert codes(v) == ["RPR005"]

    def test_fires_on_inplace_method(self):
        v = lint_source("g.offsets.fill(0)\n", select=["RPR005"])
        assert codes(v) == ["RPR005"]

    def test_fires_on_augassign(self):
        v = lint_source("g.offsets[1:] += 1\n", select=["RPR005"])
        assert codes(v) == ["RPR005"]

    def test_silent_on_reads(self):
        v = lint_source(
            "x = g.offsets[0]\ny = g.targets[a:b]\n", select=["RPR005"]
        )
        assert v == []

    def test_exempt_in_construction_module(self):
        v = lint_source(
            "self.offsets[0] = 0\n",
            path="src/repro/graph/csr.py",
            select=["RPR005"],
        )
        assert v == []


class TestRPR006MissingAll:
    def test_fires_on_public_module(self):
        v = lint_source('"""Doc."""\nx = 1\n', path="mod.py", select=["RPR006"])
        assert codes(v) == ["RPR006"]

    def test_silent_with_all(self):
        v = lint_source(
            '"""Doc."""\n__all__ = ["x"]\nx = 1\n',
            path="mod.py",
            select=["RPR006"],
        )
        assert v == []

    def test_private_module_exempt(self):
        v = lint_source("x = 1\n", path="_private.py", select=["RPR006"])
        assert v == []

    def test_dunder_module_exempt(self):
        v = lint_source("x = 1\n", path="__main__.py", select=["RPR006"])
        assert v == []


class TestRPR007KernelAllocations:
    KERNEL_PATH = "src/repro/bfs/custom.py"

    def in_kernel(self, body, path=KERNEL_PATH):
        src = f"def my_step(graph, frontier, parent, level, depth):\n"
        src += "".join(f"    {line}\n" for line in body.splitlines())
        return lint_source(src, path=path, select=["RPR007"])

    def test_fires_on_arange(self):
        v = self.in_kernel("idx = np.arange(frontier.size)")
        assert codes(v) == ["RPR007"]

    def test_fires_on_graph_sized_alloc(self):
        v = self.in_kernel("slot = np.empty(parent.size, dtype=np.int64)")
        assert codes(v) == ["RPR007"]

    def test_fires_on_parent_rescan(self):
        v = self.in_kernel("unv = np.nonzero(parent < 0)[0]")
        assert codes(v) == ["RPR007"]

    def test_fires_on_flatnonzero(self):
        v = self.in_kernel("unv = np.flatnonzero(parent < 0)")
        assert codes(v) == ["RPR007"]

    def test_empty_sentinel_allowed(self):
        assert self.in_kernel("out = np.zeros(0, dtype=np.int64)") == []

    def test_silent_outside_repro_bfs(self):
        v = self.in_kernel(
            "idx = np.arange(frontier.size)", path="src/repro/apps/x.py"
        )
        assert v == []

    def test_silent_in_non_kernel_function(self):
        v = lint_source(
            "def helper(parent):\n    return np.arange(parent.size)\n",
            path=self.KERNEL_PATH,
            select=["RPR007"],
        )
        assert v == []

    def test_scan_suffix_is_kernel(self):
        v = lint_source(
            "def _row_scan(rows):\n    return np.arange(rows.size)\n",
            path=self.KERNEL_PATH,
            select=["RPR007"],
        )
        assert codes(v) == ["RPR007"]

    def test_noqa_suppresses(self):
        v = self.in_kernel(
            "idx = np.arange(k)  # repro: noqa[RPR007]"
        )
        assert v == []


class TestRPR020AdhocInstrumentation:
    def test_fires_on_tracemalloc_import(self):
        v = lint_source("import tracemalloc\n", select=["RPR020"])
        assert codes(v) == ["RPR020"]

    def test_fires_on_tracemalloc_from_import(self):
        v = lint_source(
            "from tracemalloc import take_snapshot\n", select=["RPR020"]
        )
        assert codes(v) == ["RPR020"]

    def test_fires_on_tracemalloc_call(self):
        v = lint_source(
            "import tracemalloc\ntracemalloc.start()\n", select=["RPR020"]
        )
        assert codes(v) == ["RPR020", "RPR020"]

    def test_fires_on_settrace_and_setprofile(self):
        v = lint_source(
            "import sys\nsys.settrace(None)\nsys.setprofile(None)\n",
            select=["RPR020"],
        )
        assert codes(v) == ["RPR020", "RPR020"]

    def test_fires_on_sys_from_import(self):
        v = lint_source(
            "from sys import setprofile\n", select=["RPR020"]
        )
        assert codes(v) == ["RPR020"]

    def test_silent_inside_obs(self):
        v = lint_source(
            "import tracemalloc\nimport sys\nsys.setprofile(None)\n",
            path="src/repro/obs/profile/alloc.py",
            select=["RPR020"],
        )
        assert v == []

    def test_silent_on_other_sys_calls(self):
        v = lint_source(
            "import sys\nsys.exit(0)\nfrom sys import argv\n",
            select=["RPR020"],
        )
        assert v == []

    def test_noqa_suppresses(self):
        v = lint_source(
            "import tracemalloc  # repro: noqa[RPR020]\n",
            select=["RPR020"],
        )
        assert v == []


class TestRPR021UntracedProcessTarget:
    FIXTURES = Path(__file__).parent / "fixtures"

    def _lint_fixture(self, name):
        text = (self.FIXTURES / name).read_text(encoding="utf-8")
        return lint_source(
            text,
            path=f"src/repro/hetero/{name}",
            select=["RPR021"],
            deep=True,
        )

    def test_bad_fixture_is_caught(self):
        v = self._lint_fixture("rpr021_bad.py")
        assert codes(v) == ["RPR021"]
        # anchored at the Process(...) spawn site, naming the target
        # and the one-hop emission it resolved
        assert "'worker'" in v[0].message
        assert "spawn_traced" in v[0].message

    def test_clean_fixture_is_silent(self):
        assert self._lint_fixture("rpr021_clean.py") == []

    def test_direct_emission_in_target(self):
        body = (
            "from multiprocessing import Process\n"
            "def child():\n"
            "    tracer.count('bfs.levels', 1)\n"
            "def go():\n"
            "    Process(target=child).start()\n"
        )
        v = lint_source(body, select=["RPR021"], deep=True)
        assert codes(v) == ["RPR021"]
        assert v[0].line == 5

    def test_target_without_emission_is_silent(self):
        body = (
            "from multiprocessing import Process\n"
            "def child():\n"
            "    return 1 + 1\n"
            "def go():\n"
            "    Process(target=child).start()\n"
        )
        assert lint_source(body, select=["RPR021"], deep=True) == []

    def test_installer_on_call_path_exempts(self):
        body = (
            "from multiprocessing import Process\n"
            "from repro.obs.live import ChannelExporter\n"
            "def child(conn):\n"
            "    exporter = ChannelExporter(conn, tracer, source='c')\n"
            "    tracer.count('bfs.levels', 1)\n"
            "def go(conn):\n"
            "    Process(target=child, args=(conn,)).start()\n"
        )
        assert lint_source(body, select=["RPR021"], deep=True) == []

    def test_installer_at_spawn_site_exempts(self):
        body = (
            "from multiprocessing import Process\n"
            "def child():\n"
            "    tracer.count('bfs.levels', 1)\n"
            "def go(tracer):\n"
            "    payload = tracer.current_context().as_dict()\n"
            "    ctx = TraceContext.from_dict(payload)\n"
            "    Process(target=child).start()\n"
        )
        assert lint_source(body, select=["RPR021"], deep=True) == []

    def test_external_target_out_of_scope(self):
        body = (
            "from multiprocessing import Process\n"
            "from elsewhere import child\n"
            "def go():\n"
            "    Process(target=child).start()\n"
        )
        assert lint_source(body, select=["RPR021"], deep=True) == []

    def test_excluded_without_deep(self):
        body = (
            "from multiprocessing import Process\n"
            "def child():\n"
            "    tracer.count('bfs.levels', 1)\n"
            "def go():\n"
            "    Process(target=child).start()\n"
        )
        assert "RPR021" not in codes(lint_source(body))

    def test_silent_inside_obs(self):
        body = (
            "from multiprocessing import Process\n"
            "def child():\n"
            "    tracer.count('live.frames', 1)\n"
            "def go():\n"
            "    Process(target=child).start()\n"
        )
        v = lint_source(
            body,
            path="src/repro/obs/live/channel.py",
            select=["RPR021"],
            deep=True,
        )
        assert v == []

    def test_noqa_suppresses(self):
        body = (
            "from multiprocessing import Process\n"
            "def child():\n"
            "    tracer.count('bfs.levels', 1)\n"
            "def go():\n"
            "    Process(target=child).start()  # repro: noqa[RPR021]\n"
        )
        assert lint_source(body, select=["RPR021"], deep=True) == []


class TestSuppression:
    def test_targeted_noqa(self):
        v = lint_source(
            "t0 = time.time()  # repro: noqa[RPR003]\n", select=["RPR003"]
        )
        assert v == []

    def test_blanket_noqa(self):
        v = lint_source("assert x  # repro: noqa\n", select=["RPR004"])
        assert v == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        v = lint_source(
            "t0 = time.time()  # repro: noqa[RPR004]\n", select=["RPR003"]
        )
        assert codes(v) == ["RPR003"]

    def test_noqa_multiple_codes(self):
        v = lint_source(
            "assert time.time()  # repro: noqa[RPR003, RPR004]\n",
            select=["RPR003", "RPR004"],
        )
        assert v == []

    def test_noqa_only_applies_to_its_line(self):
        src = "t0 = time.time()  # repro: noqa[RPR003]\nt1 = time.time()\n"
        v = lint_source(src, select=["RPR003"])
        assert [x.line for x in v] == [2]


class TestReportersAndPaths:
    def test_text_format(self):
        v = lint_source("assert x\n", path="m.py", select=["RPR004"])
        assert format_text(v) == f"m.py:1:0 RPR004 {v[0].message}"

    def test_json_format_round_trips(self):
        v = lint_source("assert x\n", path="m.py", select=["RPR004"])
        data = json.loads(format_json(v))
        assert data[0]["rule"] == "RPR004"
        assert data[0]["line"] == 1
        assert data[0]["path"] == "m.py"

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "good.py").write_text('__all__ = []\n')
        (pkg / "bad.py").write_text('__all__ = []\nassert 1\n')
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "junk.py").write_text("assert 1\n")
        violations, checked = lint_paths([pkg])
        assert checked == 2
        assert codes(violations) == ["RPR004"]

    def test_lint_paths_missing_path(self, tmp_path):
        with pytest.raises(LintError):
            lint_paths([tmp_path / "nope"])
