"""Golden fixtures for the whole-program rules (RPR015–RPR019).

Every bad fixture plants a *two-hop* violation: the defect is only
visible once effects have crossed at least two call edges (or, for
RPR017/RPR018, a module boundary), which the retired one-level
propagation engine provably cannot see — each rule gets a companion
test demonstrating exactly that blind spot.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.effects import (
    module_effects,
    propagate,
    propagate_one_level,
)

FIXTURES = Path(__file__).parent / "fixtures"

FILE_RULES = ("RPR015", "RPR016", "RPR019")
DIR_RULES = ("RPR017", "RPR018")


def _lint_file_fixture(name: str, rule: str):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(
        text, path=f"src/repro/bfs/{name}", select=[rule], deep=True
    )


def _lint_dir_fixture(name: str, rule: str):
    violations, checked = lint_paths(
        [FIXTURES / name], select=[rule], deep=True
    )
    assert checked == 2, f"{name}: expected a two-module fixture"
    return violations


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule", FILE_RULES)
    def test_bad_file_fixture_is_caught(self, rule):
        name = f"{rule.lower()}_bad.py"
        violations = _lint_file_fixture(name, rule)
        assert violations, f"{name}: seeded bug not detected"
        assert {v.rule for v in violations} == {rule}

    @pytest.mark.parametrize("rule", FILE_RULES)
    def test_clean_file_fixture_is_silent(self, rule):
        name = f"{rule.lower()}_clean.py"
        assert _lint_file_fixture(name, rule) == [], (
            f"{name}: false positive on the clean twin"
        )

    @pytest.mark.parametrize("rule", DIR_RULES)
    def test_bad_dir_fixture_is_caught(self, rule):
        name = f"{rule.lower()}_bad"
        violations = _lint_dir_fixture(name, rule)
        assert violations, f"{name}: seeded bug not detected"
        assert {v.rule for v in violations} == {rule}

    @pytest.mark.parametrize("rule", DIR_RULES)
    def test_clean_dir_fixture_is_silent(self, rule):
        name = f"{rule.lower()}_clean"
        assert _lint_dir_fixture(name, rule) == [], (
            f"{name}: false positive on the clean twin"
        )


class TestMessages:
    def test_rpr015_names_the_raising_call(self):
        violations = _lint_file_fixture("rpr015_bad.py", "RPR015")
        assert any("_drive" in v.message for v in violations)
        assert any("finally" in v.message for v in violations)

    def test_rpr016_names_the_public_boundary(self):
        violations = _lint_file_fixture("rpr016_bad.py", "RPR016")
        assert any("frontier_view" in v.message for v in violations)
        assert any("detach" in v.message for v in violations)

    def test_rpr017_reports_engine_side_call_site(self):
        violations = _lint_dir_fixture("rpr017_bad", "RPR017")
        v = violations[0]
        assert Path(v.path).name == "engine.py"
        assert "parent" in v.message and "helpers" in v.message

    def test_rpr018_anchors_on_the_public_function(self):
        violations = _lint_dir_fixture("rpr018_bad", "RPR018")
        v = violations[0]
        assert Path(v.path).name == "api.py"
        assert "hijack_merge" in v.message
        assert "merge_claims" in v.message

    def test_rpr019_names_the_cycle(self):
        violations = _lint_file_fixture("rpr019_bad.py", "RPR019")
        msg = violations[0].message
        assert "scan_vertex" in msg and "visit_vertex" in msg


class TestOneLevelBlindSpots:
    """Each bad fixture's defect is invisible to the one-level engine."""

    def _effects(self, name, engine):
        tree = ast.parse((FIXTURES / name).read_text(encoding="utf-8"))
        return engine(module_effects(tree))

    def test_rpr015_raise_is_two_hops_down(self):
        one = self._effects("rpr015_bad.py", propagate_one_level)
        assert one["_mid"].raises  # one hop: visible
        assert not one["_drive"].raises  # two hops: blind
        full = self._effects("rpr015_bad.py", propagate)
        assert full["_drive"].raises

    def test_rpr016_alias_needs_call_graph_resolution(self):
        """returns_ws only chains once `_mid` in `returns_calls` is
        resolved against the call graph — module-local propagation
        (the retired engine's world) never marks the public boundary."""
        one = self._effects("rpr016_bad.py", propagate_one_level)
        assert one["_grab"].returns_ws
        assert not one["frontier_view"].returns_ws
        from repro.analysis.callgraph import project_from_sources

        source = (FIXTURES / "rpr016_bad.py").read_text(encoding="utf-8")
        p = project_from_sources([("rpr016_bad.py", source)])
        assert p.summaries["rpr016_bad.frontier_view"].returns_ws

    def test_rpr017_write_is_in_another_module(self):
        """Module-local propagation of engine.py alone — even run to
        fixpoint — cannot see helpers.py's write at all."""
        tree = ast.parse(
            (FIXTURES / "rpr017_bad" / "engine.py").read_text(
                encoding="utf-8"
            )
        )
        local = propagate(module_effects(tree))
        assert all("parent" not in fx.writes for fx in local.values())

    def test_rpr018_needs_cross_module_reachability(self):
        """api.py alone has no callee bodies: nothing marks the call
        chain as ownership-gated."""
        tree = ast.parse(
            (FIXTURES / "rpr018_bad" / "api.py").read_text(encoding="utf-8")
        )
        local = propagate(module_effects(tree))
        assert "hijack_merge" in local  # sanity: the chain parses
        from repro.analysis.callgraph import _owned_lines

        source = (FIXTURES / "rpr018_bad" / "api.py").read_text(
            encoding="utf-8"
        )
        # No ownership *comment* in api.py (the docstring mention does
        # not count): the gate lives in merge.py, one module away.
        assert _owned_lines(source) == frozenset()
