"""Deep dataflow rules (RPR010-RPR014): golden fixtures, the dtype
lattice, suppression extents, and the shared single-pass node index.

Each seeded-bug fixture in ``tests/analysis/fixtures/`` must be caught
by exactly its rule, and the clean twin must stay silent under the same
rule — the abstract interpreter only fires on facts it proved, so a
clean fixture firing means a lattice regression, and a bad fixture
going silent means a detection regression.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis.dataflow import UNKNOWN, AbstractValue, promote
from repro.analysis.lint import (
    ModuleContext,
    NodeIndex,
    deep_rule_codes,
    lint_source,
)

FIXTURES = Path(__file__).parent / "fixtures"

DEEP_RULES = ("RPR010", "RPR011", "RPR012", "RPR013", "RPR014")


def _lint_fixture(name: str, rule: str):
    """Lint one fixture as if it lived on the BFS hot path, running
    only the rule under test (the fixtures are deliberately small
    enough to trip unrelated default rules like RPR007)."""
    text = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(
        text, path=f"src/repro/bfs/{name}", select=[rule], deep=True
    )


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule", DEEP_RULES)
    def test_bad_fixture_is_caught(self, rule):
        name = f"{rule.lower()}_bad.py"
        violations = _lint_fixture(name, rule)
        assert violations, f"{name}: seeded bug not detected"
        assert {v.rule for v in violations} == {rule}

    @pytest.mark.parametrize("rule", DEEP_RULES)
    def test_clean_fixture_is_silent(self, rule):
        name = f"{rule.lower()}_clean.py"
        assert _lint_fixture(name, rule) == [], (
            f"{name}: false positive on the clean twin"
        )

    def test_rpr010_catches_both_shapes(self):
        """The bad fixture seeds an astype narrowing, a dtype=
        construction narrowing and mixed uint64/int64 math — all three
        must fire."""
        violations = _lint_fixture("rpr010_bad.py", "RPR010")
        messages = " | ".join(v.message for v in violations)
        assert "astype" in messages
        assert "np.asarray" in messages or "dtype=" in messages
        assert "uint64" in messages

    def test_rpr011_names_the_result_line(self):
        violations = _lint_fixture("rpr011_bad.py", "RPR011")
        assert any("detach()" in v.message for v in violations)
        assert any("BFSResult" in v.message for v in violations)

    def test_rpr013_matches_dynamic_defect(self):
        """The static fixture encodes the same defect the runtime race
        sanitizer catches (tests/test_stress_and_concurrency.py): a
        pool worker writing the shared parent map."""
        violations = _lint_fixture("rpr013_bad.py", "RPR013")
        assert any(
            "parent" in v.message and "main thread" in v.message
            for v in violations
        )

    def test_rpr014_reports_the_callee(self):
        violations = _lint_fixture("rpr014_bad.py", "RPR014")
        assert any("_claim_rows" in v.message for v in violations)

    def test_deep_registry_is_exactly_the_fixture_set(self):
        """Module-local deep rules plus the whole-program tier
        (tests/analysis/test_program_rules.py covers the latter), the
        live-telemetry spawn rule (RPR021, fixtures covered in
        tests/analysis/test_lint_rules.py), and the typestate tier
        (RPR022..RPR026, tests/analysis/test_typestate.py)."""
        program_rules = ("RPR015", "RPR016", "RPR017", "RPR018", "RPR019")
        typestate_rules = (
            "RPR022", "RPR023", "RPR024", "RPR025", "RPR026",
        )
        assert deep_rule_codes() == sorted(
            DEEP_RULES + program_rules + ("RPR021",) + typestate_rules
        )


class TestPromotionLattice:
    """The dtype lattice mirrors NumPy's promotion rules."""

    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("int64", "int64", "int64"),
            ("int32", "int64", "int64"),
            ("uint32", "uint64", "uint64"),
            ("bool", "int32", "int32"),
            ("bool", "bool", "bool"),
            ("int32", "uint32", "int64"),
            ("int64", "uint64", "float64"),  # no common integer
            ("uint64", "int32", "float64"),
            ("float32", "float64", "float64"),
            ("float32", "int64", "float64"),
            ("float32", "int16", "float32"),
            ("int64", None, None),  # unknown poisons
            (None, None, None),
        ],
    )
    def test_promote(self, a, b, expected):
        assert promote(a, b) == expected
        assert promote(b, a) == expected  # commutative

    def test_promote_matches_numpy_on_the_hot_dtypes(self):
        np = pytest.importorskip("numpy")
        hot = ["bool", "int32", "int64", "uint32", "uint64", "float64"]
        for a in hot:
            for b in hot:
                expected = np.promote_types(a, b).name
                assert promote(a, b) == expected, (a, b)

    def test_unknown_value_singleton(self):
        assert UNKNOWN.dtype is None
        assert UNKNOWN.kind is None
        assert UNKNOWN.aliases == frozenset()
        assert AbstractValue() == UNKNOWN


class TestSuppressionExtent:
    """A noqa on any line of a multi-line simple statement suppresses
    the whole statement extent (the satellite fix: previously only the
    marker's own line was masked)."""

    SNIPPET = (
        "import numpy as np\n"
        "__all__ = ['f']\n"
        "def f(workspace, n):\n"
        "    idx = workspace.iota(n)\n"
        "    small = idx.astype(\n"
        "        np.int32\n"
        "    ){marker}\n"
        "    return small\n"
    )

    def _lint(self, marker: str):
        return lint_source(
            self.SNIPPET.format(marker=marker),
            path="src/repro/bfs/snippet.py",
            select=["RPR010"],
            deep=True,
        )

    def test_unsuppressed_fires(self):
        assert [v.rule for v in self._lint("")] == ["RPR010"]

    def test_noqa_on_closing_line_suppresses_whole_statement(self):
        # The finding is reported on the statement's first line; the
        # marker sits two lines below, on the closing paren.
        assert self._lint("  # repro: noqa[RPR010] - ids < 2^31") == []

    def test_blanket_noqa_on_closing_line(self):
        assert self._lint("  # repro: noqa") == []

    def test_wrong_code_does_not_suppress(self):
        assert [
            v.rule for v in self._lint("  # repro: noqa[RPR001]")
        ] == ["RPR010"]

    def test_def_line_noqa_does_not_blanket_the_body(self):
        """Compound statements are excluded from extent expansion: a
        noqa on the def line must not silence findings inside."""
        src = (
            "__all__ = ['f']\n"
            "def f(x):  # repro: noqa[RPR004]\n"
            "    assert x\n"
            "    return x\n"
        )
        violations = lint_source(src, select=["RPR004"])
        assert [v.rule for v in violations] == ["RPR004"]


class TestNodeIndex:
    """One materialized walk shared by every rule (the single-pass
    satellite)."""

    SRC = (
        "import numpy as np\n"
        "def f(x):\n"
        "    y = np.sort(x)\n"
        "    return np.unique(y)\n"
    )

    def test_index_matches_a_fresh_walk(self):
        tree = ast.parse(self.SRC)
        index = NodeIndex(tree)
        walked = [n for n in ast.walk(tree) if isinstance(n, ast.Call)]
        assert index.of(ast.Call) == walked
        assert len(index.nodes) == len(list(ast.walk(tree)))

    def test_multi_type_query(self):
        tree = ast.parse(self.SRC)
        index = NodeIndex(tree)
        got = index.of(ast.FunctionDef, ast.Return)
        assert {type(n) for n in got} == {ast.FunctionDef, ast.Return}

    def test_context_falls_back_without_index(self):
        tree = ast.parse(self.SRC)
        ctx = ModuleContext(
            path="x.py", source=self.SRC, tree=tree, hot_path=False
        )
        assert ctx.index is None
        assert len(ctx.nodes(ast.Call)) == 2

    def test_lint_source_shares_one_index(self):
        """All rules see the same ModuleContext index object —
        lint_source builds it exactly once per file."""
        violations = lint_source(self.SRC, path="t.py", deep=True)
        assert isinstance(violations, list)  # ran every rule on one parse
