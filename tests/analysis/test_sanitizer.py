"""Runtime BFS sanitizer: clean runs stay clean, corruption is caught
with structured level/vertex information, CSR arrays are frozen."""

import numpy as np
import pytest

import repro.bfs.topdown as topdown_mod
from repro.analysis import RaceTracker, Sanitizer, frozen_arrays
from repro.bfs import (
    bfs_bottom_up,
    bfs_hybrid,
    bfs_reference,
    bfs_top_down,
    pick_sources,
)
from repro.errors import BFSError, SanitizerError
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat


class TestCleanRuns:
    def test_top_down_sanitized(self, rmat_small, rmat_source):
        res = bfs_top_down(rmat_small, rmat_source, sanitize=True)
        res.validate(rmat_small)
        assert res.same_reachability(bfs_reference(rmat_small, rmat_source))

    def test_bottom_up_sanitized(self, rmat_small, rmat_source):
        res = bfs_bottom_up(rmat_small, rmat_source, sanitize=True)
        res.validate(rmat_small)

    def test_hybrid_sanitized(self, rmat_small, rmat_source):
        res = bfs_hybrid(rmat_small, rmat_source, m=20, n=100, sanitize=True)
        res.validate(rmat_small)
        assert "bu" in res.directions  # the bitmap-agreement check ran

    def test_hybrid_sanitized_rmat_scale14(self):
        """The acceptance-criterion run: R-MAT scale 14, zero violations."""
        g = rmat(14, 16, seed=0)
        s = int(pick_sources(g, 1, seed=0)[0])
        res = bfs_hybrid(g, s, m=64, n=512, sanitize=True)
        res.validate(g)
        assert res.num_reached > g.num_vertices // 2

    def test_sanitized_matches_unsanitized(self, rmat_small, rmat_source):
        plain = bfs_hybrid(rmat_small, rmat_source, m=20, n=100)
        sane = bfs_hybrid(rmat_small, rmat_source, m=20, n=100, sanitize=True)
        assert plain.same_reachability(sane)
        assert plain.directions == sane.directions

    def test_disconnected_source(self):
        g = CSRGraph.from_edges([0, 2], [1, 3], 5)  # vertex 4 isolated
        res = bfs_hybrid(g, 4, m=2, n=2, sanitize=True)
        assert res.num_reached == 1


class TestFreezing:
    def test_arrays_frozen_during_and_after(self, rmat_small, rmat_source):
        bfs_top_down(rmat_small, rmat_source, sanitize=True)
        assert not rmat_small.offsets.flags.writeable
        assert not rmat_small.targets.flags.writeable

    def test_frozen_arrays_restores_prior_state(self):
        g = CSRGraph.from_edges([0], [1], 2).copy_writable()
        assert g.targets.flags.writeable
        with frozen_arrays(g):
            assert not g.targets.flags.writeable
            with pytest.raises(ValueError):
                g.targets[0] = 0
        assert g.targets.flags.writeable  # escape hatch restored

    def test_write_through_alias_raises_during_sanitized_run(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3).copy_writable()
        alias = g.targets
        with frozen_arrays(g):
            with pytest.raises(ValueError):
                alias[0] = 2


class TestInjectedCorruption:
    def _fresh(self, graph, source):
        n = graph.num_vertices
        parent = np.full(n, -1, dtype=np.int64)
        level = np.full(n, -1, dtype=np.int64)
        parent[source] = source
        level[source] = 0
        return parent, level

    def test_bad_source_rejected(self, rmat_small):
        with pytest.raises(BFSError):
            Sanitizer(rmat_small, -1)

    def test_parent_corruption_engine_level(self, rmat_small, rmat_source, monkeypatch):
        """An engine whose claim step mis-levels a vertex must trip the
        sanitizer with the offending level and vertex id."""
        real_step = topdown_mod.top_down_step

        def corrupting_step(graph, frontier, parent, level, depth, workspace=None):
            nf, examined = real_step(
                graph, frontier, parent, level, depth, workspace
            )
            if depth == 1 and nf.size:
                level[nf[0]] = depth + 2  # push one vertex a level too deep
            return nf, examined

        monkeypatch.setattr(topdown_mod, "top_down_step", corrupting_step)
        with pytest.raises(SanitizerError) as exc:
            bfs_top_down(rmat_small, rmat_source, sanitize=True)
        assert exc.value.level == 2
        assert len(exc.value.vertices) >= 1

    def test_wrong_level_reported(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        san = Sanitizer(g, 0)
        parent, level = self._fresh(g, 0)
        parent[1] = 0
        level[1] = 5  # should be 1
        with pytest.raises(SanitizerError) as exc:
            san.after_level(0, np.array([0]), np.array([1]), parent, level)
        assert exc.value.level == 1
        assert exc.value.vertices == (1,)

    def test_parent_not_one_shallower(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        san = Sanitizer(g, 0)
        parent, level = self._fresh(g, 0)
        parent[1], level[1] = 0, 1
        san.after_level(0, np.array([0]), np.array([1]), parent, level)
        # level 1 claims vertex 2 but names the source (level 0) as parent
        parent[2], level[2] = 0, 2
        with pytest.raises(SanitizerError) as exc:
            san.after_level(1, np.array([1]), np.array([2]), parent, level)
        assert "one level shallower" in str(exc.value)
        assert exc.value.vertices == (2,)

    def test_double_visit(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        san = Sanitizer(g, 0)
        parent, level = self._fresh(g, 0)
        parent[1], level[1] = 0, 1
        san.after_level(0, np.array([0]), np.array([1]), parent, level)
        parent[2], level[2] = 1, 2
        level[1] = 2  # vertex 1 claimed again
        parent[1] = 1
        with pytest.raises(SanitizerError) as exc:
            san.after_level(1, np.array([1]), np.array([2, 1]), parent, level)
        assert "twice" in str(exc.value) or "shallower" in str(exc.value)

    def test_bitmap_queue_disagreement(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        san = Sanitizer(g, 0)
        parent, level = self._fresh(g, 0)
        parent[1], level[1] = 0, 1
        bitmap = np.zeros(4, dtype=bool)
        bitmap[0] = True
        bitmap[3] = True  # extra member not in the queue
        with pytest.raises(SanitizerError) as exc:
            san.after_level(
                0,
                np.array([0]),
                np.array([1]),
                parent,
                level,
                in_frontier=bitmap,
            )
        assert 3 in exc.value.vertices

    def test_unvisited_count_mismatch(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        san = Sanitizer(g, 0)
        parent, level = self._fresh(g, 0)
        parent[1], level[1] = 0, 1
        parent[3] = 2  # phantom claim never reported to the sanitizer
        with pytest.raises(SanitizerError) as exc:
            san.after_level(0, np.array([0]), np.array([1]), parent, level)
        assert "unvisited count" in str(exc.value)

    def test_finish_detects_map_disagreement(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        san = Sanitizer(g, 0)
        parent, level = self._fresh(g, 0)
        level[3] = 7  # reached per level map, unreached per parent map
        with pytest.raises(SanitizerError) as exc:
            san.finish(parent, level)
        assert 3 in exc.value.vertices


class TestRaceTracker:
    """Thread-ownership write tracking: the level's legitimate write
    set is exactly the claimed next frontier."""

    def _maps(self, n, source):
        parent = np.full(n, -1, dtype=np.int64)
        level = np.full(n, -1, dtype=np.int64)
        parent[source] = source
        level[source] = 0
        return parent, level

    def test_bad_source_rejected(self, rmat_small):
        with pytest.raises(BFSError):
            RaceTracker(rmat_small, rmat_small.num_vertices)

    def test_clean_level_verifies(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        tracker = RaceTracker(g, 0)
        parent, level = self._maps(4, 0)
        tracker.begin_level(parent, level)
        parent[1], level[1] = 0, 1  # the main-thread merge
        tracker.verify_level(0, parent, level, np.array([1]))
        assert tracker.levels_verified == 1
        assert tracker.writes_verified == 2  # parent + level entries

    def test_rogue_write_raises(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        tracker = RaceTracker(g, 0)
        parent, level = self._maps(4, 0)
        tracker.begin_level(parent, level)
        parent[1], level[1] = 0, 1
        parent[3] = 9  # not in the claimed set: a bypassing write
        with pytest.raises(SanitizerError) as exc:
            tracker.verify_level(0, parent, level, np.array([1]))
        assert "outside the claimed next frontier" in str(exc.value)
        assert exc.value.level == 0
        assert 3 in exc.value.vertices

    def test_unwritten_claim_raises(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], 4)
        tracker = RaceTracker(g, 0)
        parent, level = self._maps(4, 0)
        tracker.begin_level(parent, level)
        parent[1], level[1] = 0, 1
        with pytest.raises(SanitizerError) as exc:
            tracker.verify_level(0, parent, level, np.array([1, 2]))
        assert "never written" in str(exc.value)
        assert 2 in exc.value.vertices

    def test_stamps_reset_each_level(self):
        g = CSRGraph.from_edges([0], [1], 2)
        tracker = RaceTracker(g, 0)
        parent, level = self._maps(2, 0)
        tracker.begin_level(parent, level)
        tracker.stamp_chunk("expand@0")
        tracker.stamp_chunk("expand@0")
        assert len(tracker._stamps) == 2
        tracker.begin_level(parent, level)
        assert tracker._stamps == []

    def test_summary_counts(self):
        g = CSRGraph.from_edges([0], [1], 2)
        tracker = RaceTracker(g, 0)
        parent, level = self._maps(2, 0)
        tracker.begin_level(parent, level)
        parent[1], level[1] = 0, 1
        tracker.verify_level(0, parent, level, np.array([1]))
        assert "1 levels" in tracker.summary()
        assert "0 rogue writes" in tracker.summary()


class TestErrorStructure:
    def test_message_carries_level_and_vertices(self):
        err = SanitizerError("boom", level=4, vertices=(10, 20))
        assert err.level == 4
        assert err.vertices == (10, 20)
        assert "level 4" in str(err) and "10" in str(err)

    def test_vertex_list_truncated_in_message(self):
        err = SanitizerError("boom", level=1, vertices=tuple(range(100)))
        assert len(err.vertices) == 100
        assert "+92" in str(err)

    def test_summary_reports_clean(self, rmat_small, rmat_source):
        san = Sanitizer(rmat_small, rmat_source)
        assert "0 violations" in san.summary()
