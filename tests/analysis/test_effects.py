"""Per-function read/write/escape effect summaries and their call-graph
propagation: the legacy one-level pass (the historical RPR014 input)
and the worklist fixpoint that replaced it."""

import ast

from repro.analysis.effects import (
    format_effects,
    function_effects,
    module_effects,
    module_import_names,
    propagate,
    propagate_one_level,
)


def _fn(src: str) -> ast.FunctionDef:
    node = ast.parse(src).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


class TestFunctionEffects:
    def test_subscript_store_writes_param(self):
        fx = function_effects(_fn("def f(a, i):\n    a[i] = 0\n"))
        assert fx.writes == {"a"}
        assert fx.writes_param("a")
        assert not fx.writes_param("i")

    def test_plain_rebind_is_not_a_write(self):
        fx = function_effects(_fn("def f(a):\n    a = 0\n    return a\n"))
        assert fx.writes == frozenset()

    def test_local_array_writes_not_tracked(self):
        src = (
            "def f(n):\n"
            "    tmp = make(n)\n"
            "    tmp[0] = 1\n"
            "    return tmp\n"
        )
        fx = function_effects(_fn(src))
        assert "tmp" not in fx.writes  # local: caller can't observe it

    def test_free_variable_write_tracked(self):
        src = "def f(i):\n    shared[i] = 1\n"
        fx = function_effects(_fn(src))
        assert "shared" in fx.writes

    def test_mutating_method_is_a_write(self):
        fx = function_effects(_fn("def f(a):\n    a.fill(0)\n"))
        assert fx.writes == {"a"}

    def test_out_kwarg_is_a_write(self):
        fx = function_effects(
            _fn("def f(a, b):\n    np.add(a, a, out=b)\n")
        )
        assert "b" in fx.writes

    def test_module_sort_is_not_a_write(self):
        """``np.sort(x)`` is the copying functional sort; the module
        receiver must not be recorded as a mutated array."""
        tree = ast.parse(
            "import numpy as np\n"
            "def f(a):\n"
            "    return np.sort(a)\n"
        )
        fx = module_effects(tree)["f"]
        assert fx.writes == frozenset()
        assert "np" not in fx.reads

    def test_return_escapes(self):
        fx = function_effects(_fn("def f(a, b):\n    return a\n"))
        assert fx.escapes == {"a"}

    def test_reads_recorded(self):
        fx = function_effects(_fn("def f(a, i):\n    x = a[i] + 1\n"))
        assert {"a", "i"} <= fx.reads

    def test_nested_def_effects_stay_its_own(self):
        src = (
            "def f(a):\n"
            "    def g(i):\n"
            "        a[i] = 0\n"
            "    return g\n"
        )
        fx = function_effects(_fn(src))
        assert fx.writes == frozenset()  # the write belongs to g

    def test_call_sites_record_bindings(self):
        fx = function_effects(
            _fn("def f(a):\n    helper(a, depth=a)\n")
        )
        (call,) = fx.calls
        assert call.callee == "helper"
        assert call.args == ("a",)
        assert call.kwargs == (("depth", "a"),)


class TestModuleImports:
    def test_import_names_collected(self):
        tree = ast.parse(
            "import numpy as np\nimport ast\nfrom os import path as p\n"
        )
        assert module_import_names(tree) == {"np", "ast", "p"}


class TestPropagation:
    MODULE = (
        "def _claim(rows, parent, depth):\n"
        "    parent[rows] = depth\n"
        "\n"
        "def level(frontier, parent, depth):\n"
        "    _claim(frontier, parent, depth)\n"
        "    return frontier\n"
        "\n"
        "def outer(frontier, parent, depth):\n"
        "    return level(frontier, parent, depth)\n"
    )

    def test_one_level_propagation(self):
        effects = propagate(module_effects(ast.parse(self.MODULE)))
        assert "parent" in effects["_claim"].writes
        # level inherits the write through the call binding
        assert "parent" in effects["level"].writes

    def test_one_level_engine_misses_the_two_hop_write(self):
        """outer -> level -> _claim is two hops; the legacy single-pass
        engine sees exactly one — the regression the fixpoint fixes."""
        effects = propagate_one_level(module_effects(ast.parse(self.MODULE)))
        assert "parent" in effects["level"].writes
        assert "parent" not in effects["outer"].writes

    def test_fixpoint_catches_the_two_hop_write(self):
        """`propagate` iterates to a fixpoint, so the same write reaches
        `outer` through arbitrary call depth."""
        effects = propagate(module_effects(ast.parse(self.MODULE)))
        assert "parent" in effects["outer"].writes

    def test_fixpoint_propagates_raises_through_depth(self):
        src = (
            "def _step(v):\n"
            "    if v < 0:\n"
            "        raise ValueError(v)\n"
            "    return v\n"
            "\n"
            "def _drive(v):\n"
            "    return _step(v)\n"
            "\n"
            "def entry(v):\n"
            "    return _drive(v)\n"
        )
        one = propagate_one_level(module_effects(ast.parse(src)))
        assert one["_drive"].raises
        assert not one["entry"].raises
        full = propagate(module_effects(ast.parse(src)))
        assert full["entry"].raises

    def test_fixpoint_terminates_on_recursion(self):
        src = (
            "def ping(a, n):\n"
            "    a[n] = 0\n"
            "    return pong(a, n - 1)\n"
            "\n"
            "def pong(a, n):\n"
            "    return ping(a, n - 1)\n"
        )
        effects = propagate(module_effects(ast.parse(src)))
        assert "a" in effects["ping"].writes
        assert "a" in effects["pong"].writes

    def test_kwarg_binding_propagates(self):
        src = (
            "def h(out=None):\n"
            "    out[0] = 1\n"
            "\n"
            "def f(buf):\n"
            "    h(out=buf)\n"
        )
        effects = propagate(module_effects(ast.parse(src)))
        assert "buf" in effects["f"].writes

    def test_unresolved_callee_assumed_safe(self):
        src = "def f(a):\n    external_helper(a)\n"
        effects = propagate(module_effects(ast.parse(src)))
        assert effects["f"].writes == frozenset()

    def test_format_effects_stable_dump(self):
        effects = propagate(module_effects(ast.parse(self.MODULE)))
        dump = format_effects(effects)
        assert "level(frontier, parent, depth)" in dump
        assert "writes={parent}" in dump
