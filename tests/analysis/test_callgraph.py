"""The whole-program call graph: resolution, fixpoint propagation,
caching and exports (repro.analysis.callgraph)."""

import json

import pytest

from repro.analysis.callgraph import (
    SummaryCache,
    build_project,
    extract_module,
    module_name_for,
    project_from_sources,
    record_from_dict,
    record_to_dict,
)
from repro.errors import CallGraphError
from pathlib import Path


def _project(*pairs):
    return project_from_sources(list(pairs))


class TestResolution:
    def test_plain_call_same_module(self):
        p = _project(("m.py", "def g():\n    return 1\n\ndef f():\n    return g()\n"))
        edges = [e for e in p.edges if e.caller == "m.f"]
        assert edges and edges[0].callee == "m.g"

    def test_import_aware_cross_module(self):
        p = _project(
            ("helpers.py", "def claim(rows, parent):\n    parent[rows] = 1\n"),
            ("engine.py", "import helpers\n\ndef f(rows, parent):\n    helpers.claim(rows, parent)\n"),
        )
        edges = [e for e in p.edges if e.caller == "engine.f"]
        assert edges[0].callee == "helpers.claim"

    def test_from_import_cross_module(self):
        p = _project(
            ("helpers.py", "def claim(rows, parent):\n    parent[rows] = 1\n"),
            ("engine.py", "from helpers import claim\n\ndef f(rows, parent):\n    claim(rows, parent)\n"),
        )
        edges = [e for e in p.edges if e.caller == "engine.f"]
        assert edges[0].callee == "helpers.claim"

    def test_method_dispatch_via_annotation(self):
        src = (
            "class Engine:\n"
            "    def run(self, g):\n"
            "        return g\n"
            "\n"
            "def drive(eng: Engine, g):\n"
            "    return eng.run(g)\n"
        )
        p = _project(("m.py", src))
        edges = [e for e in p.edges if e.caller == "m.drive"]
        assert edges[0].callee == "m.Engine.run"
        assert edges[0].receiver == "eng"

    def test_method_dispatch_via_ctor_local(self):
        src = (
            "class Engine:\n"
            "    def run(self, g):\n"
            "        return g\n"
            "\n"
            "def drive(g):\n"
            "    eng = Engine()\n"
            "    return eng.run(g)\n"
        )
        p = _project(("m.py", src))
        callees = {e.callee for e in p.edges if e.caller == "m.drive"}
        assert "m.Engine.run" in callees

    def test_nested_scope_resolves_innermost(self):
        src = (
            "def outer():\n"
            "    def helper():\n"
            "        return 1\n"
            "    return helper()\n"
            "\n"
            "def helper():\n"
            "    return 2\n"
        )
        p = _project(("m.py", src))
        edges = [e for e in p.edges if e.caller == "m.outer"]
        assert edges[0].callee == "m.outer.helper"

    def test_dispatch_edges_marked(self):
        src = (
            "def level(pool, frontier, parent):\n"
            "    def scan(chunk):\n"
            "        return chunk\n"
            "    return list(pool.map(scan, frontier))\n"
        )
        p = _project(("m.py", src))
        dispatch = [e for e in p.edges if e.dispatch]
        assert dispatch and dispatch[0].callee == "m.level.scan"
        assert "m.level.scan" in p.workers


class TestFixpoint:
    CHAIN = (
        "def _claim(rows, parent, depth):\n"
        "    parent[rows] = depth\n"
        "\n"
        "def level(frontier, parent, depth):\n"
        "    _claim(frontier, parent, depth)\n"
        "\n"
        "def outer(frontier, parent, depth):\n"
        "    level(frontier, parent, depth)\n"
        "\n"
        "def outermost(frontier, parent, depth):\n"
        "    outer(frontier, parent, depth)\n"
    )

    def test_writes_reach_arbitrary_depth(self):
        p = _project(("m.py", self.CHAIN))
        assert "parent" in p.summaries["m.outer"].writes
        assert "parent" in p.summaries["m.outermost"].writes

    def test_raises_propagate_across_modules(self):
        p = _project(
            ("low.py", "def step(v):\n    raise ValueError(v)\n"),
            ("mid.py", "import low\n\ndef drive(v):\n    return low.step(v)\n"),
            ("top.py", "import mid\n\ndef entry(v):\n    return mid.drive(v)\n"),
        )
        assert p.summaries["mid.drive"].raises
        assert p.summaries["top.entry"].raises

    def test_recursion_terminates(self):
        src = (
            "def ping(a, n):\n"
            "    a[n] = 0\n"
            "    return pong(a, n - 1)\n"
            "\n"
            "def pong(a, n):\n"
            "    return ping(a, n - 1)\n"
        )
        p = _project(("m.py", src))
        assert "a" in p.summaries["m.ping"].writes
        assert "a" in p.summaries["m.pong"].writes
        assert p.rounds < 100  # bounded, not spinning

    def test_returns_ws_chains(self):
        src = (
            "def _grab(ws, k):\n"
            "    return ws.buffer(k)\n"
            "\n"
            "def _mid(ws, k):\n"
            "    return _grab(ws, k)\n"
            "\n"
            "def view(workspace, k):\n"
            "    return _mid(workspace, k)\n"
        )
        p = _project(("m.py", src))
        assert p.summaries["m.view"].returns_ws


class TestQueries:
    def test_who_writes_workspace_target(self):
        src = (
            "def fill(ws, depth):\n"
            "    ws.parent[:] = depth\n"
            "\n"
            "def run(workspace, depth):\n"
            "    fill(workspace, depth)\n"
        )
        p = _project(("m.py", src))
        assert set(p.who_writes("workspace.parent")) == {"m.fill", "m.run"}

    def test_reachable_and_callers(self):
        p = _project(("m.py", TestFixpoint.CHAIN))
        assert "m._claim" in p.reachable_from("m.outermost")
        assert p.callers_of("m._claim") == {"m.level", "m.outer", "m.outermost"}

    def test_cycles_detects_mutual_recursion(self):
        src = (
            "def ping(n):\n    return pong(n - 1)\n"
            "\n"
            "def pong(n):\n    return ping(n - 1)\n"
        )
        p = _project(("m.py", src))
        comps = p.cycles()
        assert any(set(c) == {"m.ping", "m.pong"} for c in comps)


class TestExports:
    def test_dot_smoke(self):
        p = _project(("m.py", TestFixpoint.CHAIN))
        dot = p.to_dot()
        assert dot.startswith("digraph callgraph {")
        assert '"m.outer" -> "m.level"' in dot

    def test_json_schema_and_summaries(self):
        p = _project(("m.py", TestFixpoint.CHAIN))
        payload = json.loads(p.to_json(summaries=True))
        assert payload["schema"] == "repro.analysis.callgraph/1"
        assert payload["stats"]["functions"] == 4
        assert "parent" in payload["summaries"]["m.outer"]["writes"]

    def test_stats_counts_resolution(self):
        p = _project(("m.py", TestFixpoint.CHAIN))
        stats = p.stats()
        assert stats["modules"] == 1
        assert stats["resolved_edges"] == 3


class TestCacheAndRecords:
    def test_record_round_trip(self):
        rec = extract_module("m.py", TestFixpoint.CHAIN)
        back = record_from_dict(record_to_dict(rec))
        assert back == rec

    def test_summary_cache_round_trip(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        src_file = tmp_path / "m.py"
        src_file.write_text(TestFixpoint.CHAIN, encoding="utf-8")

        cache = SummaryCache(cache_file)
        build_project([src_file], cache=cache)
        cache.save()
        assert cache_file.exists()

        # Drop the in-process cache so the disk cache must serve the hit
        # (simulates a fresh interpreter, e.g. a new CI step).
        from repro.analysis import callgraph as cg

        cg._MEMORY_CACHE.clear()
        fresh = SummaryCache(cache_file)
        p = build_project([src_file], cache=fresh)
        assert fresh.hits == 1 and fresh.misses == 0
        assert "parent" in p.summaries[f"{module_name_for(src_file)}.outer"].writes

    def test_version_bump_invalidates_warm_cache(
        self, tmp_path, monkeypatch
    ):
        """A rule/extraction upgrade (ANALYSIS_VERSION bump) must treat
        every cached record as stale even when file hashes match —
        stale summaries surviving a rule upgrade would silently pin the
        old semantics."""
        from repro.analysis import callgraph as cg

        cache_file = tmp_path / "cache.json"
        src_file = tmp_path / "m.py"
        src_file.write_text(TestFixpoint.CHAIN, encoding="utf-8")

        cache = SummaryCache(cache_file)
        build_project([src_file], cache=cache)
        cache.save()

        cg._MEMORY_CACHE.clear()
        warm = SummaryCache(cache_file)
        build_project([src_file], cache=warm)
        assert warm.hits == 1 and warm.misses == 0

        # same content, newer analyzer: the warm cache must miss
        cg._MEMORY_CACHE.clear()
        monkeypatch.setattr(cg, "ANALYSIS_VERSION", cg.ANALYSIS_VERSION + 1)
        bumped = SummaryCache(cache_file)
        build_project([src_file], cache=bumped)
        assert bumped.hits == 0 and bumped.misses == 1
        # and the re-extracted record lands under the new key
        bumped.save()
        blob = json.loads(cache_file.read_text(encoding="utf-8"))
        versions = {key.rsplit(":", 1)[1] for key in blob["records"]}
        assert f"v{cg.ANALYSIS_VERSION}" in versions

    def test_build_project_skips_broken_files(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("def f():\n    return 1\n", encoding="utf-8")
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        p = build_project([good, bad])
        assert len(p.modules) == 1

    def test_build_project_empty_raises(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        with pytest.raises(CallGraphError):
            build_project([bad])


class TestModuleNames:
    def test_package_walk(self):
        path = Path("src/repro/bfs/parallel.py")
        assert module_name_for(path) == "repro.bfs.parallel"

    def test_loose_file_uses_stem(self, tmp_path):
        loose = tmp_path / "scratch.py"
        loose.write_text("x = 1\n", encoding="utf-8")
        assert module_name_for(loose) == "scratch"
