"""``lint --deep --changed`` must not blind the interprocedural tier.

The deep/whole-program rules see violations that *span* modules — the
half in an unchanged file is load-bearing context.  The git-aware
``--changed`` selection therefore analyzes the full scope and only
filters *reported* locations to the changed subset
(``lint_paths(..., restrict_to=...)``); these are the regression tests
for the old behavior, which fed the changed-file subset to the
analysis itself and silently lost the cross-module half.
"""

from pathlib import Path

from repro.analysis import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
RPR017_DIR = FIXTURES / "rpr017_bad"
ENGINE = RPR017_DIR / "engine.py"


class TestRestrictTo:
    def test_restricted_run_keeps_whole_project_context(self):
        """Reporting only on engine.py must still surface the
        cross-module RPR017 violation (helpers.py provides the write
        path)."""
        violations, checked = lint_paths(
            [RPR017_DIR],
            select=["RPR017"],
            deep=True,
            restrict_to=[ENGINE],
        )
        assert checked == 1  # only the restricted file is reported on
        assert [v.rule for v in violations] == ["RPR017"]
        assert violations[0].path.endswith("engine.py")

    def test_naive_subset_analysis_would_miss_it(self):
        """The defect this fixes: analyzing the changed file alone
        (the old --changed behavior) cannot see the violation."""
        violations, checked = lint_paths(
            [ENGINE], select=["RPR017"], deep=True
        )
        assert checked == 1
        assert violations == []

    def test_restrict_to_outside_scope_reports_nothing(self):
        violations, checked = lint_paths(
            [RPR017_DIR],
            select=["RPR017"],
            deep=True,
            restrict_to=[FIXTURES / "rpr015_bad.py"],
        )
        assert checked == 0
        assert violations == []


class TestChangedFlagCli:
    def test_changed_deep_lint_analyzes_the_full_scope(
        self, monkeypatch, capsys
    ):
        """`repro-bfs lint --deep --changed` with only engine.py
        changed must still report the cross-module violation."""
        import repro.analysis
        from repro.cli import main

        monkeypatch.setattr(
            repro.analysis,
            "changed_python_files",
            lambda paths: [ENGINE],
        )
        code = main(
            ["lint", "--deep", "--select", "RPR017",
             "--changed", str(RPR017_DIR)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "RPR017" in captured.out
        assert "engine.py" in captured.out
        assert "1 file(s)" in captured.err

    def test_changed_with_no_changes_short_circuits(
        self, monkeypatch, capsys
    ):
        import repro.analysis
        from repro.cli import main

        monkeypatch.setattr(
            repro.analysis, "changed_python_files", lambda paths: []
        )
        code = main(["lint", "--deep", "--changed", str(RPR017_DIR)])
        assert code == 0
        assert "no changed" in capsys.readouterr().out
