"""The repo must lint clean: ``repro-bfs lint src/`` over the installed
package is a tier-1 gate from this PR onward.

If this test fails, either fix the flagged code or — when the pattern is
deliberate (like the scalar reference BFS) — annotate the line with
``# repro: noqa[RULE]`` and say why.
"""

from pathlib import Path

import repro
from repro.analysis import format_text, lint_paths

PACKAGE_DIR = Path(repro.__file__).parent


def test_package_lints_clean():
    violations, checked = lint_paths([PACKAGE_DIR])
    assert checked > 80, "package walk found suspiciously few files"
    assert violations == [], "\n" + format_text(violations)


def test_hot_path_modules_are_covered():
    """The vectorization rule must actually be in force over the kernel
    packages (guards against a path-detection regression)."""
    from repro.analysis.lint import is_hot_path

    assert is_hot_path(str(PACKAGE_DIR / "bfs" / "topdown.py"))
    assert is_hot_path(str(PACKAGE_DIR / "graph" / "csr.py"))
    assert is_hot_path(str(PACKAGE_DIR / "hetero" / "planner.py"))
    assert not is_hot_path(str(PACKAGE_DIR / "ml" / "svr.py"))
