"""The repo must lint clean: ``repro-bfs lint src/`` over the installed
package is a tier-1 gate from this PR onward.

If this test fails, either fix the flagged code or — when the pattern is
deliberate (like the scalar reference BFS) — annotate the line with
``# repro: noqa[RULE]`` and say why.
"""

from pathlib import Path

import repro
from repro.analysis import format_text, lint_paths

PACKAGE_DIR = Path(repro.__file__).parent


def test_package_lints_clean():
    violations, checked = lint_paths([PACKAGE_DIR])
    assert checked > 80, "package walk found suspiciously few files"
    assert violations == [], "\n" + format_text(violations)


def test_package_lints_clean_deep():
    """The dataflow/race rules (RPR010-RPR014) must also run clean over
    the whole package — ``repro-bfs lint --deep src/repro`` is a merge
    gate from this PR onward."""
    violations, checked = lint_paths([PACKAGE_DIR], deep=True)
    assert checked > 80, "package walk found suspiciously few files"
    assert violations == [], "\n" + format_text(violations)


def test_deep_baseline_report_is_current():
    """The committed deep-analysis report must match a fresh run: zero
    violations, and the deep rule set it records still registered.
    Regenerate it (see its ``command`` field) if this drifts."""
    import json

    from repro.analysis import deep_rule_codes

    baseline_path = (
        Path(__file__).resolve().parents[2]
        / "benchmarks" / "results" / "analysis" / "deep_baseline.json"
    )
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert baseline["schema"] == "repro.analysis.deep_baseline/1"
    assert baseline["violations"] == []
    assert baseline["deep_rules"] == deep_rule_codes()
    # the typestate tier must be part of the committed gate — a
    # regenerated baseline that silently dropped RPR022..RPR026 would
    # pass the equality above only if registration broke too
    assert {"RPR022", "RPR023", "RPR024", "RPR025", "RPR026"} <= set(
        baseline["deep_rules"]
    )
    violations, checked = lint_paths([PACKAGE_DIR], deep=True)
    assert [v.as_dict() for v in violations] == baseline["violations"]
    assert checked >= baseline["files_checked"], (
        "package shrank below the committed baseline"
    )


def test_hot_path_modules_are_covered():
    """The vectorization rule must actually be in force over the kernel
    packages (guards against a path-detection regression)."""
    from repro.analysis.lint import is_hot_path

    assert is_hot_path(str(PACKAGE_DIR / "bfs" / "topdown.py"))
    assert is_hot_path(str(PACKAGE_DIR / "graph" / "csr.py"))
    assert is_hot_path(str(PACKAGE_DIR / "hetero" / "planner.py"))
    assert not is_hot_path(str(PACKAGE_DIR / "ml" / "svr.py"))


def test_wholeprogram_baseline_is_current():
    """The committed whole-program report (call-graph stats + RPR015-019
    findings) must match a fresh fixpoint run over the package: zero
    violations, the same rule set, and a package that has not shrunk.
    Regenerate with ``repro-bfs callgraph src/repro --write-baseline
    benchmarks/results/analysis/wholeprogram_baseline.json``."""
    import json

    from repro.analysis import build_project, program_report
    from repro.analysis.lint import iter_python_files

    baseline_path = (
        Path(__file__).resolve().parents[2]
        / "benchmarks" / "results" / "analysis"
        / "wholeprogram_baseline.json"
    )
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert baseline["schema"] == "repro.analysis.wholeprogram_baseline/1"
    assert baseline["violations"] == {}

    project = build_project(iter_python_files([PACKAGE_DIR]))
    report = program_report(project)
    assert sorted(report) == baseline["program_rules"]
    fresh = {
        code: buckets for code, buckets in report.items() if buckets
    }
    assert fresh == {}, f"whole-program findings drifted: {fresh}"
    stats = project.stats()
    for key in ("modules", "functions"):
        assert stats[key] >= baseline["stats"][key], (
            f"package {key} shrank below the committed baseline"
        )
