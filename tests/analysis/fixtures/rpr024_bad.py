"""Seeded RPR024 bug: a workspace re-lent while its result is live.

``first`` still aliases the workspace arrays when the second traversal
reuses ``ws`` — the rerun silently rewrites ``first.parent`` before
the final sum reads it.  The dynamic twin observes the same scenario
through :meth:`repro.obs.live.ProtocolMonitor.lend`.
"""

from repro.bfs.parallel import ParallelBFS
from repro.bfs.workspace import BFSWorkspace

__all__ = ["compare_roots"]


def compare_roots(graph, a, b, threads):
    engine = ParallelBFS(num_threads=threads)
    ws = BFSWorkspace(graph.num_vertices)
    try:
        first = engine.run(graph, a, workspace=ws)
        second = engine.run(graph, b, workspace=ws)  # first still live
        return int(first.parent[0]) + int(second.parent[0])
    finally:
        engine.close()
