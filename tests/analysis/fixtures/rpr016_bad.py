"""Seeded RPR016 bug: workspace scratch escapes a public API two hops up.

``frontier_view`` is public and returns whatever ``_mid`` returns;
``_mid`` returns whatever ``_grab`` returns; ``_grab`` returns a
workspace-derived buffer.  ``returns_ws`` only reaches the public
boundary through two rounds of fixpoint propagation — the one-level
engine sees ``_mid`` (and hence ``frontier_view``) as alias-free.
"""

__all__ = ["frontier_view"]


def _grab(ws, k):
    return ws.buffer(k)


def _mid(ws, k):
    return _grab(ws, k)


def frontier_view(workspace, k):
    return _mid(workspace, k)
