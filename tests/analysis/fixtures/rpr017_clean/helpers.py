"""Helper module for the rpr017_clean fixture: reads shared state only."""

__all__ = ["count_unclaimed"]


def _unclaimed(rows, parent):
    return parent[rows] < 0


def count_unclaimed(rows, parent, out):
    mask = _unclaimed(rows, parent)
    out[mask] = rows[mask]
