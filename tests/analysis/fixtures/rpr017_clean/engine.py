"""Clean twin of rpr017_bad: the cross-module helper only *reads*.

The worker hands the shared ``parent`` map to another module, but that
module's whole-program effect summary never writes it — claims land in
the worker-local ``out`` chunk, merged on the main thread afterwards.
"""

import helpers
import numpy as np

__all__ = ["partitioned_level"]


def partitioned_level(pool, graph, frontier, parent, depth):
    def scan(chunk):
        out = np.full(chunk.shape[0], -1)
        helpers.count_unclaimed(chunk, parent, out)
        return out

    return list(pool.map(scan, np.array_split(frontier, 4)))
