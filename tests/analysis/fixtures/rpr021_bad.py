"""Seeded RPR021 violation: a bare ``multiprocessing`` target whose
spans and metric increments die with the child process.

The target builds its own :class:`Tracer` and emits through a helper —
one module-local hop — but nothing on that path installs a
``ChannelExporter`` or ``TraceContext``, so the parent never sees any
of it.
"""

import multiprocessing

from repro.obs.tracer import Tracer

__all__ = ["spawn_worker", "worker"]


def _emit_levels(tracer, levels):
    tracer.count("bfs.levels", levels)


def worker(scale):
    tracer = Tracer()
    with tracer.span("graph500.bfs", scale=scale):
        _emit_levels(tracer, 3)


def spawn_worker():
    proc = multiprocessing.Process(target=worker, args=(8,))
    proc.start()
    proc.join()
    return proc
