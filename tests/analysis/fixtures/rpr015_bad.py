"""Seeded RPR015 bug: the engine leaks when a helper raises two hops down.

``leaky_traverse`` does call ``engine.close()`` — but the ``_drive``
call before it can raise: ``_drive`` calls ``_mid`` calls ``_step``,
which raises ``ValueError``.  Only the *fixpoint* effect engine marks
``_drive`` as raising; under one-level propagation only ``_mid``
inherits the raise and the leak is invisible at the acquisition site.
"""

from repro.bfs.parallel import ParallelBFS

__all__ = ["leaky_traverse"]


def _step(graph, engine, v):
    if v < 0:
        raise ValueError("negative source vertex")
    return engine.run(graph, v)


def _mid(graph, engine, v):
    return _step(graph, engine, v)


def _drive(graph, engine, source):
    # no raise in sight: the ValueError lives two more hops down
    return _mid(graph, engine, source)


def leaky_traverse(graph, source, threads):
    engine = ParallelBFS(num_threads=threads)
    result = _drive(graph, engine, source)
    engine.close()
    return result
