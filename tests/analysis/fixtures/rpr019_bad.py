"""Seeded RPR019 bug: mutual recursion on the hot path.

``scan_vertex`` and ``visit_vertex`` call each other once per reached
vertex — a Python-level call (and stack frame) per vertex in a package
that ``is_hot_path`` prices as vectorized-only.
"""

__all__ = ["scan_vertex", "visit_vertex"]


def scan_vertex(graph, parent, v, depth):
    for w in graph.neighbors(v):
        if parent[w] < 0:
            visit_vertex(graph, parent, w, v, depth)


def visit_vertex(graph, parent, w, v, depth):
    parent[w] = v
    scan_vertex(graph, parent, w, depth + 1)
