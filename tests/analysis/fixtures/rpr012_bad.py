"""Seeded RPR012 bug: a scratch buffer written but never read."""

import numpy as np

__all__ = ["gather_step"]


def gather_step(workspace, frontier):
    out = workspace.buffer("gathered", frontier.size, np.int64)
    out[: frontier.size] = frontier
    # `out` is never read again: the store is dead
    return int(frontier.size)
