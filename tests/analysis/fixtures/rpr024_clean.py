"""RPR024 control: detach the first result before re-lending."""

from repro.bfs.parallel import ParallelBFS
from repro.bfs.workspace import BFSWorkspace

__all__ = ["compare_roots"]


def compare_roots(graph, a, b, threads):
    engine = ParallelBFS(num_threads=threads)
    ws = BFSWorkspace(graph.num_vertices)
    try:
        first = engine.run(graph, a, workspace=ws)
        root_parent = int(first.parent[0])
        first.detach()  # workspace safe to re-lend from here
        second = engine.run(graph, b, workspace=ws)
        return root_parent + int(second.parent[0])
    finally:
        engine.close()
