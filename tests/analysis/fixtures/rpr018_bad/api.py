"""Seeded RPR018 bug: a public function reaches an ownership-gated
helper through a private relay, two hops and one module away.

``merge.merge_claims`` is gated by ``# repro: owned[parent]``.
``hijack_merge`` never declares ownership and goes through ``_relay``
(private, not gated, not in the owning module), so no mediator absorbs
the obligation on the path.
"""

import merge

__all__ = ["hijack_merge"]


def _relay(parent, cand_parent, rows):
    return merge.merge_claims(parent, cand_parent, rows)


def hijack_merge(parent, cand_parent, rows):
    return _relay(parent, cand_parent, rows)
