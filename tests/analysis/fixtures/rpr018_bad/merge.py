"""Owning module for the rpr018_bad fixture."""

__all__ = ["merge_claims"]


def merge_claims(parent, cand_parent, rows):
    # repro: owned[parent]
    parent[rows] = cand_parent[rows]
    return parent
