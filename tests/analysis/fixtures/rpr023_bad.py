"""Seeded RPR023 bug: the engine is used after it was closed *two
calls away*.

``finish`` calls ``shutdown`` calls ``_stop`` which closes the
engine — then ``finish`` runs another traversal on the closed handle.
Only the interprocedural protocol summaries see the close: the
one-level view (``TypestateAnalysis(..., interprocedural=False)``)
provably misses it, which the blind-spot regression test asserts.
"""

from repro.bfs.parallel import ParallelBFS

__all__ = ["finish"]


def _stop(engine):
    engine.close()


def shutdown(engine):
    _stop(engine)


def finish(graph, source, threads):
    engine = ParallelBFS(num_threads=threads)
    shutdown(engine)
    return engine.run(graph, source)  # closed two calls ago
