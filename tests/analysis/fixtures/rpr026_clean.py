"""RPR026 control: the spawned child's call path is conformant."""

import multiprocessing

from repro.obs.live import ChannelExporter

__all__ = ["launch"]


def _stream(conn, tracer):
    exporter = ChannelExporter(conn, tracer, source="child")
    exporter.hello()
    try:
        exporter.flush()
    finally:
        exporter.close()


def child_main(conn, tracer):
    _stream(conn, tracer)


def launch(conn, tracer):
    proc = multiprocessing.Process(target=child_main, args=(conn, tracer))
    proc.start()
    proc.join()
