"""Seeded RPR013 bug: a pool worker writes the shared parent map.

This is the same defect the dynamic race sanitizer catches at runtime
(see tests/test_stress_and_concurrency.py): worker threads must return
proposals for the main-thread merge, never write ``parent`` directly.
"""

import numpy as np

__all__ = ["broken_top_down_level"]


def broken_top_down_level(pool, graph, frontier, parent, level, depth):
    def expand(chunk):
        fresh = parent[chunk] < 0
        # RACE: claims written from the worker thread, unsynchronized
        parent[chunk[fresh]] = depth
        level[chunk[fresh]] = depth + 1
        return chunk[fresh]

    claimed = list(pool.map(expand, np.array_split(frontier, 4)))
    return np.concatenate(claimed)
