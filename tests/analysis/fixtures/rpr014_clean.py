"""Clean twin of rpr014_bad: the helper only reads what it is passed."""

import numpy as np

__all__ = ["scanning_level"]


def _scan_rows(rows, parent):
    # read-only over the shared map
    return rows[parent[rows] < 0]


def scanning_level(pool, graph, frontier, parent, depth):
    def scan(chunk):
        return _scan_rows(chunk, parent)

    proposals = list(pool.map(scan, np.array_split(frontier, 4)))
    winners = np.concatenate(proposals)
    parent[winners] = depth  # main-thread merge
    return winners
