"""RPR022 control: the conformant hello → frames → close handshake."""

from repro.obs.live import ChannelExporter

__all__ = ["conformant_stream"]


def conformant_stream(conn, tracer):
    exporter = ChannelExporter(conn, tracer, source="demo")
    exporter.hello()
    try:
        exporter.flush()
    finally:
        exporter.close()
