"""Clean twin for RPR021: the children's telemetry has a way home.

Two compliant spawn idioms:

* ``worker`` installs the parent's ``TraceContext`` and a
  ``ChannelExporter`` itself — the hand-rolled wiring the rule's
  installer check recognises on the target's call path;
* ``spawn_traced_worker`` delegates to
  :func:`repro.obs.live.spawn_traced`, which does the same wiring
  without a raw ``Process(target=...)`` call site at all.
"""

import multiprocessing

from repro.obs.live import ChannelExporter, spawn_traced
from repro.obs.tracer import TraceContext, Tracer

__all__ = ["spawn_traced_worker", "spawn_worker", "worker"]


def worker(scale, context_payload, conn):
    context = TraceContext.from_dict(context_payload)
    tracer = Tracer(trace_id=context.trace_id)
    exporter = ChannelExporter(conn, tracer, source="child")
    tracer.add_listener(exporter)
    try:
        with tracer.use_context(context):
            with tracer.span("graph500.bfs", scale=scale):
                tracer.count("bfs.levels", 3)
    finally:
        exporter.close()


def spawn_worker(tracer):
    recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
    context = tracer.current_context()
    proc = multiprocessing.Process(
        target=worker, args=(8, context.as_dict(), send_conn)
    )
    proc.start()
    send_conn.close()
    return proc, recv_conn


def spawn_traced_worker(tracer, collector):
    return spawn_traced(
        worker_traced, (8,), tracer=tracer, collector=collector
    )


def worker_traced(scale):
    from repro.obs.tracer import get_tracer

    get_tracer().count("bfs.levels", scale)
