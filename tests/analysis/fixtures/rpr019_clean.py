"""Clean twin of rpr019_bad: the traversal is an iterative frontier loop.

Same reachability computation, no call-graph cycle — the worklist
replaces the mutual recursion.
"""

__all__ = ["scan_level"]


def scan_level(graph, parent, frontier):
    next_frontier = []
    for v in frontier:
        for w in graph.neighbors(v):
            if parent[w] < 0:
                parent[w] = v
                next_frontier.append(w)
    return next_frontier
