"""Seeded RPR026 bug: a spawned child whose call path drives the
channel out of order.

``launch`` spawns ``child_main``; two calls down, ``_stream`` sends a
``metrics`` frame before ``hello``.  RPR021 is satisfied (the child
*has* a channel) — RPR026 tightens it to "drives it in order".  The
dynamic twin is strict capture conformance over the same frame
sequence.
"""

import multiprocessing

from repro.obs.live import ChannelExporter

__all__ = ["launch"]


def _stream(conn, tracer):
    exporter = ChannelExporter(conn, tracer, source="child")
    exporter.flush()  # metrics frame before hello
    exporter.hello()
    exporter.close()


def child_main(conn, tracer):
    _stream(conn, tracer)


def launch(conn, tracer):
    proc = multiprocessing.Process(target=child_main, args=(conn, tracer))
    proc.start()
    proc.join()
