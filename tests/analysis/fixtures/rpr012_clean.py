"""Clean twin of rpr012_bad: the scratch buffer is consumed."""

import numpy as np

__all__ = ["gather_step"]


def gather_step(workspace, frontier):
    out = workspace.buffer("gathered", frontier.size, np.int64)
    out[: frontier.size] = frontier
    return int(out[: frontier.size].sum())
