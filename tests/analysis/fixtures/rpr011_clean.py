"""Clean twin of rpr011_bad: detach before reusing the workspace."""

from repro.bfs.result import BFSResult

__all__ = ["run_detach_then_reuse"]


def run_detach_then_reuse(workspace, graph, source):
    parent, level = workspace.begin(source)
    result = BFSResult(source=source, parent=parent, level=level)
    result = result.detach()
    # detached: the result owns copies, workspace reuse is safe
    parent[source] = -1
    parent2, level2 = workspace.begin(source + 1)
    return result, parent2, level2
