"""Seeded RPR010 bugs: silent narrowing + mixed-dtype index math."""

import numpy as np

__all__ = ["narrowing_step", "mixed_step"]


def narrowing_step(workspace, graph, frontier):
    # iota is int64 by contract; astype(int32) truncates past 2^31
    idx = workspace.iota(frontier.size)
    small = idx.astype(np.int32)
    starts = graph.offsets[frontier]
    # constructing an int32 array from known-int64 offsets
    packed = np.asarray(starts, dtype=np.int32)
    return small, packed


def mixed_step(workspace, n):
    words = workspace.buffer("bits", n, np.uint64)
    shifts = workspace.iota(n)
    # uint64 x int64 array arithmetic promotes to float64
    return words >> shifts
