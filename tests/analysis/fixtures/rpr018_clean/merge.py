"""Owning module for the rpr018_clean fixture: gated helper + mediator."""

__all__ = ["apply_merge"]


def merge_claims(parent, cand_parent, rows):
    # repro: owned[parent]
    parent[rows] = cand_parent[rows]
    return parent


def apply_merge(parent, cand_parent, rows):
    return merge_claims(parent, cand_parent, rows)
