"""Clean twin of rpr018_bad: the public entry goes through a mediator
in the helper's *own* module.

``merge.apply_merge`` lives beside the gated ``merge_claims`` and is
the sanctioned way in; callers outside the owning module never touch
the gated helper directly, so the ownership obligation stops there.
"""

import merge

__all__ = ["safe_merge"]


def safe_merge(parent, cand_parent, rows):
    return merge.apply_merge(parent, cand_parent, rows)
