"""Clean twin of rpr013_bad: the ownership protocol, followed.

Workers only read shared state, write their own chunk / per-thread
scratch / locals, and return proposals; the shared-map writes happen
after ``pool.map`` has drained — on the main thread.
"""

import numpy as np

__all__ = ["protocol_top_down_level"]


def protocol_top_down_level(pool, workspace, graph, frontier, parent,
                            level, depth):
    def expand(chunk):
        scratch = workspace.buffer("expand", chunk.size, np.int64)
        scratch[: chunk.size] = chunk  # per-thread scratch: permitted
        chunk[:] = np.sort(chunk)  # the worker's own disjoint chunk
        local = np.zeros(chunk.size, dtype=np.int64)
        local[:] = depth  # locally allocated: permitted
        fresh = parent[scratch[: chunk.size]] < 0
        return chunk[fresh]

    proposals = list(pool.map(expand, np.array_split(frontier, 4)))
    winners = np.concatenate(proposals)
    # main-thread merge: the pool has joined
    parent[winners] = depth
    level[winners] = depth + 1
    return winners
