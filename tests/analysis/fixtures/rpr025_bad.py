"""Seeded RPR025 bug: an open channel leaks when a helper raises two
hops down.

``stream`` does call ``exporter.close()`` — but ``_relay`` (which
raises nothing itself) calls ``_deliver``, which raises ``LiveError``.
Only the call-graph *fixpoint* marks ``_relay`` as raising; under
one-level raise facts the risky path is invisible, which the
blind-spot regression test asserts.  At runtime the same scenario
leaves the monitor's channel-exporter machine outside its accepting
states.
"""

from repro.errors import LiveError
from repro.obs.live import ChannelExporter

__all__ = ["stream"]


def _deliver(frame):
    if not frame:
        raise LiveError("empty frame")


def _relay(frames):
    # no raise in sight: the LiveError lives one more hop down
    for frame in frames:
        _deliver(frame)


def stream(conn, tracer, frames):
    exporter = ChannelExporter(conn, tracer, source="demo")
    exporter.hello()
    _relay(frames)  # can raise with the stream open
    exporter.close()
