"""Clean twin of rpr010_bad: same shapes, no narrowing."""

import numpy as np

__all__ = ["narrowing_step", "mixed_step"]


def mixed_step(workspace, n):
    words = workspace.buffer("bits", n, np.uint64)
    shifts = workspace.buffer("shifts", n, np.uint64)
    # matched dtypes: no promotion surprise
    return words >> shifts


def narrowing_step(workspace, graph, frontier, rows):
    idx = workspace.iota(frontier.size)
    wide = idx.astype(np.int64)
    starts = graph.offsets[frontier]
    packed = np.asarray(starts, dtype=np.int64)
    # `rows` has no seeded convention: narrowing an *unknown* dtype is
    # out of scope for the lattice (unknown never produces a finding)
    mystery = rows.astype(np.int32)
    return wide, packed, mystery
