"""Seeded RPR011 bug: workspace write while a BFSResult still aliases."""

from repro.bfs.result import BFSResult

__all__ = ["run_and_corrupt", "run_and_reset"]


def run_and_corrupt(workspace, graph, source):
    parent, level = workspace.begin(source)
    result = BFSResult(source=source, parent=parent, level=level)
    # result still aliases the workspace maps: this write corrupts it
    parent[source] = -1
    return result


def run_and_reset(workspace, graph, source):
    parent, level = workspace.begin(source)
    result = BFSResult(source=source, parent=parent, level=level)
    # begin() resets the maps in place — same hazard, different syntax
    parent2, level2 = workspace.begin(source + 1)
    return result, parent2, level2
