"""Seeded RPR017 bug: the racy write hides in *another module*.

The worker looks clean, and so does everything RPR014's module-local
engine can see: ``helpers.claim_rows`` lives in a different file and
only its callee ``_store`` writes the shared ``parent`` map.  Only the
whole-program fixpoint connects worker -> claim_rows -> _store.
"""

import helpers
import numpy as np

__all__ = ["sneaky_level"]


def sneaky_level(pool, graph, frontier, parent, depth):
    def scan(chunk):
        helpers.claim_rows(chunk, parent, depth)
        return chunk

    return list(pool.map(scan, np.array_split(frontier, 4)))
