"""Helper module for the rpr017_bad fixture.

``claim_rows`` itself never writes ``parent`` — it forwards to
``_store``, which does.  A one-level summary of this module therefore
shows ``claim_rows`` as write-free.
"""

__all__ = ["claim_rows"]


def _store(rows, parent, depth):
    parent[rows] = depth


def claim_rows(rows, parent, depth):
    _store(rows, parent, depth)
