"""Clean twin of rpr015_bad: close() moved into a ``finally``.

The same two-hop raising call chain is present, but every statement
that can raise sits inside a try-body whose ``finally`` closes the
engine, so close-on-all-paths holds.
"""

from repro.bfs.parallel import ParallelBFS

__all__ = ["safe_traverse"]


def _step(graph, engine, v):
    if v < 0:
        raise ValueError("negative source vertex")
    return engine.run(graph, v)


def _mid(graph, engine, v):
    return _step(graph, engine, v)


def _drive(graph, engine, source):
    return _mid(graph, engine, source)


def safe_traverse(graph, source, threads):
    engine = ParallelBFS(num_threads=threads)
    try:
        return _drive(graph, engine, source)
    finally:
        engine.close()
