"""Seeded RPR014 bug: the racy write hides one call level down.

The worker itself looks clean — but it passes the shared ``parent``
map to a same-module helper whose effect summary writes it.
"""

import numpy as np

__all__ = ["sneaky_level"]


def _claim_rows(rows, parent, depth):
    # writes its `parent` parameter: recorded in the effect summary
    parent[rows] = depth


def sneaky_level(pool, graph, frontier, parent, depth):
    def scan(chunk):
        _claim_rows(chunk, parent, depth)
        return chunk

    return list(pool.map(scan, np.array_split(frontier, 4)))
