"""RPR023 control: run before the (transitive) close, never after."""

from repro.bfs.parallel import ParallelBFS

__all__ = ["finish"]


def _stop(engine):
    engine.close()


def shutdown(engine):
    _stop(engine)


def finish(graph, source, threads):
    engine = ParallelBFS(num_threads=threads)
    try:
        return engine.run(graph, source)
    finally:
        shutdown(engine)
