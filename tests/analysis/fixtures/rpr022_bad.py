"""Seeded RPR022 bugs: the frame protocol driven out of order.

``early_flush`` sends a ``metrics`` frame before ``hello`` opened the
stream; ``leaky_stream`` helloes but no path ever sends the
``metrics_final``/``bye`` close handshake.  The dynamic twin
(:class:`repro.obs.live.ProtocolMonitor` / strict capture replay)
catches both at runtime on the same scenario.
"""

from repro.obs.live import ChannelExporter

__all__ = ["early_flush", "leaky_stream"]


def early_flush(conn, tracer):
    exporter = ChannelExporter(conn, tracer, source="demo")
    exporter.flush()  # metrics frame before hello opened the stream
    exporter.hello()
    exporter.close()


def leaky_stream(conn, tracer):
    exporter = ChannelExporter(conn, tracer, source="demo")
    exporter.hello()
    exporter.flush()
    # clean exit without metrics_final/bye: the collector never sees
    # the final registry merge
