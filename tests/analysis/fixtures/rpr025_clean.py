"""RPR025 control: the raise-capable relay runs under a closing
``finally``, so every path finalizes the stream."""

from repro.errors import LiveError
from repro.obs.live import ChannelExporter

__all__ = ["stream"]


def _deliver(frame):
    if not frame:
        raise LiveError("empty frame")


def _relay(frames):
    for frame in frames:
        _deliver(frame)


def stream(conn, tracer, frames):
    exporter = ChannelExporter(conn, tracer, source="demo")
    exporter.hello()
    try:
        _relay(frames)
    finally:
        exporter.close()
