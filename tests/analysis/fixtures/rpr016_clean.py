"""Clean twin of rpr016_bad: the public boundary detaches the alias.

The private chain still hands workspace-derived storage around, but
``frontier_view`` copies before returning, so nothing workspace-aliased
crosses the public API.
"""

__all__ = ["frontier_view"]


def _grab(ws, k):
    return ws.buffer(k)


def _mid(ws, k):
    return _grab(ws, k)


def frontier_view(workspace, k):
    return _mid(workspace, k).copy()
