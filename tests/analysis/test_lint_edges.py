"""Lint engine edge cases: undecodable/unparsable inputs become
structured RPR000 diagnostics (both tiers), and the git-aware
``--changed`` file selection."""

import subprocess

import pytest

from repro.analysis import (
    DIAGNOSTIC_RULE,
    changed_python_files,
    lint_file,
    lint_paths,
)
from repro.cli import main
from repro.errors import LintError


@pytest.fixture()
def broken_tree(tmp_path):
    (tmp_path / "ok.py").write_text("X = 1\n", encoding="utf-8")
    (tmp_path / "empty.py").write_text("", encoding="utf-8")
    (tmp_path / "syntax.py").write_text(
        "def broken(:\n    pass\n", encoding="utf-8"
    )
    (tmp_path / "binary.py").write_bytes(b"\x80\x81\xfe\xff\x00")
    return tmp_path


class TestDiagnostics:
    def test_syntax_error_is_a_structured_diagnostic(self, broken_tree):
        violations = lint_file(broken_tree / "syntax.py")
        assert [v.rule for v in violations] == [DIAGNOSTIC_RULE]
        assert "cannot parse" in violations[0].message
        assert violations[0].line == 1

    def test_undecodable_file_is_a_structured_diagnostic(self, broken_tree):
        violations = lint_file(broken_tree / "binary.py")
        assert [v.rule for v in violations] == [DIAGNOSTIC_RULE]
        assert "UTF-8" in violations[0].message

    def test_empty_file_is_not_a_diagnostic(self, broken_tree):
        """An empty module parses: ordinary rules may fire (RPR006 wants
        __all__) but it must not be reported as unanalyzable."""
        violations = lint_file(broken_tree / "empty.py")
        assert DIAGNOSTIC_RULE not in {v.rule for v in violations}

    def test_missing_file_still_raises(self, tmp_path):
        with pytest.raises(LintError):
            lint_file(tmp_path / "nope.py")

    @pytest.mark.parametrize("deep", [False, True])
    def test_lint_paths_reports_and_keeps_going(self, broken_tree, deep):
        """Both tiers: broken files yield diagnostics, healthy files are
        still checked, and (deep tier) the call graph is built over
        whatever parses."""
        violations, checked = lint_paths([broken_tree], deep=deep)
        assert checked == 4
        diags = [v for v in violations if v.rule == DIAGNOSTIC_RULE]
        assert {v.path.rsplit("/", 1)[-1] for v in diags} == {
            "syntax.py",
            "binary.py",
        }

    def test_cli_exit_is_nonzero_on_diagnostics(self, broken_tree, capsys):
        assert main(["lint", str(broken_tree / "syntax.py")]) == 1
        err = capsys.readouterr()
        assert DIAGNOSTIC_RULE in err.out


def _git(tmp_path, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=tmp_path,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tmp_path),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture()
def git_repo(tmp_path):
    _git(tmp_path, "init", "-q")
    (tmp_path / "committed.py").write_text("A = 1\n", encoding="utf-8")
    (tmp_path / "other.txt").write_text("not python\n", encoding="utf-8")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    return tmp_path


class TestChanged:
    def test_untracked_and_modified_files_are_selected(self, git_repo):
        (git_repo / "committed.py").write_text("A = 2\n", encoding="utf-8")
        (git_repo / "fresh.py").write_text("B = 1\n", encoding="utf-8")
        (git_repo / "ignored.txt").write_text("x\n", encoding="utf-8")
        changed = changed_python_files([git_repo], root=git_repo)
        assert sorted(p.name for p in changed) == ["committed.py", "fresh.py"]

    def test_clean_tree_selects_nothing(self, git_repo):
        assert changed_python_files([git_repo], root=git_repo) == []

    def test_scope_filter_applies(self, git_repo):
        sub = git_repo / "pkg"
        sub.mkdir()
        (sub / "inside.py").write_text("C = 1\n", encoding="utf-8")
        (git_repo / "outside.py").write_text("D = 1\n", encoding="utf-8")
        changed = changed_python_files([sub], root=git_repo)
        assert [p.name for p in changed] == ["inside.py"]

    def test_outside_git_raises(self, tmp_path):
        with pytest.raises(LintError):
            changed_python_files([tmp_path], root=tmp_path)
