"""Typestate & protocol verification tier (RPR022–RPR026).

Each rule has a golden bad/clean fixture pair; RPR023 and RPR025
additionally prove the interprocedural lift (the one-level view
provably misses them); and every static violation is re-caught at
runtime by the dynamic twin (:class:`~repro.obs.live.ProtocolMonitor`
or strict capture conformance) on the same scenario.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    PROTOCOLS,
    TypestateAnalysis,
    get_protocol,
    lint_paths,
    lint_source,
    project_from_sources,
)
from repro.analysis.typestate import protocol_for_ctor, protocol_for_type
from repro.errors import AnalysisError, LiveError, ProtocolError
from repro.obs.live import (
    CaptureFile,
    ChannelExporter,
    FrameConformance,
    ProtocolMonitor,
    read_capture,
)
from repro.obs.tracer import Tracer

FIXTURES = Path(__file__).parent / "fixtures"

TYPESTATE_RULES = ("RPR022", "RPR023", "RPR024", "RPR025", "RPR026")


def _fixture_source(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def _load_fixture_module(name: str):
    """Import a fixture file as a real module (the fixtures directory
    is not a package)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        f"typestate_fixture_{name.removesuffix('.py')}", FIXTURES / name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _lint_fixture(name: str, rule: str):
    return lint_source(
        _fixture_source(name),
        path=f"src/repro/bfs/{name}",
        select=[rule],
        deep=True,
    )


class _FakeSink:
    """Pipe stand-in: accepts frames, optionally replays them."""

    def __init__(self) -> None:
        self.frames: list[bytes] = []

    def send_bytes(self, data: bytes) -> None:
        self.frames.append(data)


# -- golden pairs ----------------------------------------------------------


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule", TYPESTATE_RULES)
    def test_bad_fixture_is_caught(self, rule):
        violations = _lint_fixture(f"{rule.lower()}_bad.py", rule)
        assert violations, f"{rule} must fire on its bad fixture"
        assert {v.rule for v in violations} == {rule}

    @pytest.mark.parametrize("rule", TYPESTATE_RULES)
    def test_clean_fixture_is_silent(self, rule):
        assert _lint_fixture(f"{rule.lower()}_clean.py", rule) == []

    def test_rpr022_names_both_defects(self):
        violations = _lint_fixture("rpr022_bad.py", "RPR022")
        messages = " ".join(v.message for v in violations)
        assert "hello" in messages
        assert len(violations) == 2  # early flush + never finalized

    def test_rpr024_names_the_live_result(self):
        (violation,) = _lint_fixture("rpr024_bad.py", "RPR024")
        assert "`first`" in violation.message
        assert "detach" in violation.message

    def test_rpr026_names_the_guilty_function(self):
        (violation,) = _lint_fixture("rpr026_bad.py", "RPR026")
        assert "child_main" in violation.message
        assert "_stream" in violation.message


# -- the interprocedural lift ----------------------------------------------


class TestInterproceduralBlindSpot:
    """The bad fixtures for RPR023/RPR025 plant violations the
    one-level view provably misses (the PR 6 regression pattern)."""

    @pytest.mark.parametrize(
        ("fixture", "rule"),
        [("rpr023_bad.py", "RPR023"), ("rpr025_bad.py", "RPR025")],
    )
    def test_one_level_view_misses_it(self, fixture, rule):
        path = f"src/repro/bfs/{fixture}"
        source = _fixture_source(fixture)
        project = project_from_sources([(path, source)])
        blind = TypestateAnalysis(
            project,
            extra_sources={path: source},
            interprocedural=False,
        )
        assert blind.run()[rule] == {}, (
            f"{rule}: the intraprocedural view must NOT see this "
            "violation — otherwise the fixture no longer proves the "
            "interprocedural lift"
        )
        full = TypestateAnalysis(
            project, extra_sources={path: source}
        )
        assert full.run()[rule], f"{rule}: the fixpoint view must see it"


# -- the machine registry --------------------------------------------------


class TestProtocolSpecs:
    def test_registry_covers_the_contracts(self):
        assert set(PROTOCOLS) == {
            "live-channel",
            "channel-exporter",
            "collector",
            "flight-recorder",
            "bfs-workspace",
            "parallel-bfs",
        }

    def test_unknown_machine_raises(self):
        with pytest.raises(AnalysisError, match="unknown protocol"):
            get_protocol("nope")

    def test_ctor_and_type_lookup(self):
        assert protocol_for_ctor("ParallelBFS").name == "parallel-bfs"
        assert protocol_for_type("Collector").name == "collector"
        assert protocol_for_ctor("CSRGraph") is None

    def test_step_semantics(self):
        spec = get_protocol("channel-exporter")
        assert spec.step("created", "hello") == "open"
        assert spec.step("created", "flush") is None
        assert spec.is_accepting("closed")
        assert not spec.is_accepting("open")

    def test_dot_export_is_wellformed(self):
        dot = get_protocol("live-channel").to_dot()
        assert dot.startswith('digraph "live-channel"')
        assert "doublecircle" in dot  # accepting states marked
        assert "hello" in dot and "bye" in dot
        assert dot.rstrip().endswith("}")

    def test_as_dict_round_trips_the_shape(self):
        payload = get_protocol("collector").as_dict()
        assert payload["name"] == "collector"
        assert payload["initial"] == "created"
        assert ["attached", "exit", "detached"] in [
            list(t) for t in payload["transitions"]
        ]


# -- suppression -----------------------------------------------------------


class TestNoqa:
    def test_noqa_silences_each_rule(self):
        source = (
            '"""Fixture."""\n'
            "\n"
            "from repro.obs.live import ChannelExporter\n"
            "\n"
            "\n"
            "def stream(conn, tracer):\n"
            "    exporter = ChannelExporter(conn, tracer, source='x')\n"
            "    exporter.flush()  # repro: noqa[RPR022]\n"
            "    exporter.hello()\n"
            "    exporter.close()\n"
        )
        assert (
            lint_source(
                source,
                path="src/repro/bfs/x.py",
                select=["RPR022"],
                deep=True,
            )
            == []
        )

    def test_noqa_on_multiline_statement_extent(self):
        """A marker on the closing line of a multi-line call suppresses
        the violation reported at the statement's first line."""
        source = (
            '"""Fixture."""\n'
            "\n"
            "from repro.obs.live import ChannelExporter\n"
            "\n"
            "\n"
            "def stream(conn, tracer):\n"
            "    exporter = ChannelExporter(conn, tracer, source='x')\n"
            "    exporter.flush(\n"
            "    )  # repro: noqa[RPR022]\n"
            "    exporter.hello()\n"
            "    exporter.close()\n"
        )
        assert (
            lint_source(
                source,
                path="src/repro/bfs/x.py",
                select=["RPR022"],
                deep=True,
            )
            == []
        )
        # the same source without the marker does fire, at line 8
        stripped = source.replace("  # repro: noqa[RPR022]", "")
        violations = lint_source(
            stripped,
            path="src/repro/bfs/x.py",
            select=["RPR022"],
            deep=True,
        )
        assert [v.line for v in violations] == [8]

    @pytest.mark.parametrize(
        ("fixture", "rule"),
        [(f"{r.lower()}_bad.py", r) for r in TYPESTATE_RULES],
    )
    def test_noqa_silences_every_bad_fixture(self, fixture, rule):
        source = _fixture_source(fixture)
        lines = source.splitlines()
        violations = _lint_fixture(fixture, rule)
        for v in violations:
            lines[v.line - 1] += f"  # repro: noqa[{rule}]"
        suppressed = lint_source(
            "\n".join(lines) + "\n",
            path=f"src/repro/bfs/{fixture}",
            select=[rule],
            deep=True,
        )
        assert suppressed == []


# -- dynamic twins ---------------------------------------------------------


class TestDynamicTwins:
    """Every static rule's violation re-caught at runtime on the same
    scenario, through the *same* ProtocolSpec machines."""

    def test_rpr022_twin_frames_before_hello(self, tmp_path):
        # the early_flush fixture scenario, executed for real
        capture = tmp_path / "bad.capture"
        tracer = Tracer()
        with CaptureFile(capture) as writer:
            exporter = ChannelExporter(writer, tracer, source="demo")
            exporter.flush()  # metrics frame before hello
            exporter.hello()
            exporter.close()
        with pytest.raises(ProtocolError, match="illegal in state"):
            list(read_capture(capture, conformance="strict"))

    def test_rpr022_twin_missing_finalize(self, tmp_path):
        # the leaky_stream fixture scenario: hello but no close
        capture = tmp_path / "leak.capture"
        tracer = Tracer()
        with CaptureFile(capture) as writer:
            exporter = ChannelExporter(writer, tracer, source="demo")
            exporter.hello()
            exporter.flush()
        with pytest.raises(ProtocolError, match="not an accepting"):
            list(read_capture(capture, conformance="strict"))

    def test_rpr023_twin_run_after_close(self):
        # the rpr023_bad scenario on a real engine: the strict monitor
        # rejects run() before it reaches the closed executor
        from repro.bfs.parallel import ParallelBFS

        engine = ParallelBFS(num_threads=2)
        monitor = ProtocolMonitor(strict=True)
        monitor.attach(engine, subject="engine")
        engine.close()
        with pytest.raises(ProtocolError, match="illegal in state"):
            engine.run(None, 0)  # never reaches the real traversal
        assert monitor.violations[0].event == "run"

    def test_rpr024_twin_reuse_while_lent(self):
        # the rpr024_bad scenario on a real workspace + engine
        from repro.bfs.parallel import ParallelBFS
        from repro.bfs.workspace import BFSWorkspace
        from repro.graph.generators import grid2d

        graph = grid2d(4, 4)
        monitor = ProtocolMonitor()
        with ParallelBFS(num_threads=2) as engine:
            ws = BFSWorkspace(graph.num_vertices)
            monitor.begin("bfs-workspace", "ws")
            first = engine.run(graph, 0, workspace=ws)
            monitor.lend("ws", first)
            second = engine.run(graph, 5, workspace=ws)
            monitor.lend("ws", second)  # first never detached
        assert [v.event for v in monitor.violations] == ["traverse"]
        assert monitor.violations[0].machine == "bfs-workspace"

    def test_rpr024_twin_detach_resets(self):
        # the rpr024_clean scenario stays silent
        from repro.bfs.parallel import ParallelBFS
        from repro.bfs.workspace import BFSWorkspace
        from repro.graph.generators import grid2d

        graph = grid2d(4, 4)
        monitor = ProtocolMonitor()
        with ParallelBFS(num_threads=2) as engine:
            ws = BFSWorkspace(graph.num_vertices)
            monitor.begin("bfs-workspace", "ws")
            first = engine.run(graph, 0, workspace=ws)
            monitor.lend("ws", first)
            first.detach()
            second = engine.run(graph, 5, workspace=ws)
            monitor.lend("ws", second)
        assert monitor.violations == []

    def test_rpr025_twin_raise_leaves_stream_open(self):
        # the rpr025_bad scenario: _relay raises, close never runs
        fixture_mod = _load_fixture_module("rpr025_bad.py")
        tracer = Tracer()
        sink = _FakeSink()
        monitor = ProtocolMonitor()
        original = fixture_mod.ChannelExporter

        def instrumented(*args, **kwargs):
            exporter = original(*args, **kwargs)
            return monitor.attach(exporter, subject="exporter")

        # run the fixture's own code path with monitored exporters
        fixture_mod.ChannelExporter = instrumented
        with pytest.raises(LiveError):
            fixture_mod.stream(sink, tracer, frames=[None])
        violations = monitor.finish()
        assert violations, "the open stream must be reported"
        assert violations[0].state == "open"
        assert "not an accepting state" in violations[0].message

    def test_rpr026_twin_child_frames_nonconformant(self, tmp_path):
        # the rpr026_bad child's frame sequence, replayed strictly
        _stream = _load_fixture_module("rpr026_bad.py")._stream
        capture = tmp_path / "child.capture"
        tracer = Tracer()
        with CaptureFile(capture) as writer:
            _stream(writer, tracer)
        checker = FrameConformance(strict=False)
        for frame in read_capture(capture):
            checker.feed(frame)
        checker.finish()
        assert checker.violations, "out-of-order child frames"
        assert checker.violations[0].subject == "child"
        assert checker.violations[0].event == "metrics"

    def test_clean_capture_is_conformant(self, tmp_path):
        # the rpr026_clean child passes both twins
        _stream = _load_fixture_module("rpr026_clean.py")._stream
        capture = tmp_path / "clean.capture"
        tracer = Tracer()
        with CaptureFile(capture) as writer:
            _stream(writer, tracer)
        frames = list(read_capture(capture, conformance="strict"))
        assert [f["kind"] for f in frames] == [
            "hello", "metrics", "metrics_final", "bye",
        ]


# -- monitor mechanics -----------------------------------------------------


class TestProtocolMonitor:
    def test_attach_autodetects_the_machine(self):
        tracer = Tracer()
        exporter = ChannelExporter(_FakeSink(), tracer, source="m")
        monitor = ProtocolMonitor()
        monitor.attach(exporter)
        exporter.hello()
        exporter.close()
        assert monitor.violations == []
        subject = next(iter(monitor._subjects))
        assert monitor.state_of(subject) == "closed"

    def test_attach_unknown_type_raises(self):
        monitor = ProtocolMonitor()
        with pytest.raises(ProtocolError, match="no protocol machine"):
            monitor.attach(object())

    def test_strict_monitor_raises_on_first_violation(self):
        monitor = ProtocolMonitor(strict=True)
        monitor.begin("channel-exporter", "x")
        with pytest.raises(ProtocolError):
            monitor.observe("x", "flush")

    def test_transitions_emit_instants_for_adoption(self):
        # a tracer-connected monitor re-exports transitions; a second
        # monitor adopts them via the TraceListener hook — the
        # cross-process path, exercised in-process
        emitting_tracer = Tracer()
        emitter = ProtocolMonitor(tracer=emitting_tracer)
        adopter = ProtocolMonitor()
        emitting_tracer.add_listener(adopter)
        emitter.begin("channel-exporter", "child-exp")
        emitter.observe("child-exp", "hello")
        emitter.observe("child-exp", "close")
        assert adopter.state_of("child-exp") == "closed"
        assert adopter.violations == []

    def test_unknown_subject_is_ignored(self):
        monitor = ProtocolMonitor(strict=True)
        monitor.observe("ghost", "hello")  # no begin: no-op
        assert monitor.violations == []


# -- conformance plumbing --------------------------------------------------


class TestConformancePlumbing:
    def test_read_capture_rejects_unknown_mode(self, tmp_path):
        capture = tmp_path / "x.capture"
        with CaptureFile(capture):
            pass
        with pytest.raises(LiveError, match="unknown conformance"):
            list(read_capture(capture, conformance="lenient"))

    def test_collector_replay_passes_conformance_through(self, tmp_path):
        from repro.obs.live import Collector

        capture = tmp_path / "bad.capture"
        tracer = Tracer()
        with CaptureFile(capture) as writer:
            exporter = ChannelExporter(writer, tracer, source="demo")
            exporter.flush()  # before hello
            exporter.hello()
            exporter.close()
        with Collector(Tracer()) as collector:
            with pytest.raises(ProtocolError):
                collector.replay(capture, conformance="strict")

    def test_cli_strict_protocol_gate(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.capture"
        tracer = Tracer()
        with CaptureFile(bad) as writer:
            exporter = ChannelExporter(writer, tracer, source="demo")
            exporter.flush()
            exporter.hello()
            exporter.close()
        good = tmp_path / "good.capture"
        tracer = Tracer()
        with CaptureFile(good) as writer:
            exporter = ChannelExporter(writer, tracer, source="demo")
            exporter.hello()
            exporter.close()
        assert main(["live", "check", str(bad), "--strict-protocol"]) == 2
        assert "protocol" in capsys.readouterr().err
        # without the flag the same capture passes the SLO-only gate
        assert main(["live", "check", str(bad)]) == 0
        assert main(["live", "check", str(good), "--strict-protocol"]) == 0


# -- the package lints clean under the new rules ---------------------------


def test_package_is_typestate_clean():
    violations, checked = lint_paths(
        [Path("src/repro")],
        select=list(TYPESTATE_RULES),
        deep=True,
    )
    assert checked > 80
    assert violations == []
