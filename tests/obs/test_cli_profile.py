"""The ``repro-bfs profile`` subcommand and the ``--profile`` /
``--flight-recorder`` ride-along flags."""

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ProfileError
from repro.obs.profile import validate_collapsed, validate_snapshot


class TestParser:
    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.command == "profile"
        assert args.scale == 12
        assert args.engine == "hybrid"
        assert args.hz == 997.0
        assert args.repeat == 5
        assert not args.flight_recorder
        assert not args.inject_anomaly

    def test_ride_along_flags_on_bfs(self):
        args = build_parser().parse_args(
            ["bfs", "--profile", "--flight-recorder"]
        )
        assert args.profile and args.flight_recorder

    def test_ride_along_flags_on_graph500_and_trace(self):
        for cmd in ("graph500", "trace"):
            args = build_parser().parse_args([cmd, "--profile"])
            assert args.profile and not args.flight_recorder


class TestProfileCommand:
    def test_json_run_writes_validated_artifacts(self, capsys, tmp_path):
        rc = main(
            [
                "profile",
                "--scale", "8",
                "--repeat", "2",
                "--out", str(tmp_path),
                "--history", str(tmp_path / "runs.jsonl"),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale"] == 8
        assert payload["engine"] == "hybrid"
        assert payload["samples"] >= 0
        assert payload["profile"]["alloc"]["windows"] > 0
        assert payload["explain"]["levels"]
        # per-level measured totals equal the level sum exactly
        assert payload["explain"]["measured_total_s"] == pytest.approx(
            sum(lv["measured_s"] for lv in payload["explain"]["levels"])
        )
        collapsed = tmp_path / "profile-s8-hybrid.collapsed"
        trace = tmp_path / "profile-s8-hybrid.trace.json"
        assert collapsed.exists() and trace.exists()
        validate_collapsed(collapsed.read_text())
        history = (tmp_path / "runs.jsonl").read_text().splitlines()
        assert len(history) == 1
        record = json.loads(history[0])
        assert record["kind"] == "profile"
        assert "explain" in record["meta"]

    def test_warm_kernels_report_clean(self, capsys, tmp_path):
        """PR 2's claim, adjudicated on a real run: the warm workspace
        allocates nothing graph-sized inside level kernels."""
        rc = main(
            [
                "profile",
                "--scale", "9",
                "--repeat", "2",
                "--no-sampler",
                "--out", str(tmp_path),
                "--history", str(tmp_path / "runs.jsonl"),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["alloc"]["clean"] is True

    def test_inject_anomaly_fires_snapshot(self, capsys, tmp_path):
        rc = main(
            [
                "profile",
                "--scale", "8",
                "--repeat", "3",
                "--inject-anomaly",
                "--no-sampler",
                "--no-alloc",
                "--out", str(tmp_path),
                "--history", str(tmp_path / "runs.jsonl"),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        snapshots = payload["snapshots"]
        assert snapshots, "injected 3x slowdown must trigger a snapshot"
        meta = validate_snapshot(snapshots[0]["path"])
        assert meta["reason"].startswith("slow-span:")
        # the digest is the handle that lands in runs.jsonl
        record = json.loads(
            (tmp_path / "runs.jsonl").read_text().splitlines()[0]
        )
        digests = [s["digest"] for s in record["meta"]["snapshots"]]
        assert snapshots[0]["digest"] in digests

    def test_tiles_engine_prices_tile_family(self, capsys, tmp_path):
        rc = main(
            [
                "profile",
                "--scale", "8",
                "--repeat", "1",
                "--bottom-up", "tiles",
                "--no-sampler",
                "--no-alloc",
                "--out", str(tmp_path),
                "--history", str(tmp_path / "runs.jsonl"),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        families = payload["explain"]["by_kernel"]
        assert "tiles" in families
        tiles_rows = [
            lv for lv in payload["explain"]["levels"]
            if lv["kernel"] == "tiles"
        ]
        assert all("no-tile-model" not in lv["flags"] for lv in tiles_rows)

    def test_text_output_renders_report(self, capsys, tmp_path):
        rc = main(
            [
                "profile",
                "--scale", "8",
                "--repeat", "1",
                "--no-sampler",
                "--out", str(tmp_path),
                "--history", str(tmp_path / "runs.jsonl"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "explain report" in out
        assert "alloc:" in out

    def test_rejects_bad_repeat(self, capsys, tmp_path):
        rc = main(
            [
                "profile",
                "--scale", "8",
                "--repeat", "0",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 2


class TestRideAlong:
    def test_bfs_profile_lands_in_history(self, capsys, tmp_path):
        rc = main(
            [
                "bfs",
                "--scale", "8",
                "--profile",
                "--profile-out", str(tmp_path / "prof"),
                "--history", str(tmp_path / "runs.jsonl"),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "sampler" in payload["profile"]
        assert "alloc" in payload["profile"]
        record = json.loads(
            (tmp_path / "runs.jsonl").read_text().splitlines()[0]
        )
        assert "profile" in record["meta"]
        assert list((tmp_path / "prof").glob("bfs-s8-*.collapsed"))

    def test_graph500_flight_recorder_only(self, capsys, tmp_path):
        rc = main(
            [
                "graph500",
                "--scale", "8",
                "--roots", "2",
                "--flight-recorder",
                "--profile-out", str(tmp_path / "prof"),
                "--history", str(tmp_path / "runs.jsonl"),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "flight_recorder" in payload["profile"]
        assert "sampler" not in payload["profile"]
