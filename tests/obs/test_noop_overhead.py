"""The disabled tracer must stay near-free on the BFS hot path."""

from repro.obs import NULL_TRACER, get_tracer, now
from repro.obs.tracer import _NULL_SPAN


class TestNoOpPath:
    def test_process_default_is_disabled(self):
        # Unless a test/CLI installed one, the ambient tracer is the
        # null singleton — engines resolve it once per traversal.
        tracer = get_tracer()
        if tracer is NULL_TRACER:
            assert not tracer.enabled

    def test_null_span_is_shared_singleton(self):
        # No per-call allocation: every disabled span() returns the
        # same object, so a million-level traversal allocates nothing.
        spans = {id(NULL_TRACER.span(f"s{i}", depth=i)) for i in range(100)}
        assert spans == {id(_NULL_SPAN)}

    def test_null_calls_accumulate_no_state(self):
        for i in range(1000):
            with NULL_TRACER.span("bfs.level", depth=i) as sp:
                sp.set("claimed", i)
            NULL_TRACER.instant("bfs.direction", depth=i)
            NULL_TRACER.count("bfs.levels")
            NULL_TRACER.observe("frontier.claim_ratio", 0.5)
        assert NULL_TRACER.spans() == ()
        assert NULL_TRACER.events() == ()
        assert NULL_TRACER.metrics.names() == []

    def test_overhead_guard(self):
        # A generous absolute bound: 10k disabled span enter/exit +
        # instant + counter cycles must finish in well under a second
        # on any host (they are a handful of no-op method calls each).
        # The real whole-traversal bound (<3%) is enforced at bench
        # scale by benchmarks/bench_kernels.py.
        n = 10_000
        t0 = now()
        for i in range(n):
            with NULL_TRACER.span("bfs.level", depth=i):
                pass
            NULL_TRACER.instant("bfs.direction", depth=i)
            NULL_TRACER.count("bfs.levels")
        elapsed = now() - t0
        assert elapsed < 1.0, f"{n} no-op cycles took {elapsed:.3f}s"
