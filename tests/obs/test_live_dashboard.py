"""The ``repro-bfs top`` renderer: sparklines, full frames and the
dashboard loop (all driven on a manual clock, no real terminal)."""

import io
import math

from repro.obs.clock import ManualClock
from repro.obs.live import Collector, SLOPolicy
from repro.obs.live.dashboard import MIN_INTERVAL, Dashboard, render, sparkline
from repro.obs.tracer import Tracer


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_ramp_uses_full_range(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_flat_series_is_visible(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_nan_renders_as_space(self):
        line = sparkline([1.0, math.nan, 2.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_width_truncates_to_newest(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[-1] == "█"


def _collector(policies=()):
    clock = ManualClock()
    tracer = Tracer(clock=clock, trace_id="feedface")
    collector = Collector(
        tracer, policies=policies, window_seconds=1.0, clock=clock
    )
    return clock, tracer, collector


class TestRender:
    def test_empty_collector_renders_header(self):
        _, _, collector = _collector()
        frame = render(collector)
        assert "repro-bfs top" in frame
        assert "trace feedface" in frame
        assert "(no telemetry yet)" in frame
        assert "(idle)" in frame

    def test_metrics_rows_and_sparkline(self):
        clock, tracer, collector = _collector(
            policies=[SLOPolicy.parse("graph500.bfs<1.0@0.9")]
        )
        with collector:
            for duration in (0.1, 0.2, 0.3):
                clock.advance(1.0)
                with tracer.span("graph500.bfs"):
                    clock.advance(duration)
        frame = render(collector)
        assert "*graph500.bfs" in frame  # policed marker
        assert "slo" in frame
        assert "[ok]" in frame

    def test_active_spans_section(self):
        clock, tracer, collector = _collector()
        with collector:
            with tracer.span("graph500.run"):
                with tracer.span("graph500.bfs"):
                    frame = render(collector)
        assert "graph500.run > graph500.bfs" in frame
        assert "busy threads" in frame

    def test_firing_alert_shown(self):
        clock, tracer, collector = _collector(
            policies=[
                SLOPolicy.parse(
                    "graph500.bfs<0.5@0.9", fast_windows=2, slow_windows=4
                )
            ]
        )
        with collector:
            for _ in range(4):
                clock.advance(1.0)
                with tracer.span("graph500.bfs"):
                    clock.advance(2.0)
            collector.evaluate()
        frame = render(collector)
        assert "[FIRING]" in frame
        assert "! SLO graph500.bfs<0.5@0.9" in frame


class TestDashboard:
    def test_refresh_writes_plain_frame(self):
        _, _, collector = _collector()
        out = io.StringIO()
        dash = Dashboard(collector, out=out, ansi=False)
        frame = dash.refresh()
        assert out.getvalue() == frame
        assert "\x1b[" not in out.getvalue()
        assert dash.frames_rendered == 1

    def test_ansi_mode_clears_between_frames(self):
        _, _, collector = _collector()
        out = io.StringIO()
        dash = Dashboard(collector, out=out, ansi=True)
        dash.refresh()
        assert out.getvalue().startswith("\x1b[H\x1b[2J")

    def test_interval_floor(self):
        _, _, collector = _collector()
        dash = Dashboard(collector, out=io.StringIO(), interval=0.0)
        assert dash.interval == MIN_INTERVAL

    def test_run_until_done_renders_final_frame(self):
        _, _, collector = _collector()
        out = io.StringIO()
        dash = Dashboard(collector, out=out, interval=0.25, ansi=False)
        calls = {"n": 0}

        def done():
            calls["n"] += 1
            return calls["n"] > 2

        frames = dash.run(done)
        # two loop frames plus the final one
        assert frames == 3
        assert dash.frames_rendered == 3

    def test_refresh_evaluates_slos(self):
        clock, tracer, collector = _collector(
            policies=[
                SLOPolicy.parse(
                    "graph500.bfs<0.5@0.9", fast_windows=2, slow_windows=4
                )
            ]
        )
        with collector:
            for _ in range(4):
                clock.advance(1.0)
                with tracer.span("graph500.bfs"):
                    clock.advance(2.0)
            dash = Dashboard(collector, out=io.StringIO(), ansi=False)
            dash.refresh()
        # the refresh ran evaluate(): the alert latched
        assert len(collector.alerts) == 1
