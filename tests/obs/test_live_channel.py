"""The frame protocol: encode/decode, capture files (tolerant and
strict reads) and the ``ChannelExporter`` lifecycle."""

import struct

import pytest

from repro.errors import LiveError
from repro.obs.clock import ManualClock
from repro.obs.live.channel import (
    FRAME_KINDS,
    FRAME_SCHEMA,
    MAX_FRAME_BYTES,
    CaptureFile,
    ChannelExporter,
    decode_frame,
    encode_frame,
    read_capture,
)
from repro.obs.tracer import TraceContext, Tracer


class TestFrames:
    def test_round_trip(self):
        frame = {"kind": "hello", "schema": FRAME_SCHEMA, "pid": 123}
        assert decode_frame(encode_frame(frame)) == frame

    def test_every_kind_encodes(self):
        for kind in FRAME_KINDS:
            assert decode_frame(encode_frame({"kind": kind}))["kind"] == kind

    def test_unknown_kind_rejected_both_ways(self):
        with pytest.raises(LiveError):
            encode_frame({"kind": "nope"})
        with pytest.raises(LiveError):
            decode_frame(b'{"kind": "nope"}')

    def test_non_dict_rejected(self):
        with pytest.raises(LiveError):
            encode_frame(["kind", "hello"])
        with pytest.raises(LiveError):
            decode_frame(b"[1, 2]")

    def test_undecodable_bytes_rejected(self):
        with pytest.raises(LiveError):
            decode_frame(b"\xff\xfe not json")


class TestCaptureFile:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "t.capture"
        frames = [
            {"kind": "hello", "schema": FRAME_SCHEMA},
            {"kind": "metrics", "flat": {"teps": 1.5}},
            {"kind": "bye", "frames": 2},
        ]
        with CaptureFile(path) as capture:
            for frame in frames:
                capture.send_bytes(encode_frame(frame))
        assert capture.frames == 3
        assert list(read_capture(path)) == frames

    def test_closed_capture_refuses_writes(self, tmp_path):
        capture = CaptureFile(tmp_path / "t.capture")
        capture.close()
        capture.close()  # idempotent
        with pytest.raises(LiveError):
            capture.send_bytes(b"x")

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "t.capture"
        with CaptureFile(path) as capture:
            capture.send_bytes(encode_frame({"kind": "hello"}))
        payload = encode_frame({"kind": "bye"})
        with open(path, "ab") as fh:  # writer died mid-frame
            fh.write(struct.pack(">I", len(payload)))
            fh.write(payload[: len(payload) // 2])
        assert [f["kind"] for f in read_capture(path)] == ["hello"]
        with pytest.raises(LiveError):
            list(read_capture(path, strict=True))

    def test_truncated_length_prefix(self, tmp_path):
        path = tmp_path / "t.capture"
        with CaptureFile(path) as capture:
            capture.send_bytes(encode_frame({"kind": "hello"}))
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00")  # half a length prefix
        assert [f["kind"] for f in read_capture(path)] == ["hello"]
        with pytest.raises(LiveError):
            list(read_capture(path, strict=True))

    def test_undecodable_frame_skipped_unless_strict(self, tmp_path):
        path = tmp_path / "t.capture"
        with CaptureFile(path) as capture:
            capture.send_bytes(encode_frame({"kind": "hello"}))
            capture.send_bytes(b"garbage in the middle")
            capture.send_bytes(encode_frame({"kind": "bye"}))
        assert [f["kind"] for f in read_capture(path)] == ["hello", "bye"]
        with pytest.raises(LiveError):
            list(read_capture(path, strict=True))

    def test_absurd_length_always_rejected(self, tmp_path):
        path = tmp_path / "t.capture"
        with open(path, "wb") as fh:
            fh.write(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(LiveError):
            list(read_capture(path))


class _ListSink:
    """A send_bytes sink collecting decoded frames."""

    def __init__(self, broken=False):
        self.frames = []
        self.broken = broken

    def send_bytes(self, data):
        if self.broken:
            raise BrokenPipeError("reader went away")
        self.frames.append(decode_frame(data))


class TestChannelExporter:
    def _tracer(self):
        return Tracer(clock=ManualClock(), trace_id="tid")

    def test_sink_must_have_send_bytes(self):
        with pytest.raises(LiveError):
            ChannelExporter(object(), self._tracer(), source="c")

    def test_hello_carries_schema_and_identity(self):
        tracer = self._tracer()
        sink = _ListSink()
        ChannelExporter(sink, tracer, source="child-0").hello()
        (frame,) = sink.frames
        assert frame["kind"] == "hello"
        assert frame["schema"] == FRAME_SCHEMA
        assert frame["trace_id"] == "tid"
        assert frame["source"] == "child-0"
        assert frame["pid"] > 0

    def test_span_lifecycle_frames(self):
        tracer = self._tracer()
        sink = _ListSink()
        exporter = ChannelExporter(sink, tracer, source="c")
        tracer.add_listener(exporter)
        with tracer.span("work", scale=6):
            tracer.instant("note", detail=1)
        kinds = [f["kind"] for f in sink.frames]
        # root span closed -> metrics flush rides along
        assert kinds == ["span_open", "event", "span", "metrics"]
        span = sink.frames[2]["record"]
        assert span["name"] == "work"
        assert span["attrs"] == {"scale": 6}

    def test_metrics_flush_only_at_local_roots(self):
        tracer = self._tracer()
        sink = _ListSink()
        context = TraceContext(trace_id="tid", parent_span_id=77)
        exporter = ChannelExporter(
            sink, tracer, source="c", root_parent=77
        )
        tracer.add_listener(exporter)
        with tracer.use_context(context):
            with tracer.span("root"):
                with tracer.span("nested"):
                    pass
        kinds = [f["kind"] for f in sink.frames]
        # one flush (after the root span), not one per span close
        assert kinds.count("metrics") == 1
        assert kinds[-1] == "metrics"

    def test_close_handshake(self):
        tracer = self._tracer()
        sink = _ListSink()
        exporter = ChannelExporter(sink, tracer, source="c")
        tracer.add_listener(exporter)
        tracer.count("bfs.levels", 2)
        exporter.close()
        exporter.close()  # idempotent
        kinds = [f["kind"] for f in sink.frames]
        assert kinds == ["metrics_final", "bye"]
        payload = sink.frames[0]["payload"]
        assert payload["instruments"]["bfs.levels"]["value"] == 2.0
        assert sink.frames[1]["dropped"] == 0
        # detached: further telemetry is not exported
        with tracer.span("after"):
            pass
        assert len(sink.frames) == 2

    def test_broken_sink_becomes_counting_noop(self):
        tracer = self._tracer()
        sink = _ListSink(broken=True)
        exporter = ChannelExporter(sink, tracer, source="c")
        tracer.add_listener(exporter)
        with tracer.span("work"):
            pass
        # workload survived; drops were counted, nothing sent
        assert exporter.sent == 0
        assert exporter.dropped > 0
