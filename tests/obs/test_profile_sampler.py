"""The sampling stack profiler: capture, tagging, exports."""

import threading
import time

import pytest

from repro.errors import ProfileError
from repro.obs.export import chrome_trace
from repro.obs.profile import (
    StackSampler,
    validate_collapsed,
)
from repro.obs.profile.sampler import extend_chrome_trace
from repro.obs.tracer import Tracer


class TestConstruction:
    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ProfileError, match="sampling rate"):
            StackSampler(hz=0)
        with pytest.raises(ProfileError, match="sampling rate"):
            StackSampler(hz=-5)

    def test_rejects_bad_max_samples(self):
        with pytest.raises(ProfileError, match="max_samples"):
            StackSampler(max_samples=0)

    def test_start_twice_raises(self):
        sampler = StackSampler(hz=50)
        with sampler:
            with pytest.raises(ProfileError, match="already running"):
                sampler.start()

    def test_stop_without_start_is_noop(self):
        assert StackSampler().stop().samples == []


class TestCapture:
    """Deterministic single-capture tests (no sampler thread)."""

    def test_capture_records_current_thread(self):
        sampler = StackSampler()
        assert sampler._capture()
        mine = [s for s in sampler.samples
                if s.thread_id == threading.get_ident()]
        assert mine, "the calling thread must be sampled"
        sample = mine[0]
        assert sample.frames, "stack must not be empty"
        # root-first: a synchronous capture sees the test function with
        # the capture machinery innermost of it
        assert any(
            f.endswith(":test_capture_records_current_thread")
            for f in sample.frames
        )
        assert sample.frames[-1].endswith(":_capture_inner")
        assert all(":" in f for f in sample.frames)

    def test_samples_tagged_with_innermost_open_span(self):
        tracer = Tracer()
        sampler = StackSampler(tracer=tracer)
        with tracer.span("bfs.timed"):
            with tracer.span("bfs.level", level=0):
                sampler._capture()
        tagged = [s for s in sampler.samples
                  if s.thread_id == threading.get_ident()]
        assert tagged[0].span == "bfs.level"
        assert tagged[0].stack()[0] == "span:bfs.level"

    def test_untagged_without_tracer_or_span(self):
        sampler = StackSampler()
        sampler._capture()
        sample = [s for s in sampler.samples
                  if s.thread_id == threading.get_ident()][0]
        assert sample.span is None
        assert sample.stack()[0] == "span:-"

    def test_max_depth_truncates(self):
        sampler = StackSampler(max_depth=2)
        sampler._capture()
        assert all(len(s.frames) <= 2 for s in sampler.samples)

    def test_max_samples_sets_truncated(self):
        sampler = StackSampler(max_samples=1)
        sampler._capture()
        assert not sampler._capture()
        assert sampler.truncated

    def test_frame_labels_are_cached(self):
        sampler = StackSampler()
        sampler._capture()
        first = len(sampler._frame_labels)
        assert first > 0
        sampler._capture()
        # same code path: no new labels, identical interned strings
        s1, s2 = sampler.samples[0], sampler.samples[-1]
        shared = set(s1.frames) & set(s2.frames)
        assert shared

    def test_busy_seconds_accumulates(self):
        sampler = StackSampler()
        assert sampler.busy_seconds == 0.0
        sampler._capture()
        assert sampler.busy_seconds > 0.0


class TestSamplerThread:
    def test_samples_a_busy_workload(self):
        tracer = Tracer()
        with StackSampler(hz=400, tracer=tracer) as sampler:
            with tracer.span("bfs.timed"):
                deadline = time.perf_counter() + 0.1
                while time.perf_counter() < deadline:
                    sum(range(500))
        assert sampler.samples
        assert not sampler.running
        assert any(s.span == "bfs.timed" for s in sampler.samples)

    def test_stop_publishes_sample_count(self):
        tracer = Tracer()
        with StackSampler(hz=400, tracer=tracer):
            time.sleep(0.05)
        snap = tracer.metrics.snapshot()
        assert snap.get("profile.samples", {}).get("value", 0) > 0


class TestExports:
    def _sampled(self):
        tracer = Tracer()
        sampler = StackSampler(tracer=tracer)
        with tracer.span("bfs.level", level=0):
            sampler._capture()
        sampler._capture()
        return tracer, sampler

    def test_collapsed_text_validates(self):
        _, sampler = self._sampled()
        text = sampler.collapsed_text()
        assert validate_collapsed(text) == len(sampler.samples)

    def test_collapsed_counts_sum_to_samples(self):
        _, sampler = self._sampled()
        assert sum(sampler.collapsed().values()) == len(sampler.samples)

    def test_write_collapsed(self, tmp_path):
        _, sampler = self._sampled()
        path = tmp_path / "out.collapsed"
        rows = sampler.write_collapsed(path)
        assert rows == len(path.read_text().splitlines())

    def test_span_seconds_totals(self):
        _, sampler = self._sampled()
        per_span = sampler.span_seconds()
        expected = len(sampler.samples) / sampler.hz
        assert sum(per_span.values()) == pytest.approx(expected)
        assert "bfs.level" in per_span

    def test_extend_chrome_trace_adds_sample_track(self):
        tracer, sampler = self._sampled()
        trace = chrome_trace(tracer)
        extend_chrome_trace(trace, sampler, tracer)
        events = trace["traceEvents"]
        assert any(e.get("ph") == "P" for e in events)
        assert trace["stackFrames"]
        sample_events = [e for e in events if e.get("ph") == "P"]
        for ev in sample_events:
            assert ev["sf"] in trace["stackFrames"]
            assert ev["ts"] >= 0.0

    def test_extend_chrome_trace_requires_trace_events(self):
        tracer, sampler = self._sampled()
        with pytest.raises(ProfileError, match="traceEvents"):
            extend_chrome_trace({}, sampler, tracer)


class TestValidateCollapsed:
    def test_accepts_empty(self):
        assert validate_collapsed("") == 0

    def test_rejects_missing_count(self):
        with pytest.raises(ProfileError, match="frames count"):
            validate_collapsed("justoneword\n")

    def test_rejects_non_integer_count(self):
        with pytest.raises(ProfileError, match="not an int"):
            validate_collapsed("a;b xyz\n")

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ProfileError, match=">= 1"):
            validate_collapsed("a;b 0\n")

    def test_rejects_empty_frame(self):
        with pytest.raises(ProfileError, match="empty frame"):
            validate_collapsed("a;;b 3\n")
