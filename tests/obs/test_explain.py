"""The explain report: measured level seconds vs cost-model predictions."""

import pytest

from repro.arch import CPU_SANDY_BRIDGE, TENSOR_TILE
from repro.arch.costmodel import CostModel
from repro.bfs import pick_sources, profile_bfs
from repro.bfs.timing import timed_bfs
from repro.bfs.workspace import BFSWorkspace
from repro.errors import ProfileError
from repro.graph.generators import rmat
from repro.obs.profile import explain_traversal
from repro.obs.tracer import Tracer


@pytest.fixture(scope="module")
def workload():
    graph = rmat(9, 8, seed=3)
    source = int(pick_sources(graph, 1, seed=3)[0])
    return graph, source


@pytest.fixture(scope="module")
def model():
    return CostModel(CPU_SANDY_BRIDGE)


def _timed(graph, source, tracer, **kwargs):
    ws = BFSWorkspace(graph.num_vertices)
    kwargs.setdefault("m", 20.0)
    kwargs.setdefault("n", 100.0)
    return timed_bfs(graph, source, workspace=ws, tracer=tracer, **kwargs)


class TestExplain:
    def test_measured_totals_equal_span_sums_exactly(self, workload, model):
        """The acceptance bar: the report's measured seconds ARE the
        ``bfs.level`` span durations, not a re-measurement."""
        graph, source = workload
        tracer = Tracer()
        run = _timed(graph, source, tracer)
        profile, _ = profile_bfs(graph, source)
        report = explain_traversal(run, profile, model, tracer=tracer)
        span_sum = sum(
            r.duration for r in tracer.spans() if r.name == "bfs.level"
        )
        assert report.measured_total_s == span_sum
        assert [lv.measured_s for lv in report.levels] == [
            r.duration for r in tracer.spans() if r.name == "bfs.level"
        ]

    def test_rows_carry_direction_kernel_and_counters(self, workload, model):
        graph, source = workload
        run = _timed(graph, source, Tracer())
        profile, _ = profile_bfs(graph, source)
        report = explain_traversal(run, profile, model, tracer=Tracer())
        assert len(report.levels) == len(profile)
        for lv, rec in zip(report.levels, profile):
            assert lv.frontier_vertices == rec.frontier_vertices
            assert lv.predicted_s > 0
            assert lv.dominant_term in ("overhead", "memory", "compute")
        assert {lv.direction for lv in report.levels} <= {"td", "bu"}

    def test_by_kernel_aggregation_sums_levels(self, workload, model):
        graph, source = workload
        run = _timed(graph, source, Tracer())
        profile, _ = profile_bfs(graph, source)
        report = explain_traversal(run, profile, model, tracer=Tracer())
        families = report.by_kernel()
        assert sum(f["levels"] for f in families.values()) == len(report.levels)
        assert sum(f["measured_s"] for f in families.values()) == pytest.approx(
            report.measured_total_s
        )

    def test_tiles_levels_priced_by_tile_model(self, workload, model):
        graph, source = workload
        run = _timed(graph, source, Tracer(), bottom_up="tiles")
        profile, _ = profile_bfs(graph, source)
        tile_model = CostModel(TENSOR_TILE)
        report = explain_traversal(
            run, profile, model, tile_model=tile_model, tracer=Tracer()
        )
        tiles_rows = [lv for lv in report.levels if lv.kernel == "tiles"]
        assert tiles_rows, "hybrid run must have bottom-up tile levels"
        assert all("no-tile-model" not in lv.flags for lv in tiles_rows)

    def test_tiles_without_tile_model_is_flagged(self, workload, model):
        graph, source = workload
        run = _timed(graph, source, Tracer(), bottom_up="tiles")
        profile, _ = profile_bfs(graph, source)
        report = explain_traversal(run, profile, model, tracer=Tracer())
        tiles_rows = [lv for lv in report.levels if lv.kernel == "tiles"]
        assert all("no-tile-model" in lv.flags for lv in tiles_rows)

    def test_emits_explain_instant_event(self, workload, model):
        graph, source = workload
        tracer = Tracer()
        run = _timed(graph, source, tracer)
        profile, _ = profile_bfs(graph, source)
        explain_traversal(run, profile, model, tracer=tracer)
        events = [e for e in tracer.events() if e.name == "profile.explain"]
        assert len(events) == 1
        assert events[0].attrs["arch"] == model.spec.name

    def test_render_contains_every_level(self, workload, model):
        graph, source = workload
        run = _timed(graph, source, Tracer())
        profile, _ = profile_bfs(graph, source)
        report = explain_traversal(run, profile, model, tracer=Tracer())
        text = report.render()
        assert "explain report" in text
        assert "family" in text
        assert len(text.splitlines()) >= 3 + len(report.levels)

    def test_as_dict_round_trips_structure(self, workload, model):
        import json

        graph, source = workload
        run = _timed(graph, source, Tracer())
        profile, _ = profile_bfs(graph, source)
        report = explain_traversal(run, profile, model, tracer=Tracer())
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["arch"] == model.spec.name
        assert len(payload["levels"]) == len(report.levels)
        assert payload["measured_total_s"] == report.measured_total_s


class TestValidation:
    def test_mismatched_level_counts_raise(self, workload, model):
        graph, source = workload
        run = _timed(graph, source, Tracer(), direction="td", m=None, n=None)
        profile, _ = profile_bfs(graph, source, max_levels=1)
        with pytest.raises(ProfileError, match="levels"):
            explain_traversal(run, profile, model, tracer=Tracer())

    def test_mismatched_sources_raise(self, workload, model):
        graph, source = workload
        run = _timed(graph, source, Tracer())
        other = (source + 1) % graph.num_vertices
        profile, _ = profile_bfs(graph, other)
        with pytest.raises(ProfileError, match="source"):
            explain_traversal(run, profile, model, tracer=Tracer())

    def test_bad_band_raises(self, workload, model):
        graph, source = workload
        run = _timed(graph, source, Tracer())
        profile, _ = profile_bfs(graph, source)
        with pytest.raises(ProfileError, match="band"):
            explain_traversal(
                run, profile, model, band=(2.0, 1.0), tracer=Tracer()
            )
