"""The ``repro-bfs trace`` subcommand and the ``--json`` output modes."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_jsonl, validate_chrome_trace


class TestTraceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.scale == 14
        assert args.engine == "hybrid"
        assert args.m == 64.0 and args.n == 512.0

    def test_writes_validated_trace_and_jsonl(self, capsys, tmp_path):
        out = tmp_path / "run"
        rc = main(
            [
                "trace",
                "--scale",
                "10",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        trace_path = tmp_path / "run.trace.json"
        jsonl_path = tmp_path / "run.jsonl"
        assert trace_path.exists() and jsonl_path.exists()
        assert validate_chrome_trace(trace_path) > 0
        meta, spans, events = read_jsonl(jsonl_path)
        assert meta["scale"] == 10
        assert meta["engine"] == "hybrid"
        assert any(r.name == "bfs.hybrid" for r in spans)
        assert any(r.name == "bfs.level" for r in spans)
        assert any(e.name == "audit.switching_point" for e in events)
        out_text = capsys.readouterr().out
        assert "bfs.level" in out_text  # the summary table
        assert "mistuning report" in out_text
        assert "validated" in out_text

    def test_no_audit_flag(self, capsys, tmp_path):
        rc = main(
            [
                "trace",
                "--scale",
                "10",
                "--no-audit",
                "--out",
                str(tmp_path / "run"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mistuning report" not in out
        _, _, events = read_jsonl(tmp_path / "run.jsonl")
        assert not any(e.name == "audit.switching_point" for e in events)

    @pytest.mark.parametrize("engine", ["td", "bu", "parallel"])
    def test_other_engines(self, capsys, tmp_path, engine):
        rc = main(
            [
                "trace",
                "--scale",
                "10",
                "--engine",
                engine,
                "--no-audit",
                "--out",
                str(tmp_path / engine),
            ]
        )
        assert rc == 0
        assert validate_chrome_trace(
            tmp_path / f"{engine}.trace.json"
        ) > 0


class TestBfsJson:
    def test_json_output_is_pure_json(self, capsys):
        rc = main(
            [
                "bfs",
                "--scale",
                "10",
                "--engine",
                "hybrid",
                "--m",
                "64",
                "--n",
                "512",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale"] == 10
        assert payload["engine"] == "hybrid"
        assert payload["m"] == 64.0
        assert payload["levels"] >= 1
        assert payload["validated"] is True
        assert payload["gteps"] > 0
        assert isinstance(payload["directions"], list)

    def test_default_output_unchanged(self, capsys):
        rc = main(
            ["bfs", "--scale", "10", "--engine", "td"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GTEPS (validated)" in out


class TestGraph500Json:
    def test_json_output(self, capsys):
        rc = main(
            [
                "graph500",
                "--scale",
                "8",
                "--edgefactor",
                "8",
                "--roots",
                "3",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale"] == 8
        assert payload["nbfs"] == 3
        assert len(payload["roots"]) == 3
        assert payload["harmonic_mean_teps"] > 0
        assert set(payload["time_stats"]) == {
            "min",
            "q1",
            "median",
            "q3",
            "max",
            "mean",
            "stddev",
            "harmonic_mean",
        }
