"""Decision-audit correctness on a graph with a known best (M, N).

Uses the shared ``small_profile`` fixture (R-MAT scale 10, ef 16,
seed 7).  On that graph under the Sandy Bridge cost model the paper's
threshold rule with (M, N) = (14, 24) picks the wrong direction on one
level and prices >5% over the post-hoc best plan, while re-auditing
with the best plan itself must come back exactly optimal.
"""

import numpy as np
import pytest

from repro.arch.costmodel import CostModel
from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bfs.trace import LevelProfile
from repro.errors import ObsError
from repro.obs import (
    ManualClock,
    Tracer,
    audit_cross_architecture,
    audit_switching_point,
)

CANDIDATES = 500


@pytest.fixture(scope="module")
def model():
    return CostModel(CPU_SANDY_BRIDGE)


@pytest.fixture(scope="module")
def machine():
    return SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})


class TestSwitchingPointAudit:
    def test_mistuned_policy_flagged(self, small_profile, model):
        report = audit_switching_point(
            small_profile, model, 14.0, 24.0, count=CANDIDATES, seed=0
        )
        assert report.is_mistuned()
        assert report.slowdown > 1.05
        assert report.levels_mistuned >= 1
        assert report.predicted_seconds >= report.best_seconds
        assert "MISTUNED" in report.render()

    def test_well_tuned_policy_passes(self, small_profile, model):
        first = audit_switching_point(
            small_profile, model, 14.0, 24.0, count=CANDIDATES, seed=0
        )
        report = audit_switching_point(
            small_profile,
            model,
            first.best_m,
            first.best_n,
            count=CANDIDATES,
            seed=0,
        )
        assert report.slowdown == pytest.approx(1.0)
        assert not report.is_mistuned()
        assert report.levels_mistuned == 0
        assert report.predicted_directions == report.best_directions
        assert "well-tuned" in report.render()

    def test_predicted_always_in_sweep(self, small_profile, model):
        # Even a terrible prediction can never beat the sweep's best,
        # because the predicted point itself is appended to the sweep.
        report = audit_switching_point(
            small_profile, model, 1.0, 1.0, count=50, seed=1
        )
        assert report.predicted_seconds >= report.best_seconds
        assert report.candidates_searched == 51

    def test_explicit_candidates(self, small_profile, model):
        cands = np.array([[10.0, 10.0], [100.0, 100.0]])
        report = audit_switching_point(
            small_profile, model, 10.0, 10.0, candidates=cands
        )
        assert report.candidates_searched == 3

    def test_emits_instant_event(self, small_profile, model):
        tracer = Tracer(clock=ManualClock())
        audit_switching_point(
            small_profile,
            model,
            14.0,
            24.0,
            count=50,
            seed=0,
            tracer=tracer,
        )
        (ev,) = tracer.events("audit.switching_point")
        assert ev.attrs["predicted_m"] == 14.0
        assert ev.attrs["slowdown"] > 1.0

    def test_meta_lands_in_report(self, small_profile, model):
        report = audit_switching_point(
            small_profile, model, 14.0, 24.0, count=10, scale=10
        )
        assert report.meta == {"scale": 10}
        assert report.as_dict()["meta"] == {"scale": 10}

    def test_rejects_bad_inputs(self, small_profile, model):
        with pytest.raises(ObsError):
            audit_switching_point(small_profile, model, 0.0, 24.0)
        empty = LevelProfile(
            source=0,
            num_vertices=small_profile.num_vertices,
            num_edges=small_profile.num_edges,
            records=(),
        )
        with pytest.raises(ObsError):
            audit_switching_point(empty, model, 14.0, 24.0)

    def test_as_dict_is_json_ready(self, small_profile, model):
        import json

        report = audit_switching_point(
            small_profile, model, 14.0, 24.0, count=10
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["slowdown"] == pytest.approx(report.slowdown)
        assert len(payload["predicted_directions"]) == len(small_profile)


class TestCrossArchitectureAudit:
    def test_mistuned_cross_policy_flagged(self, small_profile, machine):
        report = audit_cross_architecture(
            small_profile, machine, (10.0, 64.0, 14.0, 24.0), count=100
        )
        assert report.is_mistuned()
        assert report.predicted_seconds >= report.best_seconds
        assert report.oracle_seconds > 0
        assert "MISTUNED" in report.render()

    def test_well_tuned_cross_policy_passes(self, small_profile, machine):
        first = audit_cross_architecture(
            small_profile, machine, (10.0, 64.0, 14.0, 24.0), count=100
        )
        report = audit_cross_architecture(
            small_profile, machine, first.best, count=100
        )
        assert report.slowdown == pytest.approx(1.0)
        assert not report.is_mistuned()
        assert "well-tuned" in report.render()

    def test_emits_instant_event(self, small_profile, machine):
        tracer = Tracer(clock=ManualClock())
        audit_cross_architecture(
            small_profile,
            machine,
            (10.0, 64.0, 14.0, 24.0),
            count=20,
            tracer=tracer,
        )
        (ev,) = tracer.events("audit.cross_architecture")
        assert ev.attrs["predicted"] == [10.0, 64.0, 14.0, 24.0]

    def test_rejects_wrong_arity(self, small_profile, machine):
        with pytest.raises(ObsError):
            audit_cross_architecture(small_profile, machine, (1.0, 2.0))
