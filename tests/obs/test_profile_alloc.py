"""Allocation attribution: tracemalloc windows per watched span."""

import tracemalloc

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.obs.profile import AllocationProfiler
from repro.obs.tracer import Tracer


@pytest.fixture
def tracer():
    return Tracer()


class TestConstruction:
    def test_rejects_bad_size_floor(self, tracer):
        with pytest.raises(ProfileError, match="size_floor"):
            AllocationProfiler(tracer, size_floor=0)

    def test_lifecycle_owns_tracemalloc(self, tracer):
        assert not tracemalloc.is_tracing()
        with AllocationProfiler(tracer):
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_leaves_running_tracemalloc_alone(self, tracer):
        tracemalloc.start()
        try:
            with AllocationProfiler(tracer):
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_detaches_listener_on_exit(self, tracer):
        profiler = AllocationProfiler(tracer)
        with profiler:
            pass
        with tracer.span("bfs.level"):
            pass
        assert profiler.windows == 0


class TestWindows:
    def test_detailed_catches_graph_sized_retention(self, tracer):
        keep = []
        with AllocationProfiler(tracer, size_floor=4096):
            with tracer.span("bfs.level", kernel="scan"):
                keep.append(np.empty(100_000, dtype=np.int64))
        record = tracer.spans()[-1]
        assert record.attrs["alloc_bytes"] >= 100_000 * 8
        assert record.attrs["alloc_blocks"] >= 1

    def test_detailed_ignores_transients(self, tracer):
        with AllocationProfiler(tracer, size_floor=4096) as profiler:
            with tracer.span("bfs.level", kernel="scan"):
                tmp = np.empty(100_000, dtype=np.int64)
                del tmp
        assert profiler.report()["clean"]

    def test_detailed_ignores_sub_floor_churn(self, tracer):
        keep = []
        with AllocationProfiler(tracer, size_floor=1 << 20) as profiler:
            with tracer.span("bfs.level"):
                keep.append(np.empty(64, dtype=np.int64))
        assert profiler.report()["clean"]

    def test_cheap_mode_counts_net_bytes(self, tracer):
        keep = []
        with AllocationProfiler(tracer, detailed=False):
            with tracer.span("bfs.level"):
                keep.append(np.empty(100_000, dtype=np.int64))
        record = tracer.spans()[-1]
        assert record.attrs["alloc_bytes"] >= 100_000 * 8
        assert record.attrs["alloc_blocks"] == 0  # cheap mode: bytes only

    def test_unwatched_spans_are_not_windowed(self, tracer):
        with AllocationProfiler(tracer) as profiler:
            with tracer.span("graph500.construction"):
                pass
        assert profiler.windows == 0
        assert "alloc_bytes" not in tracer.spans()[-1].attrs

    def test_custom_watch_list(self, tracer):
        with AllocationProfiler(
            tracer, spans=("my.kernel",), detailed=False
        ) as profiler:
            with tracer.span("my.kernel"):
                pass
        assert profiler.windows == 1


class TestReport:
    def test_aggregates_per_kernel_attr(self, tracer):
        keep = []
        with AllocationProfiler(tracer, size_floor=4096) as profiler:
            with tracer.span("bfs.level", kernel="tiles"):
                keep.append(np.empty(100_000, dtype=np.int64))
            with tracer.span("bfs.level", kernel="scan"):
                pass
        report = profiler.report()
        assert report["windows"] == 2
        assert report["per_kernel"]["tiles"]["bytes"] >= 100_000 * 8
        assert report["per_kernel"]["scan"]["bytes"] == 0
        assert not report["clean"]

    def test_metrics_fed(self, tracer):
        with AllocationProfiler(tracer, detailed=False):
            with tracer.span("bfs.level"):
                pass
        snap = tracer.metrics.snapshot()
        assert snap["alloc.bytes"]["count"] == 1
        assert snap["alloc.blocks"]["count"] == 1

    def test_report_mode_fields(self, tracer):
        with AllocationProfiler(tracer, detailed=False, size_floor=123) as p:
            pass
        report = p.report()
        assert report["mode"] == "cheap"
        assert report["size_floor"] == 123
        assert report["clean"]  # vacuously: no windows
