"""End-to-end cross-process acceptance: a child spawned with
``spawn_traced`` stitches into the parent's exported trace (same trace
id, correct parent-span linkage, disjoint span-id range), its metric
deltas merge into the parent registry, and an injected slowdown trips
the burn-rate alert which triggers a flight-recorder snapshot."""

import json

from repro.obs.export import validate_chrome_trace, write_chrome_trace
from repro.obs.live import Collector, SLOPolicy, run_traced_pair, spawn_traced
from repro.obs.profile import FlightRecorder
from repro.obs.tracer import Tracer, get_tracer, use_tracer

CHILD_BIT = 1 << 32


def _emitting_child(levels):
    """Module-level (picklable) target: spans + metrics on the child's
    process-global tracer, which spawn_traced installs."""
    tracer = get_tracer()
    with tracer.span("child.work", levels=levels):
        with tracer.span("child.inner"):
            pass
        tracer.count("bfs.levels", levels)


class TestSpawnTraced:
    def test_child_telemetry_stitches_into_parent(self, tmp_path):
        tracer = Tracer(trace_id="e2e-trace")
        with use_tracer(tracer):
            with Collector(tracer) as collector:
                with tracer.span("parent.root"):
                    handle = spawn_traced(
                        _emitting_child,
                        (3,),
                        tracer=tracer,
                        baggage={"case": "stitch"},
                        collector=collector,
                    )
                    while handle.process.is_alive():
                        collector.poll(timeout=0.05)
                    assert handle.join(timeout=10.0) == 0
                collector.close(timeout=10.0)

        by_name = {r.name: r for r in tracer.spans()}
        child_root = by_name["child.work"]
        child_inner = by_name["child.inner"]
        # disjoint id range: child ids live above (child_index+1) << 32
        assert child_root.span_id >= CHILD_BIT
        assert child_inner.span_id >= CHILD_BIT
        # cross-process parent linkage: the child's root parents under
        # the span that was open at spawn time
        assert child_root.parent_id == by_name["parent.root"].span_id
        assert child_inner.parent_id == child_root.span_id
        # child track is namespaced by source
        assert child_root.track.startswith("child-0:")
        # metrics_final merged the child's counter into the parent
        assert tracer.metrics.flat()["bfs.levels"] == 3.0
        # the channel completed its close handshake
        (channel,) = collector.channels
        assert channel.done
        assert channel.bye is not None
        assert channel.trace_id == "e2e-trace"

        # one Perfetto-loadable artifact for the whole tree
        trace_path = tmp_path / "stitched.trace.json"
        write_chrome_trace(tracer, trace_path)
        validate_chrome_trace(trace_path)
        events = json.loads(trace_path.read_text())["traceEvents"]
        assert len(events) >= 3

    def test_graph500_pair_merges_roots_and_baggage(self, tmp_path):
        tracer = Tracer(trace_id="pair-trace")
        with use_tracer(tracer):
            with Collector(tracer) as collector:
                run_traced_pair(
                    scale=5,
                    edgefactor=4,
                    num_roots=2,
                    children=1,
                    collector=collector,
                )
                collector.close(timeout=10.0)

        spans = tracer.spans()
        child_spans = [r for r in spans if r.span_id >= CHILD_BIT]
        assert child_spans, "no child spans were adopted"
        workload = tracer.spans("live.workload")[0]
        child_roots = [
            r for r in child_spans if r.parent_id == workload.span_id
        ]
        assert child_roots, "child roots must parent under live.workload"
        # parent ran 2 roots, the child ran 2 more: the teps histogram
        # holds exactly 4 merged observations
        assert tracer.metrics.flat()["teps.count"] == 4.0
        # context baggage traveled into the child's construction span
        constructions = [
            r
            for r in tracer.spans("graph500.construction")
            if r.span_id >= CHILD_BIT
        ]
        assert constructions
        assert constructions[0].attrs["baggage"]["child"] == 0

        trace_path = tmp_path / "pair.trace.json"
        write_chrome_trace(tracer, trace_path)
        validate_chrome_trace(trace_path)


class TestInjectedSlowdown:
    def test_slo_alert_and_flight_recorder_snapshot(self, tmp_path):
        policy = SLOPolicy.parse(
            "graph500.bfs<0.05@0.9",
            fast_windows=2,
            slow_windows=5,
            window_seconds=0.5,
        )
        tracer = Tracer(trace_id="slow-trace")
        with use_tracer(tracer):
            recorder = FlightRecorder(
                tracer,
                snapshot_dir=tmp_path,
                context={"workload": "injected-slowdown"},
            )
            with recorder, Collector(
                tracer, policies=[policy], window_seconds=0.5
            ) as collector:
                run_traced_pair(
                    scale=5,
                    edgefactor=4,
                    num_roots=4,
                    children=1,
                    child_delay=0.2,  # 4x the SLO threshold, every root
                    collector=collector,
                )
                collector.close(timeout=10.0)
                collector.evaluate()
        assert collector.alerts, "injected slowdown must trip the SLO"
        alert = collector.alerts[0]
        assert alert.metric == "graph500.bfs"
        assert alert.fast_burn >= policy.burn_threshold
        # the alert event triggered a snapshot dump
        reasons = [s.reason for s in recorder.snapshots]
        assert "alert-event:slo.alert" in reasons
        snap = next(
            s
            for s in recorder.snapshots
            if s.reason == "alert-event:slo.alert"
        )
        assert snap.path.exists()
        from repro.obs.profile import validate_snapshot

        meta = validate_snapshot(snap.path)
        assert meta["context"]["workload"] == "injected-slowdown"
        assert meta["reason"] == "alert-event:slo.alert"


class TestChildFailure:
    def test_dying_child_does_not_poison_the_collector(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with Collector(tracer) as collector:
                handle = spawn_traced(
                    _crashing_child, (), tracer=tracer, collector=collector
                )
                while handle.process.is_alive():
                    collector.poll(timeout=0.05)
                exit_code = handle.join(timeout=10.0)
                collector.close(timeout=5.0)
        assert exit_code != 0
        # the spans recorded before the crash still made it across
        assert tracer.spans("child.before_crash")
        (channel,) = collector.channels
        assert channel.done


def _crashing_child():
    tracer = get_tracer()
    with tracer.span("child.before_crash"):
        pass
    raise SystemExit(3)
