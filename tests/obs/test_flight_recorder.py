"""The flight recorder: telemetry ring, anomaly triggers, snapshots."""

import json

import pytest

from repro.errors import ProfileError
from repro.graph.generators import rmat
from repro.obs.profile import (
    FlightRecorder,
    graph_fingerprint,
    validate_snapshot,
)
from repro.obs.profile.recorder import SNAPSHOT_SCHEMA
from repro.obs.tracer import Tracer


@pytest.fixture
def tracer():
    return Tracer()


class TestConstruction:
    def test_rejects_bad_capacity(self, tracer):
        with pytest.raises(ProfileError, match="capacity"):
            FlightRecorder(tracer, capacity=0)

    def test_rejects_bad_slow_factor(self, tracer):
        with pytest.raises(ProfileError, match="slow_factor"):
            FlightRecorder(tracer, slow_factor=1.0)

    def test_rejects_bad_warmup(self, tracer):
        with pytest.raises(ProfileError, match="warmup"):
            FlightRecorder(tracer, warmup=0)


class TestRing:
    def test_ring_is_bounded(self, tracer):
        with FlightRecorder(tracer, capacity=4) as rec:
            for i in range(10):
                tracer.add_span("bfs.level", float(i), float(i) + 0.5)
        assert len(rec.ring) == 4

    def test_ring_holds_spans_and_events(self, tracer):
        with FlightRecorder(tracer) as rec:
            with tracer.span("bfs.level"):
                pass
            tracer.instant("bfs.direction", direction="bu")
        names = [getattr(e, "name", None) for e in rec.ring]
        assert "bfs.level" in names
        assert "bfs.direction" in names

    def test_metric_delta_ringed_on_root_close(self, tracer):
        with FlightRecorder(tracer) as rec:
            with tracer.span("bfs.timed"):
                tracer.count("bfs.levels", 3)
        deltas = [
            e for e in rec.ring
            if isinstance(e, dict) and e.get("kind") == "metrics"
        ]
        assert deltas and deltas[-1]["delta"]["bfs.levels"] == 3.0

    def test_detaches_on_exit(self, tracer):
        with FlightRecorder(tracer) as rec:
            pass
        with tracer.span("bfs.level"):
            pass
        assert len(rec.ring) == 0


class TestTriggers:
    def test_slow_span_fires_after_warmup(self, tracer, tmp_path):
        rec = FlightRecorder(
            tracer,
            watch=("bfs.timed",),
            warmup=3,
            slow_factor=2.5,
            snapshot_dir=tmp_path,
        )
        with rec:
            for _ in range(3):
                tracer.add_span("bfs.timed", 0.0, 1.0)
            assert not rec.triggers  # still learning
            tracer.add_span("bfs.timed", 0.0, 3.0)  # 3x the median
        assert len(rec.triggers) == 1
        assert rec.triggers[0]["reason"] == "slow-span:bfs.timed"
        assert len(rec.snapshots) == 1

    def test_within_threshold_does_not_fire(self, tracer):
        with FlightRecorder(tracer, watch=("bfs.timed",), warmup=2) as rec:
            for _ in range(2):
                tracer.add_span("bfs.timed", 0.0, 1.0)
            tracer.add_span("bfs.timed", 0.0, 2.0)  # 2x < slow_factor 2.5
        assert not rec.triggers

    def test_explicit_baseline_skips_learning(self, tracer):
        rec = FlightRecorder(
            tracer, watch=("bfs.timed",), baseline_s={"bfs.timed": 0.5}
        )
        with rec:
            tracer.add_span("bfs.timed", 0.0, 1.0)  # first close already slow
        assert len(rec.triggers) == 1

    def test_alert_event_fires(self, tracer):
        with FlightRecorder(tracer) as rec:
            tracer.instant("tuning.drift_alert", metric="teps")
        assert rec.triggers
        assert rec.triggers[0]["reason"] == "alert-event:tuning.drift_alert"

    def test_manual_trigger_counts_anomaly(self, tracer):
        with FlightRecorder(tracer) as rec:
            info = rec.trigger("manual-test")
        assert info is None  # no snapshot dir
        assert len(rec.triggers) == 1
        snap = tracer.metrics.snapshot()
        assert snap["profile.anomalies"]["value"] == 1


class TestSnapshots:
    def _triggered(self, tracer, tmp_path, **kwargs):
        rec = FlightRecorder(
            tracer, snapshot_dir=tmp_path, context={"workload": "t"}, **kwargs
        )
        with rec:
            with tracer.span("bfs.level"):
                pass
            info = rec.trigger("manual-test", {"k": "v"})
        return rec, info

    def test_snapshot_validates(self, tracer, tmp_path):
        _, info = self._triggered(tracer, tmp_path)
        meta = validate_snapshot(info.path)
        assert meta["schema"] == SNAPSHOT_SCHEMA
        assert meta["reason"] == "manual-test"
        assert meta["context"] == {"workload": "t"}
        assert meta["digest"] == info.digest

    def test_ring_jsonl_parses(self, tracer, tmp_path):
        _, info = self._triggered(tracer, tmp_path)
        lines = (info.path / "ring.jsonl").read_text().splitlines()
        assert lines
        assert any(json.loads(l).get("name") == "bfs.level" for l in lines)

    def test_artifact_provider_content_included(self, tracer, tmp_path):
        rec = FlightRecorder(tracer, snapshot_dir=tmp_path)
        rec.add_artifact_provider("extra.txt", lambda: "hello\n")
        with rec:
            info = rec.trigger("manual-test")
        assert (info.path / "extra.txt").read_text() == "hello\n"
        validate_snapshot(info.path)

    def test_broken_provider_does_not_eat_the_dump(self, tracer, tmp_path):
        rec = FlightRecorder(tracer, snapshot_dir=tmp_path)
        rec.add_artifact_provider(
            "bad.txt", lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        with rec:
            info = rec.trigger("manual-test")
        assert "failed" in (info.path / "bad.txt").read_text()
        validate_snapshot(info.path)

    def test_provider_name_must_be_bare(self, tracer):
        rec = FlightRecorder(tracer)
        with pytest.raises(ProfileError, match="bare filename"):
            rec.add_artifact_provider("a/b", lambda: "")

    def test_tampering_breaks_validation(self, tracer, tmp_path):
        _, info = self._triggered(tracer, tmp_path)
        ring = info.path / "ring.jsonl"
        ring.write_text(ring.read_text() + "{\"injected\": true}\n")
        with pytest.raises(ProfileError, match="digest"):
            validate_snapshot(info.path)

    def test_missing_meta_fails_validation(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ProfileError, match="meta.json"):
            validate_snapshot(tmp_path / "empty")

    def test_wrong_schema_fails_validation(self, tmp_path):
        d = tmp_path / "bad"
        d.mkdir()
        (d / "meta.json").write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ProfileError, match="schema"):
            validate_snapshot(d)


class TestGraphFingerprint:
    def test_stable_for_same_structure(self):
        a = graph_fingerprint(rmat(7, 4, seed=5))
        b = graph_fingerprint(rmat(7, 4, seed=5))
        assert a == b
        assert a["num_vertices"] == 1 << 7

    def test_differs_across_seeds(self):
        a = graph_fingerprint(rmat(7, 4, seed=5))
        b = graph_fingerprint(rmat(7, 4, seed=6))
        assert a["sha256"] != b["sha256"]
