"""Run-history store: round-trip fidelity, schema refusal, corruption
tolerance, and the snapshot_run folding of tracer/audit state."""

import json

import pytest

from repro.errors import HistoryError
from repro.obs import Tracer, use_tracer
from repro.obs.history import (
    SCHEMA_VERSION,
    HistoryStore,
    RunRecord,
    environment_fingerprint,
    snapshot_run,
)


@pytest.fixture()
def store(tmp_path):
    return HistoryStore(tmp_path / "history" / "runs.jsonl")


class TestRunRecord:
    def test_round_trip(self):
        rec = RunRecord(
            kind="graph500",
            workload="rmat-s10-ef16-r4",
            metrics={"bfs.levels": {"type": "counter", "value": 7.0}},
            spans=({"span": "graph500.bfs", "count": 4},),
            teps=1.5e8,
            audit={"slowdown": 1.02},
            meta={"seed": 0},
        )
        again = RunRecord.from_dict(json.loads(json.dumps(rec.as_dict())))
        assert again == rec
        assert again.series_key == ("graph500", "rmat-s10-ef16-r4")

    def test_empty_kind_rejected(self):
        with pytest.raises(HistoryError):
            RunRecord(kind="", workload="w")
        with pytest.raises(HistoryError):
            RunRecord(kind="bfs", workload="")

    def test_newer_schema_refused(self):
        payload = RunRecord(kind="bfs", workload="w").as_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(HistoryError, match="refusing"):
            RunRecord.from_dict(payload)

    def test_missing_schema_version_rejected(self):
        payload = RunRecord(kind="bfs", workload="w").as_dict()
        del payload["schema_version"]
        with pytest.raises(HistoryError):
            RunRecord.from_dict(payload)

    def test_unknown_fields_rejected(self):
        payload = RunRecord(kind="bfs", workload="w").as_dict()
        payload["surprise"] = 1
        with pytest.raises(HistoryError, match="unknown fields"):
            RunRecord.from_dict(payload)

    def test_environment_fingerprint_attached(self):
        rec = RunRecord(kind="bfs", workload="w")
        for key in ("python", "numpy", "platform", "cpu_count", "hostname_hash"):
            assert key in rec.environment
        # hashed, never the raw hostname
        assert len(rec.environment["hostname_hash"]) == 12

    def test_fingerprint_is_json_ready(self):
        json.dumps(environment_fingerprint())


class TestSnapshotRun:
    def test_folds_tracer_metrics_and_spans(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("bfs.level"):
                pass
            tracer.count("bfs.levels", 3)
        rec = snapshot_run("bfs", "w", tracer=tracer, teps=2.0, seed=7)
        assert rec.metrics["bfs.levels"]["value"] == 3.0
        assert any(row["span"] == "bfs.level" for row in rec.spans)
        assert rec.teps == 2.0
        assert rec.meta == {"seed": 7}

    def test_audit_object_folded_via_as_dict(self):
        class FakeReport:
            def as_dict(self):
                return {"slowdown": 1.25}

        rec = snapshot_run("bfs", "w", audit=FakeReport())
        assert rec.audit == {"slowdown": 1.25}

    def test_disabled_tracer_contributes_nothing(self):
        from repro.obs import NULL_TRACER

        rec = snapshot_run("bfs", "w", tracer=NULL_TRACER)
        assert rec.metrics == {}
        assert rec.spans == ()


class TestHistoryStore:
    def test_append_read_round_trip(self, store):
        first = RunRecord(kind="bfs", workload="a", teps=1.0)
        second = RunRecord(kind="bfs", workload="b", teps=2.0)
        store.append(first)
        store.append(second)
        assert store.read() == [first, second]
        assert len(store) == 2
        assert store.tail(1) == [second]
        assert store.series("bfs", "a") == [first]

    def test_missing_file_reads_empty(self, store):
        assert store.read() == []
        assert store.last_skipped == ()

    def test_append_creates_parents(self, store):
        store.append(RunRecord(kind="bfs", workload="w"))
        assert store.path.exists()

    def test_corrupt_lines_skipped_and_counted(self, store):
        good = RunRecord(kind="bfs", workload="w")
        store.append(good)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("{truncated by a crash\n")
            fh.write('{"schema_version": 1}\n')  # malformed record
        store.append(good)
        records = store.read()
        assert records == [good, good]
        assert len(store.last_skipped) == 2
        assert store.last_skipped[0][0] == 2  # line numbers reported

    def test_strict_read_raises_on_corruption(self, store):
        store.append(RunRecord(kind="bfs", workload="w"))
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("not json\n")
        with pytest.raises(HistoryError, match="corrupt"):
            store.read(strict=True)

    def test_newer_schema_always_raises(self, store):
        store.append(RunRecord(kind="bfs", workload="w"))
        payload = RunRecord(kind="bfs", workload="w").as_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(payload) + "\n")
        with pytest.raises(HistoryError, match="schema_version"):
            store.read()  # tolerant mode still refuses the future

    def test_append_rejects_non_record(self, store):
        with pytest.raises(HistoryError):
            store.append({"kind": "bfs"})

    def test_append_rejects_unserializable(self, store):
        rec = RunRecord(kind="bfs", workload="w", meta={"bad": object()})
        with pytest.raises(HistoryError, match="serializable"):
            store.append(rec)

    def test_tail_validates(self, store):
        with pytest.raises(HistoryError):
            store.tail(-1)
