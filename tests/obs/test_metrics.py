"""Counters, gauges, histograms, and registry snapshot/reset semantics."""

import pytest

from repro.errors import ObsError
from repro.obs import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_accumulates(self, registry):
        c = registry.counter("bfs.levels")
        c.add()
        c.add(4)
        assert c.value == 5.0

    def test_rejects_decrease(self, registry):
        with pytest.raises(ObsError):
            registry.counter("c").add(-1)

    def test_snapshot(self, registry):
        registry.counter("c").add(2)
        assert registry.counter("c").snapshot() == {
            "type": "counter",
            "value": 2.0,
        }


class TestGauge:
    def test_none_before_first_set(self, registry):
        assert registry.gauge("g").value is None

    def test_last_write_wins(self, registry):
        g = registry.gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_snapshot_stats(self, registry):
        h = registry.histogram("teps")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["mean"] == 2.5
        assert snap["p50"] == 2.5

    def test_empty_snapshot(self, registry):
        assert registry.histogram("h").snapshot() == {
            "type": "histogram",
            "count": 0,
            "buckets": [],
        }

    def test_empty_quantile_is_nan(self, registry):
        import math

        assert math.isnan(registry.histogram("h").quantile(0.5))

    def test_single_sample_quantile_is_that_sample(self, registry):
        h = registry.histogram("h")
        h.observe(3.25)
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == 3.25

    def test_quantile_out_of_range_raises(self, registry):
        with pytest.raises(ObsError):
            registry.histogram("h").quantile(1.5)

    def test_buckets_cumulative_and_complete(self, registry):
        h = registry.histogram("h")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            h.observe(v)
        buckets = h.buckets()
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == h.count  # final finite bucket covers max
        assert bounds[-1] == 10.0

    def test_retains_values_in_order(self, registry):
        h = registry.histogram("h")
        h.observe(2.0)
        h.observe(1.0)
        assert h.values == (2.0, 1.0)
        assert h.count == 2


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ObsError):
            registry.gauge("x")

    def test_bad_name_raises(self, registry):
        with pytest.raises(ObsError):
            registry.counter("")

    def test_names_sorted(self, registry):
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]

    def test_snapshot_covers_all_instruments(self, registry):
        registry.counter("c").add(1)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(3)
        snap = registry.snapshot()
        assert set(snap) == {"c", "g", "h"}
        assert snap["c"]["type"] == "counter"
        assert snap["g"]["type"] == "gauge"
        assert snap["h"]["type"] == "histogram"

    def test_reset_all_keeps_instruments_registered(self, registry):
        c = registry.counter("c")
        c.add(5)
        registry.reset()
        assert registry.names() == ["c"]
        assert registry.counter("c") is c
        assert c.value == 0.0

    def test_reset_selected_names(self, registry):
        registry.counter("a").add(1)
        registry.counter("b").add(1)
        registry.reset(names=["a"])
        assert registry.counter("a").value == 0.0
        assert registry.counter("b").value == 1.0

    def test_flat_view(self, registry):
        registry.counter("c").add(2)
        registry.gauge("g").set(7.5)
        h = registry.histogram("h")
        h.observe(1.0)
        h.observe(3.0)
        flat = registry.flat()
        assert flat == {"c": 2.0, "g": 7.5, "h.count": 2.0, "h.sum": 4.0}

    def test_flat_skips_unset_and_empty(self, registry):
        registry.gauge("g")  # never set
        registry.histogram("h")  # no observations
        assert registry.flat() == {}

    def test_flat_matches_snapshot_values(self, registry):
        registry.counter("c").add(3)
        registry.histogram("h").observe(2.5)
        snap = registry.snapshot()
        flat = registry.flat()
        assert flat["c"] == snap["c"]["value"]
        assert flat["h.count"] == snap["h"]["count"]
        assert flat["h.sum"] == snap["h"]["sum"]

    def test_reset_unknown_name_raises(self, registry):
        with pytest.raises(ObsError):
            registry.reset(names=["missing"])
