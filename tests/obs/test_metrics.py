"""Counters, gauges, histograms, and registry snapshot/reset semantics."""

import pytest

from repro.errors import ObsError
from repro.obs import METRICS_PAYLOAD_SCHEMA, MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_accumulates(self, registry):
        c = registry.counter("bfs.levels")
        c.add()
        c.add(4)
        assert c.value == 5.0

    def test_rejects_decrease(self, registry):
        with pytest.raises(ObsError):
            registry.counter("c").add(-1)

    def test_snapshot(self, registry):
        registry.counter("c").add(2)
        assert registry.counter("c").snapshot() == {
            "type": "counter",
            "value": 2.0,
        }


class TestGauge:
    def test_none_before_first_set(self, registry):
        assert registry.gauge("g").value is None

    def test_last_write_wins(self, registry):
        g = registry.gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_snapshot_stats(self, registry):
        h = registry.histogram("teps")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["mean"] == 2.5
        assert snap["p50"] == 2.5

    def test_empty_snapshot(self, registry):
        assert registry.histogram("h").snapshot() == {
            "type": "histogram",
            "count": 0,
            "buckets": [],
        }

    def test_empty_quantile_is_nan(self, registry):
        import math

        assert math.isnan(registry.histogram("h").quantile(0.5))

    def test_single_sample_quantile_is_that_sample(self, registry):
        h = registry.histogram("h")
        h.observe(3.25)
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == 3.25

    def test_quantile_out_of_range_raises(self, registry):
        with pytest.raises(ObsError):
            registry.histogram("h").quantile(1.5)

    def test_buckets_cumulative_and_complete(self, registry):
        h = registry.histogram("h")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            h.observe(v)
        buckets = h.buckets()
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == h.count  # final finite bucket covers max
        assert bounds[-1] == 10.0

    def test_retains_values_in_order(self, registry):
        h = registry.histogram("h")
        h.observe(2.0)
        h.observe(1.0)
        assert h.values == (2.0, 1.0)
        assert h.count == 2


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ObsError):
            registry.gauge("x")

    def test_bad_name_raises(self, registry):
        with pytest.raises(ObsError):
            registry.counter("")

    def test_names_sorted(self, registry):
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]

    def test_snapshot_covers_all_instruments(self, registry):
        registry.counter("c").add(1)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(3)
        snap = registry.snapshot()
        assert set(snap) == {"c", "g", "h"}
        assert snap["c"]["type"] == "counter"
        assert snap["g"]["type"] == "gauge"
        assert snap["h"]["type"] == "histogram"

    def test_reset_all_keeps_instruments_registered(self, registry):
        c = registry.counter("c")
        c.add(5)
        registry.reset()
        assert registry.names() == ["c"]
        assert registry.counter("c") is c
        assert c.value == 0.0

    def test_reset_selected_names(self, registry):
        registry.counter("a").add(1)
        registry.counter("b").add(1)
        registry.reset(names=["a"])
        assert registry.counter("a").value == 0.0
        assert registry.counter("b").value == 1.0

    def test_flat_view(self, registry):
        registry.counter("c").add(2)
        registry.gauge("g").set(7.5)
        h = registry.histogram("h")
        h.observe(1.0)
        h.observe(3.0)
        flat = registry.flat()
        assert flat == {"c": 2.0, "g": 7.5, "h.count": 2.0, "h.sum": 4.0}

    def test_flat_skips_unset_and_empty(self, registry):
        registry.gauge("g")  # never set
        registry.histogram("h")  # no observations
        assert registry.flat() == {}

    def test_flat_matches_snapshot_values(self, registry):
        registry.counter("c").add(3)
        registry.histogram("h").observe(2.5)
        snap = registry.snapshot()
        flat = registry.flat()
        assert flat["c"] == snap["c"]["value"]
        assert flat["h.count"] == snap["h"]["count"]
        assert flat["h.sum"] == snap["h"]["sum"]

    def test_reset_unknown_name_raises(self, registry):
        with pytest.raises(ObsError):
            registry.reset(names=["missing"])


class TestPayloadRoundTrip:
    """to_payload()/merge_payload(): the exact cross-process merge the
    live channel's metrics_final frame rides on."""

    @pytest.fixture
    def registry(self):
        return MetricsRegistry()

    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("bfs.levels").add(3)
        registry.gauge("frontier.claim_ratio").set(0.25)
        registry.histogram("teps").observe(1e6)
        registry.histogram("teps").observe(2e6)
        return registry

    def test_payload_is_schema_tagged_and_json_ready(self):
        import json

        payload = self._populated().to_payload()
        assert payload["schema"] == METRICS_PAYLOAD_SCHEMA
        # JSON round-trip preserves it verbatim (the frame protocol does
        # exactly this)
        assert json.loads(json.dumps(payload)) == payload

    def test_merge_into_empty_registry_reproduces_state(self, registry):
        source = self._populated()
        registry.merge_payload(source.to_payload())
        assert registry.snapshot() == source.snapshot()

    def test_counters_add_as_deltas(self, registry):
        registry.counter("bfs.levels").add(10)
        registry.merge_payload(self._populated().to_payload())
        assert registry.counter("bfs.levels").value == 13.0

    def test_gauges_last_write_wins(self, registry):
        registry.gauge("frontier.claim_ratio").set(0.9)
        registry.merge_payload(self._populated().to_payload())
        assert registry.gauge("frontier.claim_ratio").value == 0.25

    def test_histogram_observations_concatenate_exactly(self, registry):
        registry.histogram("teps").observe(5e5)
        registry.merge_payload(self._populated().to_payload())
        hist = registry.histogram("teps")
        assert hist.values == (5e5, 1e6, 2e6)
        # quantiles of the merge equal quantiles of the concatenation
        assert hist.quantile(1.0) == 2e6

    def test_wrong_schema_rejected(self, registry):
        with pytest.raises(ObsError, match="schema"):
            registry.merge_payload(
                {"schema": "repro.obs.metrics/99", "instruments": {}}
            )
        with pytest.raises(ObsError):
            registry.merge_payload("not a dict")

    def test_type_conflict_merges_nothing(self, registry):
        """Validation runs before any merge: a payload whose second
        instrument clashes must not partially apply its first."""
        registry.gauge("frontier.claim_ratio")  # clashes with counter
        payload = {
            "schema": METRICS_PAYLOAD_SCHEMA,
            "instruments": {
                "bfs.levels": {"type": "counter", "value": 3.0},
                "frontier.claim_ratio": {"type": "counter", "value": 1.0},
            },
        }
        with pytest.raises(ObsError):
            registry.merge_payload(payload)
        # the instrument may exist (created during validation) but no
        # value landed: the merge happens only after the full plan holds
        assert registry.counter("bfs.levels").value == 0.0

    def test_unknown_instrument_type_rejected(self, registry):
        payload = {
            "schema": METRICS_PAYLOAD_SCHEMA,
            "instruments": {"x": {"type": "summary", "value": 1.0}},
        }
        with pytest.raises(ObsError, match="unknown payload type"):
            registry.merge_payload(payload)

    def test_instrument_payload_type_guard(self, registry):
        counter = registry.counter("c")
        with pytest.raises(ObsError):
            counter.merge_payload({"type": "gauge", "value": 1.0})
        with pytest.raises(ObsError):
            counter.merge_payload([1.0])
        hist = registry.histogram("h")
        with pytest.raises(ObsError, match="'values' must be a list"):
            hist.merge_payload({"type": "histogram", "values": 3.0})

    def test_merge_is_associative_across_children(self, registry):
        """Merging child A then B equals merging B then A — the
        collector's arrival order must not matter."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("bfs.levels").add(2)
        a.histogram("teps").observe(1.0)
        b.counter("bfs.levels").add(5)
        b.histogram("teps").observe(2.0)
        left, right = MetricsRegistry(), MetricsRegistry()
        left.merge_payload(a.to_payload())
        left.merge_payload(b.to_payload())
        right.merge_payload(b.to_payload())
        right.merge_payload(a.to_payload())
        assert left.flat()["bfs.levels"] == right.flat()["bfs.levels"] == 7.0
        assert sorted(left.histogram("teps").values) == sorted(
            right.histogram("teps").values
        )
