"""OpenMetrics v1 exposition: golden format test, validator, endpoint."""

import threading
import urllib.request

import pytest

from repro.errors import ExportError
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import CONTENT_TYPE, render, serve, validate


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("bfs.edges_examined").add(1024)
    reg.counter("bfs.levels").add(7)
    reg.gauge("frontier.size").set(17.5)
    hist = reg.histogram("graph500.bfs_seconds")
    # A single distinct value gives one exact finite bucket, so the
    # golden text is platform-independent (multi-bucket bounds go
    # through libm-dependent geomspace and are covered structurally
    # below instead).
    for v in (0.25, 0.25, 0.25, 0.25):
        hist.observe(v)
    return reg


class TestRender:
    def test_golden_exposition(self, registry):
        assert render(registry) == (
            "# TYPE bfs_edges_examined counter\n"
            "bfs_edges_examined_total 1024\n"
            "# TYPE bfs_levels counter\n"
            "bfs_levels_total 7\n"
            "# TYPE frontier_size gauge\n"
            "frontier_size 17.5\n"
            "# TYPE graph500_bfs_seconds histogram\n"
            'graph500_bfs_seconds_bucket{le="0.25"} 4\n'
            'graph500_bfs_seconds_bucket{le="+Inf"} 4\n'
            "graph500_bfs_seconds_sum 1\n"
            "graph500_bfs_seconds_count 4\n"
            "# EOF\n"
        )

    def test_multibucket_histogram(self):
        reg = MetricsRegistry()
        hist = reg.histogram("graph500.bfs_seconds")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            hist.observe(v)
        text = render(reg)
        assert validate(text)
        bucket_lines = [
            line for line in text.splitlines() if "_bucket" in line
        ]
        assert len(bucket_lines) > 3  # real series, not a single bucket
        assert bucket_lines[-1] == 'graph500_bfs_seconds_bucket{le="+Inf"} 5'
        # cumulative and complete: the last finite bucket already holds
        # every observation (bounds end at the max)
        assert bucket_lines[-2].endswith(" 5")
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)

    def test_accepts_snapshot_dict(self, registry):
        assert render(registry.snapshot()) == render(registry)

    def test_unset_gauge_and_empty_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("never.set")
        reg.histogram("no.observations")
        text = render(reg)
        assert "never_set" not in text  # no invented zero
        assert "no_observations_count 0" in text
        assert 'no_observations_bucket{le="+Inf"} 0' in text
        assert validate(text)

    def test_empty_registry_is_just_eof(self):
        assert render(MetricsRegistry()) == "# EOF\n"

    def test_rejects_wrong_type(self):
        with pytest.raises(ExportError):
            render([("bfs.levels", 1)])

    def test_rejects_unmappable_name(self):
        with pytest.raises(ExportError, match="name"):
            render({"bad name!": {"type": "counter", "value": 1.0}})


class TestValidate:
    def test_accepts_own_output(self, registry):
        assert validate(render(registry)) == 7

    def test_rejects_nonmonotonic_le(self):
        with pytest.raises(ExportError, match="strictly increasing"):
            validate(
                "# TYPE x histogram\n"
                'x_bucket{le="2"} 1\n'
                'x_bucket{le="1"} 2\n'
                'x_bucket{le="+Inf"} 2\n'
                "x_count 2\n"
                "# EOF\n"
            )

    def test_rejects_decreasing_cumulative_count(self):
        with pytest.raises(ExportError, match="decreased"):
            validate(
                "# TYPE x histogram\n"
                'x_bucket{le="1"} 3\n'
                'x_bucket{le="2"} 1\n'
                'x_bucket{le="+Inf"} 3\n'
                "# EOF\n"
            )

    def test_rejects_missing_inf_bucket(self):
        with pytest.raises(ExportError, match=r"\+Inf"):
            validate(
                "# TYPE x histogram\n"
                'x_bucket{le="1"} 1\n'
                'x_bucket{le="2"} 2\n'
                "x_count 2\n"
                "# EOF\n"
            )

    def test_rejects_inf_bucket_count_mismatch(self):
        with pytest.raises(ExportError, match="disagrees"):
            validate(
                "# TYPE x histogram\n"
                'x_bucket{le="1"} 1\n'
                'x_bucket{le="+Inf"} 2\n'
                "x_count 3\n"
                "# EOF\n"
            )

    def test_rejects_bucket_without_le_label(self):
        with pytest.raises(ExportError, match="le label"):
            validate(
                "# TYPE x histogram\n"
                "x_bucket 1\n"
                'x_bucket{le="+Inf"} 1\n'
                "# EOF\n"
            )

    def test_rejects_histogram_without_buckets(self):
        with pytest.raises(ExportError, match="no _bucket"):
            validate(
                "# TYPE x histogram\n"
                "x_count 0\n"
                "# EOF\n"
            )

    def test_requires_eof_terminator(self):
        with pytest.raises(ExportError, match="EOF"):
            validate("# TYPE x counter\nx_total 1\n")

    def test_rejects_eof_mid_stream(self):
        with pytest.raises(ExportError, match="EOF"):
            validate("# EOF\nx_total 1\n# EOF\n")

    def test_requires_type_metadata(self):
        with pytest.raises(ExportError, match="TYPE"):
            validate("mystery_sample 1\n# EOF\n")

    def test_counter_samples_need_total_suffix(self):
        with pytest.raises(ExportError, match="_total"):
            validate("# TYPE x counter\nx 1\n# EOF\n")

    def test_rejects_unparsable_value(self):
        with pytest.raises(ExportError, match="value"):
            validate("# TYPE x gauge\nx one\n# EOF\n")


class TestServe:
    def test_scrape_round_trip(self, registry):
        server = serve(registry, port=0)
        try:
            host, port = server.server_address[:2]
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            resp = urllib.request.urlopen(f"http://{host}:{port}/metrics")
            body = resp.read().decode("utf-8")
            thread.join(timeout=5)
            assert resp.headers["Content-Type"] == CONTENT_TYPE
            assert body == render(registry)
            assert validate(body) == 7
        finally:
            server.server_close()

    def test_unknown_path_is_404(self, registry):
        server = serve(registry, port=0)
        try:
            host, port = server.server_address[:2]
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://{host}:{port}/nope")
            thread.join(timeout=5)
            assert err.value.code == 404
        finally:
            server.server_close()

    def test_rejects_non_registry(self):
        with pytest.raises(ExportError):
            serve({"not": "a registry"})
