"""The ``repro-bfs monitor`` / ``serve-metrics`` subcommands and the
history-aware ``--json`` outputs of ``bfs``/``graph500``."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.history import HistoryStore, RunRecord
from repro.obs.openmetrics import validate


def _seed_history(path, teps_series, *, audit_slowdown=None):
    """A synthetic graph500 trajectory at a fixed workload."""
    store = HistoryStore(path)
    for teps in teps_series:
        audit = (
            None
            if audit_slowdown is None
            else {"slowdown": audit_slowdown, "arch": "cpu-snb"}
        )
        store.append(
            RunRecord(
                kind="graph500",
                workload="rmat-s10-ef16-r4",
                teps=teps,
                audit=audit,
            )
        )
    return store


class TestParser:
    def test_monitor_defaults(self):
        args = build_parser().parse_args(["monitor", "check"])
        assert args.command == "monitor"
        assert args.monitor_command == "check"
        assert str(args.history).endswith("runs.jsonl")
        assert args.window == 8 and args.min_samples == 3

    def test_record_defaults(self):
        args = build_parser().parse_args(["monitor", "record"])
        assert args.scale == 10 and args.roots == 8
        assert args.m == 20.0 and args.n == 100.0

    def test_serve_metrics_defaults(self):
        args = build_parser().parse_args(["serve-metrics"])
        assert args.port == 9464 and not args.once


class TestMonitorCheck:
    def test_clean_trajectory_passes(self, capsys, tmp_path):
        hist = tmp_path / "runs.jsonl"
        _seed_history(hist, [1e8, 1.02e8, 0.99e8, 1.01e8])
        rc = main(["monitor", "check", "--history", str(hist)])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_2x_slowdown_fails_with_named_metric(
        self, capsys, tmp_path
    ):
        hist = tmp_path / "runs.jsonl"
        _seed_history(hist, [1e8, 1.02e8, 0.99e8, 1.01e8, 0.45e8])
        rc = main(["monitor", "check", "--history", str(hist)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "run.teps" in out  # the named metric
        assert "FAIL" in out

    def test_json_output(self, capsys, tmp_path):
        hist = tmp_path / "runs.jsonl"
        _seed_history(hist, [1e8, 1e8, 1e8, 0.4e8])
        rc = main(["monitor", "check", "--history", str(hist), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["ok"] is False
        assert payload["findings"][0]["metric"] == "run.teps"

    def test_empty_history_is_a_usage_error(self, capsys, tmp_path):
        rc = main(
            ["monitor", "check", "--history", str(tmp_path / "none.jsonl")]
        )
        assert rc == 2

    def test_short_series_passes_with_skips(self, capsys, tmp_path):
        hist = tmp_path / "runs.jsonl"
        _seed_history(hist, [1e8, 0.1e8])  # drop, but only 1 baseline run
        rc = main(["monitor", "check", "--history", str(hist)])
        assert rc == 0
        assert "skipped" in capsys.readouterr().out


class TestMonitorReportAndDrift:
    def test_report_lists_trajectory(self, capsys, tmp_path):
        hist = tmp_path / "runs.jsonl"
        _seed_history(hist, [1e8, 2e8], audit_slowdown=1.1)
        rc = main(["monitor", "report", "--history", str(hist)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert "rmat-s10-ef16-r4" in out
        assert "1.100x" in out

    def test_report_json(self, capsys, tmp_path):
        hist = tmp_path / "runs.jsonl"
        _seed_history(hist, [1e8])
        rc = main(["monitor", "report", "--history", str(hist), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["kind"] == "graph500"

    def test_drift_alerts_on_sustained_mistuning(self, capsys, tmp_path):
        hist = tmp_path / "runs.jsonl"
        _seed_history(hist, [1e8] * 4, audit_slowdown=1.8)
        rc = main(["monitor", "drift", "--history", str(hist)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DRIFTING" in out
        assert "cpu-snb" in out

    def test_drift_clean_on_well_tuned_history(self, capsys, tmp_path):
        hist = tmp_path / "runs.jsonl"
        _seed_history(hist, [1e8] * 4, audit_slowdown=1.02)
        rc = main(["monitor", "drift", "--history", str(hist)])
        assert rc == 0
        assert "ok" in capsys.readouterr().out

    def test_monitor_without_subcommand_errors(self, capsys):
        assert main(["monitor"]) == 2


class TestRecordedRunsEndToEnd:
    def test_bfs_json_carries_metrics_audit_and_history(
        self, capsys, tmp_path
    ):
        hist = tmp_path / "runs.jsonl"
        rc = main(
            [
                "bfs", "--scale", "10", "--engine", "hybrid",
                "--m", "20", "--n", "100", "--json",
                "--history", str(hist),
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        # the --json schema and the history entry share one shape
        assert payload["metrics"]["bfs.levels"]["type"] == "counter"
        assert payload["audit"]["slowdown"] >= 1.0
        records = HistoryStore(hist).read()
        assert len(records) == 1
        assert records[0].kind == "bfs"
        assert records[0].metrics == payload["metrics"]
        assert records[0].audit == payload["audit"]

    def test_graph500_json_carries_metrics_and_audit(self, capsys):
        rc = main(
            ["graph500", "--scale", "10", "--roots", "2", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "teps" in payload["metrics"]
        assert payload["audit"]["slowdown"] >= 1.0

    def test_monitor_record_then_check(self, capsys, tmp_path):
        hist = tmp_path / "runs.jsonl"
        for _ in range(2):
            rc = main(
                [
                    "monitor", "record", "--scale", "10", "--roots", "2",
                    "--history", str(hist),
                ]
            )
            assert rc == 0
        records = HistoryStore(hist).read()
        assert len(records) == 2
        assert records[0].teps is not None
        assert records[0].audit is not None
        assert records[0].environment["python"]
        # two runs -> below min_samples, so the gate passes with skips
        rc = main(["monitor", "check", "--history", str(hist)])
        assert rc == 0


class TestServeMetrics:
    def test_once_mode_serves_valid_openmetrics(self, capsys):
        import threading
        import urllib.request

        # Drive main() in a thread bound to an ephemeral port; scrape
        # once; --once exits after the first request.
        from repro.graph500 import HybridEngine, run_graph500
        from repro.obs import Tracer, use_tracer
        from repro.obs.openmetrics import CONTENT_TYPE, serve

        tracer = Tracer()
        with use_tracer(tracer):
            run_graph500(
                10, 16, num_roots=2, engine=HybridEngine(), seed=0,
                tracer=tracer,
            )
        server = serve(tracer.metrics, port=0)
        try:
            host, port = server.server_address[:2]
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            resp = urllib.request.urlopen(f"http://{host}:{port}/metrics")
            body = resp.read().decode("utf-8")
            thread.join(timeout=5)
            assert resp.headers["Content-Type"] == CONTENT_TYPE
            assert validate(body) > 0
            assert "graph500_bfs_seconds" in body
        finally:
            server.server_close()

    def test_sigint_shuts_down_gracefully(self):
        """SIGINT during serve_forever() must end the process with exit
        code 0 and the shutdown line — no KeyboardInterrupt traceback —
        even when the signal lands inside accept()."""
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve-metrics",
                "--scale", "6", "--edgefactor", "4", "--roots", "1",
                "--port", "0",
            ],
            env=env,
            cwd=repo,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # wait until the server is inside serve_forever()
            banner = []
            for line in proc.stdout:
                banner.append(line)
                if "serving OpenMetrics" in line:
                    break
            else:
                pytest.fail(f"server never came up: {''.join(banner)}")
            time.sleep(0.2)
            proc.send_signal(signal.SIGINT)
            rest, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        output = "".join(banner) + rest
        assert proc.returncode == 0, output
        assert "serve-metrics: shutting down (SIGINT)" in output
        assert "Traceback" not in output
