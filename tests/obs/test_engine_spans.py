"""Every engine emits the observability schema when a tracer is on."""

import pytest

from repro.bfs import ParallelBFS, bfs_bottom_up, bfs_hybrid, bfs_top_down
from repro.bfs.multisource import msbfs
from repro.bfs.profiler import profile_bfs
from repro.graph500 import HybridEngine, run_graph500
from repro.obs import Tracer, use_tracer


@pytest.fixture()
def tracer():
    return Tracer()


class TestSingleThreadEngines:
    @pytest.mark.parametrize(
        "engine,root_span",
        [
            (bfs_top_down, "bfs.topdown"),
            (bfs_bottom_up, "bfs.bottomup"),
        ],
    )
    def test_root_and_level_spans(
        self, rmat_small, rmat_source, engine, root_span, tracer
    ):
        result = engine(rmat_small, rmat_source, tracer=tracer)
        (root,) = tracer.spans(root_span)
        levels = tracer.spans("bfs.level")
        assert root.attrs["levels"] == result.num_levels
        assert len(levels) == result.num_levels
        assert all(r.parent_id == root.span_id for r in levels)
        assert [r.attrs["depth"] for r in levels] == list(
            range(result.num_levels)
        )
        snap = tracer.metrics.snapshot()
        assert snap["bfs.levels"]["value"] == result.num_levels
        assert snap["bfs.edges_examined"]["value"] == sum(
            result.edges_examined
        )

    def test_hybrid_emits_direction_decisions(
        self, rmat_small, rmat_source, tracer
    ):
        result = bfs_hybrid(
            rmat_small, rmat_source, m=14.0, n=24.0, tracer=tracer
        )
        decisions = tracer.events("bfs.direction")
        assert [e.attrs["direction"] for e in decisions] == list(
            result.directions
        )
        assert all(
            "frontier_edges" in e.attrs and "unvisited_vertices" in e.attrs
            for e in decisions
        )
        snap = tracer.metrics.snapshot()
        assert snap["frontier.claim_ratio"]["count"] >= 1

    def test_ambient_tracer_used_when_not_passed(
        self, rmat_small, rmat_source, tracer
    ):
        with use_tracer(tracer):
            bfs_hybrid(rmat_small, rmat_source, m=14.0, n=24.0)
        assert len(tracer.spans("bfs.hybrid")) == 1

    def test_untraced_run_records_nothing_globally(
        self, rmat_small, rmat_source
    ):
        from repro.obs import get_tracer

        ambient = get_tracer()
        before = len(ambient.spans()) if ambient.enabled else 0
        bfs_hybrid(rmat_small, rmat_source, m=14.0, n=24.0)
        after = len(ambient.spans()) if ambient.enabled else 0
        assert after == before


class TestParallelEngine:
    def test_worker_spans_on_worker_threads(
        self, rmat_small, rmat_source, tracer
    ):
        engine = ParallelBFS(num_threads=3)
        result = engine.run(rmat_small, rmat_source, tracer=tracer)
        (root,) = tracer.spans("bfs.parallel")
        assert root.attrs["num_threads"] == 3
        assert root.attrs["levels"] == result.num_levels
        workers = tracer.spans("worker.expand") + tracer.spans(
            "worker.scan"
        )
        assert workers, "worker chunks must produce spans"
        names = {r.thread_name for r in workers}
        assert all(n.startswith("repro-bfs") for n in names)
        # Worker spans are recorded on the workers' own threads, which
        # become their own tracks in the Chrome export.
        assert all(r.thread_id != root.thread_id for r in workers)


class TestMultiSource:
    def test_sweep_spans(self, rmat_small, tracer):
        sources = [0, 1, 2, 3]
        msbfs(rmat_small, sources, tracer=tracer)
        (root,) = tracer.spans("bfs.msbfs")
        assert root.attrs["batch"] == len(sources)
        sweeps = tracer.spans("bfs.level")
        assert sweeps
        assert all(r.parent_id == root.span_id for r in sweeps)


class TestProfiler:
    def test_profile_spans_match_profile(
        self, rmat_small, rmat_source, tracer
    ):
        profile, _ = profile_bfs(rmat_small, rmat_source, tracer=tracer)
        (root,) = tracer.spans("bfs.profile")
        levels = tracer.spans("bfs.level")
        assert len(levels) == len(profile)
        for rec, prof_rec in zip(levels, profile):
            assert (
                rec.attrs["frontier_vertices"] == prof_rec.frontier_vertices
            )


class TestGraph500:
    def test_construction_and_per_root_spans(self, tracer):
        result = run_graph500(
            8, 8, num_roots=3, engine=HybridEngine(), tracer=tracer
        )
        assert len(tracer.spans("graph500.construction")) == 1
        roots = tracer.spans("graph500.bfs")
        assert len(roots) == 3
        for i, rec in enumerate(roots):
            assert rec.attrs["index"] == i
            assert rec.attrs["seconds"] > 0
            assert rec.attrs["teps"] > 0
        snap = tracer.metrics.snapshot()
        assert snap["graph500.bfs_seconds"]["count"] == 3
        assert snap["teps"]["count"] == 3
        # The engine's own hybrid spans nest under each root span.
        hybrid = tracer.spans("bfs.hybrid")
        assert len(hybrid) == 0  # engine resolves the ambient tracer
        with use_tracer(tracer):
            run_graph500(
                8, 8, num_roots=1, engine=HybridEngine(), seed=1
            )
        assert len(tracer.spans("bfs.hybrid")) == 1
        assert result.validated
