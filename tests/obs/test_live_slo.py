"""SLO policies, burn-rate evaluation and the collector's alert path
(rising edge, ``slo.alert`` events, flight-recorder hand-off, replay)."""

import pytest

from repro.errors import LiveError
from repro.obs.clock import ManualClock
from repro.obs.live import (
    BurnRateEvaluator,
    CaptureFile,
    ChannelExporter,
    Collector,
    SLOPolicy,
)
from repro.obs.profile import FlightRecorder
from repro.obs.tracer import Tracer


class TestSLOPolicy:
    def test_parse_round_trip(self):
        policy = SLOPolicy.parse("graph500.bfs<0.5@0.9")
        assert policy.metric == "graph500.bfs"
        assert policy.op == "<"
        assert policy.threshold == 0.5
        assert policy.objective == 0.9
        assert SLOPolicy.parse(policy.spec()) == policy

    def test_parse_throughput_floor(self):
        policy = SLOPolicy.parse("teps>1e6@0.95")
        assert policy.op == ">"
        assert policy.threshold == 1e6

    def test_parse_overrides(self):
        policy = SLOPolicy.parse(
            "teps>1e6@0.95", fast_windows=2, slow_windows=4
        )
        assert (policy.fast_windows, policy.slow_windows) == (2, 4)

    @pytest.mark.parametrize(
        "spec",
        [
            "not a spec",
            "Metric<1@0.9",      # uppercase metric
            "m=1@0.9",           # bad op
            "m<1",               # no objective
            "m<1@1.5",           # objective out of range
            "m<x@0.9",           # unparsable threshold
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(LiveError):
            SLOPolicy.parse(spec)

    def test_geometry_validation(self):
        with pytest.raises(LiveError):
            SLOPolicy("m", "<", 1.0, fast_windows=9, slow_windows=3)
        with pytest.raises(LiveError):
            SLOPolicy("m", "<", 1.0, window_seconds=0)
        with pytest.raises(LiveError):
            SLOPolicy("m", "<", 1.0, burn_threshold=0)

    def test_is_bad_directions(self):
        lat = SLOPolicy("m", "<", 1.0)
        assert not lat.is_bad(0.5)
        assert lat.is_bad(1.0)  # boundary spends budget
        assert lat.is_bad(2.0)
        thr = SLOPolicy("m", ">", 1.0)
        assert thr.is_bad(0.5)
        assert not thr.is_bad(2.0)


def _policy(**over):
    defaults = dict(
        metric="graph500.bfs",
        op="<",
        threshold=1.0,
        objective=0.9,
        window_seconds=1.0,
        fast_windows=2,
        slow_windows=6,
        burn_threshold=2.0,
    )
    defaults.update(over)
    return SLOPolicy(**defaults)


class TestBurnRateEvaluator:
    def test_needs_a_policy(self):
        with pytest.raises(LiveError):
            BurnRateEvaluator("graph500.bfs<1@0.9")

    def test_burn_math(self):
        ev = BurnRateEvaluator(_policy())
        # window 0: 1 bad of 2 -> bad_frac 0.5, budget 0.1 -> burn 5
        ev.record(0.1, 0.2)
        ev.record(0.2, 5.0)
        fast, slow = ev.burn_rates(0.5)
        assert fast == pytest.approx(5.0)
        assert slow == pytest.approx(5.0)

    def test_alert_needs_both_windows(self):
        # a long good history keeps the slow burn under threshold even
        # when the fast window is all-bad: no alert (it's a blip)
        ev = BurnRateEvaluator(_policy())
        for t in range(4):
            for _ in range(20):
                ev.record(t + 0.5, 0.1)
        ev.record(5.2, 9.0)
        ev.record(5.3, 9.0)
        fast, slow = ev.burn_rates(5.5)
        assert fast >= 2.0
        assert slow < 2.0
        assert ev.evaluate(5.5) is None
        assert not ev.firing

    def test_sustained_badness_alerts(self):
        ev = BurnRateEvaluator(_policy())
        for t in range(4):
            ev.record(t + 0.5, 9.0)
        alert = ev.evaluate(3.5)
        assert alert is not None
        assert ev.firing
        assert alert.policy == _policy().spec()
        assert alert.fast_bad == 2 and alert.fast_count == 2
        assert alert.slow_bad == 4 and alert.slow_count == 4
        assert "burn" in alert.describe()

    def test_recovery_clears_firing(self):
        ev = BurnRateEvaluator(_policy())
        for t in range(4):
            ev.record(t + 0.5, 9.0)
        assert ev.evaluate(3.5) is not None
        # two clean fast-windows later the fast burn is zero
        for t in (4.5, 5.5):
            for _ in range(10):
                ev.record(t, 0.1)
        assert ev.evaluate(5.9) is None
        assert not ev.firing

    def test_old_observations_dropped(self):
        ev = BurnRateEvaluator(_policy())
        ev.record(100.0, 0.1)
        ev.record(1.0, 9.0)  # far older than the slow horizon
        assert ev.dropped == 1
        fast, slow = ev.burn_rates(100.0)
        assert fast == 0.0

    def test_out_of_order_within_horizon(self):
        ev = BurnRateEvaluator(_policy())
        ev.record(4.5, 9.0)
        ev.record(2.5, 9.0)  # late but retained
        _, slow = ev.burn_rates(4.9)
        assert slow == pytest.approx(10.0)


class TestCollectorAlerting:
    def _collector(self, clock):
        tracer = Tracer(clock=clock)
        collector = Collector(
            tracer,
            policies=[_policy()],
            window_seconds=1.0,
            clock=clock,
        )
        return tracer, collector

    def test_rising_edge_only(self):
        clock = ManualClock()
        tracer, collector = self._collector(clock)
        with collector:
            for _ in range(4):
                clock.advance(1.0)
                with tracer.span("graph500.bfs"):
                    clock.advance(2.0)  # 2 s per traversal: all bad
            fired = collector.evaluate()
            assert len(fired) == 1
            # still firing -> no re-alert while the episode lasts
            assert collector.evaluate() == []
            assert collector.alerts == fired

    def test_alert_emits_event_and_counter(self):
        clock = ManualClock()
        tracer, collector = self._collector(clock)
        with collector:
            for _ in range(4):
                clock.advance(1.0)
                with tracer.span("graph500.bfs"):
                    clock.advance(2.0)
            collector.evaluate()
        events = tracer.events("slo.alert")
        assert len(events) == 1
        assert events[0].attrs["policy"] == _policy().spec()
        assert tracer.metrics.flat()["slo.alerts"] == 1.0

    def test_alert_triggers_flight_recorder_snapshot(self, tmp_path):
        clock = ManualClock()
        tracer, collector = self._collector(clock)
        recorder = FlightRecorder(
            tracer, snapshot_dir=tmp_path, context={"workload": "t"}
        )
        with recorder, collector:
            for _ in range(4):
                clock.advance(1.0)
                with tracer.span("graph500.bfs"):
                    clock.advance(2.0)
            collector.evaluate()
        assert len(recorder.snapshots) == 1
        snap = recorder.snapshots[0]
        assert snap.reason == "alert-event:slo.alert"
        assert snap.path.exists()

    def test_clean_run_stays_quiet(self):
        clock = ManualClock()
        tracer, collector = self._collector(clock)
        with collector:
            for _ in range(8):
                clock.advance(1.0)
                with tracer.span("graph500.bfs"):
                    clock.advance(0.01)
            assert collector.evaluate() == []
        assert collector.alerts == []


class TestReplay:
    def _record_capture(self, path, durations):
        """Write a capture of one span per duration, a second apart."""
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with CaptureFile(path) as capture:
            exporter = ChannelExporter(capture, tracer, source="replayed")
            exporter.hello()
            tracer.add_listener(exporter)
            for duration in durations:
                clock.advance(1.0)
                with tracer.span("graph500.bfs"):
                    clock.advance(duration)
            exporter.close()

    def test_bad_capture_replays_to_alerts(self, tmp_path):
        path = tmp_path / "bad.capture"
        self._record_capture(path, [2.0] * 4)
        collector = Collector(
            Tracer(clock=ManualClock()), policies=[_policy()]
        )
        with collector:
            alerts = collector.replay(path)
        assert alerts
        # deterministic: a fresh collector reaches the same verdict
        again = Collector(
            Tracer(clock=ManualClock()), policies=[_policy()]
        )
        with again:
            assert [a.as_dict() for a in again.replay(path)] == [
                a.as_dict() for a in alerts
            ]

    def test_clean_capture_replays_clean(self, tmp_path):
        path = tmp_path / "ok.capture"
        self._record_capture(path, [0.01] * 6)
        collector = Collector(
            Tracer(clock=ManualClock()), policies=[_policy()]
        )
        with collector:
            assert collector.replay(path) == []
