"""Per-device tracks and simulated-clock annotations from the hetero layer."""

import pytest

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bfs.profiler import pick_sources
from repro.graph.generators import rmat
from repro.hetero.cross import CrossArchitectureBFS
from repro.hetero.executor import annotate_sim_report, execute_plan
from repro.hetero.planner import cross_plan
from repro.obs import Tracer, chrome_trace, validate_chrome_trace


@pytest.fixture(scope="module")
def machine():
    return SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})


class FixedPredictor:
    def __init__(self, m=50.0, n=50.0):
        self.m, self.n = m, n

    def predict_mn(self, graph, arch_td, arch_bu):
        return self.m, self.n


class TestExecutePlan:
    def test_device_tracks_and_sim_annotations(
        self, machine, rmat_small, rmat_source, small_profile
    ):
        plan = cross_plan(small_profile, 50, 50, 50, 50)
        tracer = Tracer()
        result, report = execute_plan(
            machine, rmat_small, rmat_source, plan, tracer=tracer
        )
        result.validate(rmat_small)
        # Real wall spans on dev:<device> tracks, one per plan step.
        dev_tracks = {
            r.track for r in tracer.spans("hetero.level")
        }
        assert dev_tracks == {f"dev:{step.device}" for step in plan}
        # Simulated schedule laid on sim:<device> tracks with the
        # simulator's clock: level i's span covers its SimReport slot.
        sim = tracer.spans("sim.level")
        assert len(sim) == len(plan)
        assert [r.duration for r in sim] == pytest.approx(
            list(report.level_seconds)
        )
        assert {r.track for r in sim} == {
            f"sim:{step.device}" for step in plan
        }

    def test_transfer_spans_only_when_nonzero(
        self, machine, small_profile
    ):
        plan = cross_plan(small_profile, 50, 50, 50, 50)
        tracer = Tracer()
        report = machine.run(small_profile, plan)
        annotate_sim_report(tracer, report)
        transfers = tracer.spans("sim.transfer")
        nonzero = int((report.transfer_seconds > 0).sum())
        assert len(transfers) == nonzero
        assert all(r.track == "sim:transfer" for r in transfers)

    def test_trace_exports_cleanly(
        self, machine, rmat_small, rmat_source, small_profile
    ):
        plan = cross_plan(small_profile, 50, 50, 50, 50)
        tracer = Tracer()
        execute_plan(machine, rmat_small, rmat_source, plan, tracer=tracer)
        trace = chrome_trace(tracer)
        assert validate_chrome_trace(trace) > 0


class TestCrossArchitectureAuditWiring:
    def test_audit_off_by_default(self, machine):
        g = rmat(10, 16, seed=7)
        src = int(pick_sources(g, 1, seed=3)[0])
        run = CrossArchitectureBFS(machine, FixedPredictor()).run(g, src)
        assert run.audit is None

    def test_audit_attached_and_event_emitted(self, machine):
        g = rmat(10, 16, seed=7)
        src = int(pick_sources(g, 1, seed=3)[0])
        tracer = Tracer()
        runner = CrossArchitectureBFS(
            machine, FixedPredictor(), audit=True, audit_candidates=30
        )
        run = runner.run(g, src, tracer=tracer)
        assert run.audit is not None
        assert run.audit.candidates_searched == 31
        assert run.audit.predicted == (50.0, 50.0, 50.0, 50.0)
        assert len(tracer.spans("cross.audit")) == 1
        assert len(tracer.events("audit.cross_architecture")) == 1
        # Prediction side of the decision channel fired too.
        assert len(tracer.events("tuning.predicted_mn")) >= 1
        assert len(tracer.spans("cross.predict")) == 1
        assert len(tracer.spans("cross.traverse")) == 1
