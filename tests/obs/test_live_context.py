"""Trace-context propagation: ``TraceContext`` round-trips, context
installation, explicit span parents and record adoption — the in-process
half of cross-process stitching."""

import pytest

from repro.errors import ObsError
from repro.obs.clock import ManualClock
from repro.obs.tracer import (
    EventRecord,
    SpanRecord,
    TraceContext,
    TraceListener,
    Tracer,
)


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext(
            trace_id="abc123", parent_span_id=7, baggage={"root": 3}
        )
        again = TraceContext.from_dict(ctx.as_dict())
        assert again == ctx

    def test_round_trip_without_parent(self):
        ctx = TraceContext(trace_id="abc123")
        again = TraceContext.from_dict(ctx.as_dict())
        assert again.parent_span_id is None
        assert again.baggage == {}

    def test_from_dict_coerces_types(self):
        ctx = TraceContext.from_dict(
            {"trace_id": "t", "parent_span_id": "12"}
        )
        assert ctx.parent_span_id == 12

    def test_malformed_payload_raises(self):
        with pytest.raises(ObsError):
            TraceContext.from_dict({"parent_span_id": 1})
        with pytest.raises(ObsError):
            TraceContext.from_dict("not a dict")


class TestCurrentContext:
    def test_empty_tracer_has_no_parent(self):
        tracer = Tracer(clock=ManualClock(), trace_id="tid")
        ctx = tracer.current_context()
        assert ctx.trace_id == "tid"
        assert ctx.parent_span_id is None

    def test_innermost_open_span_is_the_parent(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("outer") as outer:
            assert tracer.current_context().parent_span_id == outer.span_id
            with tracer.span("inner") as inner:
                assert (
                    tracer.current_context().parent_span_id == inner.span_id
                )
            assert tracer.current_context().parent_span_id == outer.span_id

    def test_baggage_kwargs_attach(self):
        tracer = Tracer(clock=ManualClock())
        ctx = tracer.current_context(workload="rmat-s8", child=1)
        assert ctx.baggage == {"workload": "rmat-s8", "child": 1}

    def test_installed_context_survives_reexport(self):
        # a child with an empty stack re-exports the *installed*
        # parent id, so grandchildren still stitch to the right span
        tracer = Tracer(clock=ManualClock())
        inherited = TraceContext(
            trace_id="parent-trace", parent_span_id=42, baggage={"a": 1}
        )
        with tracer.use_context(inherited):
            ctx = tracer.current_context(b=2)
            assert ctx.trace_id == "parent-trace"
            assert ctx.parent_span_id == 42
            assert ctx.baggage == {"a": 1, "b": 2}


class TestUseContext:
    def test_adopts_trace_id_and_restores(self):
        tracer = Tracer(clock=ManualClock(), trace_id="own")
        ctx = TraceContext(trace_id="inherited", parent_span_id=9)
        with tracer.use_context(ctx):
            assert tracer.trace_id == "inherited"
        assert tracer.trace_id == "own"

    def test_root_spans_parent_under_the_context(self):
        tracer = Tracer(clock=ManualClock())
        ctx = TraceContext(trace_id="t", parent_span_id=99)
        with tracer.use_context(ctx):
            with tracer.span("root"):
                pass
            with tracer.span("outer"):
                with tracer.span("nested"):
                    pass
        by_name = {r.name: r for r in tracer.spans()}
        assert by_name["root"].parent_id == 99
        assert by_name["outer"].parent_id == 99
        # nested spans still parent on the local stack
        assert by_name["nested"].parent_id == by_name["outer"].span_id

    def test_explicit_parent_beats_the_context(self):
        tracer = Tracer(clock=ManualClock())
        ctx = TraceContext(trace_id="t", parent_span_id=99)
        with tracer.use_context(ctx):
            with tracer.span("pinned", parent=7):
                pass
        assert tracer.spans("pinned")[0].parent_id == 7

    def test_needs_a_trace_context(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ObsError):
            with tracer.use_context({"trace_id": "t"}):
                pass


class TestSpanIdStart:
    def test_ids_start_in_the_requested_range(self):
        tracer = Tracer(clock=ManualClock(), span_id_start=1 << 32)
        with tracer.span("a"):
            pass
        assert tracer.spans("a")[0].span_id >= 1 << 32

    def test_invalid_start_rejected(self):
        with pytest.raises(ObsError):
            Tracer(span_id_start=0)


class _Recording(TraceListener):
    def __init__(self):
        self.closed = []
        self.events = []

    def on_span_close(self, record):
        self.closed.append(record)

    def on_event(self, record):
        self.events.append(record)


class TestAdoptRecord:
    def _span_record(self, **over):
        base = dict(
            name="child.work",
            start=1.0,
            end=2.0,
            span_id=(1 << 32) + 1,
            parent_id=5,
            thread_id=1,
            thread_name="MainThread",
            track="child-0:MainThread",
            attrs={"scale": 6},
        )
        base.update(over)
        return SpanRecord(**base)

    def test_span_ids_preserved_verbatim(self):
        tracer = Tracer(clock=ManualClock())
        record = self._span_record()
        tracer.adopt_record(record)
        assert tracer.spans("child.work") == (record,)
        assert tracer.spans()[0].span_id == (1 << 32) + 1
        assert tracer.spans()[0].parent_id == 5

    def test_listeners_notified_like_local_records(self):
        tracer = Tracer(clock=ManualClock())
        listener = tracer.add_listener(_Recording())
        tracer.adopt_record(self._span_record())
        event = EventRecord(
            name="child.note",
            timestamp=1.5,
            thread_id=1,
            thread_name="MainThread",
            track="child-0:MainThread",
            attrs={},
        )
        tracer.adopt_record(event)
        assert [r.name for r in listener.closed] == ["child.work"]
        assert [e.name for e in listener.events] == ["child.note"]

    def test_span_ending_before_start_rejected(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ObsError):
            tracer.adopt_record(self._span_record(start=3.0, end=2.0))

    def test_non_record_rejected(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ObsError):
            tracer.adopt_record({"name": "x"})


class TestMetricListenerCallbacks:
    def test_count_gauge_observe_notify(self):
        seen = []

        class L(TraceListener):
            def on_metric(self, name, kind, value):
                seen.append((name, kind, value))

        tracer = Tracer(clock=ManualClock())
        tracer.add_listener(L())
        tracer.count("bfs.levels", 2)
        tracer.gauge_set("frontier.claim_ratio", 0.5)
        tracer.observe("teps", 1e6)
        assert seen == [
            ("bfs.levels", "count", 2.0),
            ("frontier.claim_ratio", "gauge", 0.5),
            ("teps", "observe", 1e6),
        ]
