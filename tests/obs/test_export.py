"""JSONL round-trip and Chrome trace-event schema validation."""

import json

import numpy as np
import pytest

from repro.errors import ExportError
from repro.obs import (
    JSONL_FORMAT,
    ManualClock,
    Tracer,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture()
def recording():
    """A small deterministic recording with nesting, tracks, and events."""
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    with tracer.span("bfs.hybrid", source=3):
        clock.advance(0.1)
        with tracer.span("bfs.level", depth=0):
            clock.advance(0.2)
        tracer.instant("bfs.direction", depth=1, direction="bu")
        with tracer.span("bfs.level", depth=1):
            clock.advance(0.3)
    tracer.add_span("sim.level", 0.0, 0.4, track="sim:gpu", level=0)
    tracer.count("bfs.levels", 2)
    tracer.observe("teps", 123.0)
    return tracer


class TestJsonl:
    def test_round_trip_is_lossless(self, recording, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = write_jsonl(recording, path, scale=10)
        meta, spans, events = read_jsonl(path)
        assert lines == 1 + len(spans) + len(events)
        assert meta["format"] == JSONL_FORMAT
        assert meta["scale"] == 10
        assert meta["spans"] == len(spans) == 4
        assert meta["events"] == len(events) == 1
        assert spans == list(recording.spans())
        assert events == list(recording.events())
        assert meta["metrics"]["bfs.levels"]["value"] == 2

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\n', encoding="utf-8")
        with pytest.raises(ExportError, match="meta header"):
            read_jsonl(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "meta", "format": "other/9"}\n', encoding="utf-8"
        )
        with pytest.raises(ExportError, match="unsupported format"):
            read_jsonl(path)

    def test_unknown_kind_rejected(self, recording, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_jsonl(recording, path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "mystery"}\n')
        with pytest.raises(ExportError, match="unknown record kind"):
            read_jsonl(path)

    def test_non_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ExportError, match="not JSON"):
            read_jsonl(path)


class TestChromeTrace:
    def test_structure_and_validation(self, recording):
        trace = chrome_trace(recording, scale=10)
        assert validate_chrome_trace(trace) == len(trace["traceEvents"])
        phases = [ev["ph"] for ev in trace["traceEvents"]]
        assert phases.count("X") == 4
        assert phases.count("i") == 1
        assert trace["otherData"]["scale"] == 10
        assert trace["otherData"]["metrics"]["teps"]["count"] == 1

    def test_one_named_row_per_track(self, recording):
        trace = chrome_trace(recording)
        meta = [
            ev
            for ev in trace["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        ]
        names = {ev["args"]["name"] for ev in meta}
        assert "sim:gpu" in names
        tids = {ev["tid"] for ev in meta}
        assert len(tids) == len(meta)
        sim_tid = next(
            ev["tid"] for ev in meta if ev["args"]["name"] == "sim:gpu"
        )
        sim_events = [
            ev
            for ev in trace["traceEvents"]
            if ev["ph"] == "X" and ev["name"] == "sim.level"
        ]
        assert all(ev["tid"] == sim_tid for ev in sim_events)

    def test_timestamps_shifted_to_zero_microseconds(self, recording):
        trace = chrome_trace(recording)
        xs = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
        assert min(ev["ts"] for ev in xs) == 0.0
        root = next(ev for ev in xs if ev["name"] == "bfs.hybrid")
        assert root["dur"] == pytest.approx(0.6e6)

    def test_numpy_attrs_become_plain_json(self, recording, tmp_path):
        recording.instant("np", value=np.int64(7), arr=(np.float64(1.5),))
        path = tmp_path / "out.trace.json"
        write_chrome_trace(recording, path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        ev = next(
            e for e in loaded["traceEvents"] if e.get("name") == "np"
        )
        assert ev["args"] == {"value": 7, "arr": [1.5]}

    def test_write_then_validate_path(self, recording, tmp_path):
        path = tmp_path / "out.trace.json"
        write_chrome_trace(recording, path)
        assert validate_chrome_trace(path) > 0


class TestValidator:
    def test_rejects_missing_trace_events(self):
        with pytest.raises(ExportError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_bad_phase(self):
        bad = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1}]}
        with pytest.raises(ExportError, match="bad phase"):
            validate_chrome_trace(bad)

    def test_rejects_missing_tid(self):
        bad = {"traceEvents": [{"ph": "i", "name": "x", "pid": 1, "ts": 0}]}
        with pytest.raises(ExportError, match="tid"):
            validate_chrome_trace(bad)

    def test_rejects_negative_duration(self):
        bad = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "x",
                    "pid": 1,
                    "tid": 1,
                    "ts": 0,
                    "dur": -1,
                }
            ]
        }
        with pytest.raises(ExportError, match="dur"):
            validate_chrome_trace(bad)

    def test_rejects_unreadable_path(self, tmp_path):
        with pytest.raises(ExportError, match="cannot read"):
            validate_chrome_trace(tmp_path / "missing.trace.json")
