"""timed_bfs is a thin tracer consumer: its totals ARE the span sums."""

import pytest

from repro.bfs.timing import timed_bfs
from repro.obs import ManualClock, Tracer, use_tracer


class TestTimedBfsTracerIntegration:
    def test_totals_equal_span_sums_exactly(self, rmat_small, rmat_source):
        run = timed_bfs(rmat_small, rmat_source, m=14.0, n=24.0)
        assert run.tracer is not None
        level_spans = run.tracer.spans("bfs.level")
        assert len(level_spans) == len(run.levels)
        # Equality is exact, not approximate: each TimedLevel.seconds
        # is read from its span's duration, same floats summed.
        assert run.total_seconds == sum(r.duration for r in level_spans)
        for lv, rec in zip(run.levels, level_spans):
            assert lv.seconds == rec.duration
            assert rec.attrs["depth"] == lv.level
            assert rec.attrs["direction"] == lv.direction
            assert rec.attrs["edges_examined"] == lv.edges_examined

    def test_ambient_tracer_is_reused(self, rmat_small, rmat_source):
        tracer = Tracer()
        with use_tracer(tracer):
            run = timed_bfs(rmat_small, rmat_source)
        assert run.tracer is tracer
        assert len(tracer.spans("bfs.level")) == len(run.levels)
        assert tracer.spans("bfs.timed")[0].attrs["levels"] == len(
            run.levels
        )

    def test_private_tracer_when_disabled(self, rmat_small, rmat_source):
        # No enabled ambient tracer: timing must still work, via a
        # private recorder exposed on the run.
        run = timed_bfs(rmat_small, rmat_source)
        assert run.tracer is not None
        assert run.tracer.enabled
        assert run.total_seconds > 0

    def test_explicit_tracer_with_manual_clock(
        self, rmat_small, rmat_source
    ):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        run = timed_bfs(rmat_small, rmat_source, tracer=tracer)
        # The manual clock never advanced, so every level reads 0.0 —
        # proof the seconds come from the tracer's clock, not an
        # internal perf_counter.
        assert run.total_seconds == 0.0
        assert all(lv.seconds == 0.0 for lv in run.levels)

    def test_direction_decisions_emitted(self, rmat_small, rmat_source):
        tracer = Tracer()
        run = timed_bfs(
            rmat_small, rmat_source, m=14.0, n=24.0, tracer=tracer
        )
        decisions = tracer.events("bfs.direction")
        assert len(decisions) == len(run.levels)
        assert [e.attrs["direction"] for e in decisions] == list(
            run.result.directions
        )

    def test_metrics_fed(self, rmat_small, rmat_source):
        tracer = Tracer()
        run = timed_bfs(rmat_small, rmat_source, tracer=tracer)
        snap = tracer.metrics.snapshot()
        assert snap["bfs.levels"]["value"] == len(run.levels)
        assert snap["bfs.edges_examined"]["value"] == sum(
            run.result.edges_examined
        )
        assert snap["teps"]["count"] == 1

    def test_result_unchanged_by_tracing(self, rmat_small, rmat_source):
        baseline = timed_bfs(rmat_small, rmat_source, m=14.0, n=24.0)
        traced = timed_bfs(
            rmat_small, rmat_source, m=14.0, n=24.0, tracer=Tracer()
        )
        assert (
            traced.result.parent.tolist()
            == baseline.result.parent.tolist()
        )
        assert traced.result.directions == baseline.result.directions
        traced.result.validate(rmat_small)
