"""Regression detector and drift monitor on synthetic series.

The synthetic histories isolate each statistical behaviour: a stable
noisy series must pass, an injected 2x slowdown must fail with the
metric named, a constant baseline (MAD = 0) must still gate on the
relative threshold, and short series must be skipped — never failed.
"""

import math

import pytest

from repro.errors import MonitorError
from repro.obs.history import RunRecord
from repro.obs.monitor import (
    DEFAULT_POLICIES,
    DriftMonitor,
    MetricPolicy,
    detect_regressions,
    flatten_metrics,
)
from repro.obs.tracer import Tracer


def _run(teps, *, workload="rmat-s10", levels=25.0, audit=None):
    return RunRecord(
        kind="graph500",
        workload=workload,
        metrics={"bfs.levels": {"type": "counter", "value": levels}},
        teps=teps,
        audit=audit,
    )


class TestFlattenMetrics:
    def test_counter_gauge_histogram_teps_audit(self):
        rec = RunRecord(
            kind="bfs",
            workload="w",
            metrics={
                "bfs.levels": {"type": "counter", "value": 7.0},
                "frontier.size": {"type": "gauge", "value": 3.0},
                "teps": {
                    "type": "histogram",
                    "count": 4,
                    "sum": 10.0,
                    "mean": 2.5,
                    "p50": 2.0,
                    "p90": 3.7,
                    "p99": 3.97,
                },
                "empty": {"type": "histogram", "count": 0},
            },
            teps=9.0,
            audit={"slowdown": 1.5},
        )
        flat = flatten_metrics(rec)
        assert flat["bfs.levels"] == 7.0
        assert flat["frontier.size"] == 3.0
        assert flat["teps.p50"] == 2.0
        assert flat["teps.count"] == 4.0
        assert flat["run.teps"] == 9.0
        assert flat["audit.slowdown"] == 1.5
        assert not any(k.startswith("empty") for k in flat)


class TestDetectRegressions:
    def test_stable_noisy_series_passes(self):
        records = [_run(1e8 * (1 + 0.02 * (i % 3 - 1))) for i in range(8)]
        report = detect_regressions(records)
        assert report.ok
        assert report.exit_code == 0
        assert any(c["metric"] == "run.teps" for c in report.checked)

    def test_injected_2x_slowdown_fails_and_names_metric(self):
        records = [_run(1e8 * (1 + 0.02 * (i % 3 - 1))) for i in range(7)]
        records.append(_run(0.45e8))  # the injected >2x slowdown
        report = detect_regressions(records)
        assert not report.ok
        assert report.exit_code == 1
        assert [f.metric for f in report.findings] == ["run.teps"]
        finding = report.findings[0]
        assert finding.degradation > 0.49
        assert "run.teps" in report.render()
        assert report.as_dict()["findings"][0]["metric"] == "run.teps"

    def test_mad_zero_baseline_still_gates_on_threshold(self):
        # Perfectly constant baseline: MAD = 0 makes any deviation
        # infinitely surprising; the relative threshold decides alone.
        records = [_run(1e8) for _ in range(6)] + [_run(0.4e8)]
        report = detect_regressions(records)
        assert not report.ok
        assert math.isinf(report.findings[0].score)
        # ... and a tiny wiggle on a constant baseline is NOT flagged.
        records = [_run(1e8) for _ in range(6)] + [_run(0.99e8)]
        assert detect_regressions(records).ok

    def test_min_samples_guard_skips_short_series(self):
        records = [_run(1e8), _run(0.1e8)]  # huge drop, 1 baseline run
        report = detect_regressions(records, min_samples=3)
        assert report.ok
        assert any(
            s["metric"] == "run.teps" and "need 3" in s["reason"]
            for s in report.skipped
        )

    def test_lower_is_better_direction(self):
        policies = {
            "audit.slowdown": MetricPolicy(higher_is_better=False, threshold=0.25)
        }
        base = [
            _run(None, audit={"slowdown": 1.0 + 0.01 * (i % 2)})
            for i in range(6)
        ]
        good = detect_regressions(
            base + [_run(None, audit={"slowdown": 1.02})], policies=policies
        )
        assert good.ok
        bad = detect_regressions(
            base + [_run(None, audit={"slowdown": 2.0})], policies=policies
        )
        assert [f.metric for f in bad.findings] == ["audit.slowdown"]

    def test_series_isolated_by_workload(self):
        # A scale-10 smoke run must not be judged against scale-15 data.
        records = [_run(1e8, workload="rmat-s15") for _ in range(6)]
        records.append(_run(1e4, workload="rmat-s10"))
        report = detect_regressions(records)  # newest series: rmat-s10
        assert report.workload == "rmat-s10"
        assert report.ok  # no baseline in its own series yet
        assert report.baseline_runs == 0

    def test_window_bounds_baseline(self):
        records = [_run(1e4) for _ in range(20)] + [_run(1e8) for _ in range(9)]
        report = detect_regressions(records, window=8)
        # All 8 baseline runs come from the fast regime; no regression.
        assert report.baseline_runs == 8
        assert report.ok

    def test_unpoliced_metrics_ignored(self):
        records = [
            RunRecord(kind="bfs", workload="w",
                      metrics={"exotic.thing": {"type": "gauge", "value": v}})
            for v in (1.0, 1.0, 1.0, 1.0, 100.0)
        ]
        assert detect_regressions(records).ok

    def test_empty_history_raises(self):
        with pytest.raises(MonitorError):
            detect_regressions([])

    def test_unknown_series_raises(self):
        with pytest.raises(MonitorError, match="no records"):
            detect_regressions([_run(1.0)], kind="bench.kernels", workload="x")

    def test_parameter_validation(self):
        with pytest.raises(MonitorError):
            detect_regressions([_run(1.0)], window=0)
        with pytest.raises(MonitorError):
            detect_regressions([_run(1.0)], min_samples=1)
        with pytest.raises(MonitorError):
            MetricPolicy(higher_is_better=True, threshold=0.0)

    def test_default_policies_cover_the_emitted_names(self):
        for name in ("run.teps", "audit.slowdown", "bfs.edges_examined"):
            assert name in DEFAULT_POLICIES


class TestDriftMonitor:
    def test_stable_series_never_alerts(self):
        mon = DriftMonitor(window=4, tolerance=1.25, min_runs=3)
        for _ in range(10):
            assert mon.observe(1.05, family="rmat", arch="cpu") is None
        assert mon.alerts == ()

    def test_drifting_series_alerts_after_min_runs(self):
        mon = DriftMonitor(window=4, tolerance=1.25, min_runs=3)
        assert mon.observe(1.6) is None
        assert mon.observe(1.6) is None
        alert = mon.observe(1.6)
        assert alert is not None
        assert alert.mean_slowdown == pytest.approx(1.6)
        assert alert.runs == 3
        assert "DRIFT ALERT" in alert.render()

    def test_window_forgets_old_mistuning(self):
        mon = DriftMonitor(window=3, tolerance=1.25, min_runs=3)
        for _ in range(3):
            mon.observe(2.0)
        assert mon.alerts  # drifted
        for _ in range(3):
            pass
        recovered = [mon.observe(1.0) for _ in range(3)]
        assert recovered[-1] is None  # window now all-clean

    def test_series_keyed_by_family_and_arch(self):
        mon = DriftMonitor(min_runs=2, tolerance=1.25)
        mon.observe(2.0, family="rmat", arch="cpu")
        assert mon.observe(2.0, family="web", arch="cpu") is None  # other series
        assert mon.series("rmat", "cpu") == (2.0,)
        assert mon.observe(2.0, family="rmat", arch="cpu") is not None

    def test_accepts_report_like_and_dict_verdicts(self):
        class Verdictish:
            slowdown = 1.9

        mon = DriftMonitor(min_runs=2, tolerance=1.25)
        mon.observe(Verdictish())
        alert = mon.observe({"slowdown": 1.9})
        assert alert is not None

    def test_emits_instant_and_counter_on_alert(self):
        tracer = Tracer()
        mon = DriftMonitor(min_runs=2, tolerance=1.25, tracer=tracer)
        mon.observe(2.0)
        mon.observe(2.0)
        events = [e for e in tracer.events() if e.name == "tuning.drift_alert"]
        assert len(events) == 1
        snap = tracer.metrics.snapshot()["tuning.drift_alerts"]
        assert snap["value"] == 1.0

    def test_state_summary(self):
        mon = DriftMonitor(min_runs=2, tolerance=1.25)
        mon.observe(2.0, family="rmat", arch="cpu")
        mon.observe(2.0, family="rmat", arch="cpu")
        state = mon.state()["rmat/cpu"]
        assert state["runs"] == 2
        assert state["drifting"] is True

    def test_invalid_inputs(self):
        mon = DriftMonitor()
        with pytest.raises(MonitorError):
            mon.observe(0.5)  # slowdown < 1 is impossible by construction
        with pytest.raises(MonitorError):
            mon.observe("fast")
        with pytest.raises(MonitorError):
            DriftMonitor(tolerance=0.9)
        with pytest.raises(MonitorError):
            DriftMonitor(window=0)
        with pytest.raises(MonitorError):
            DriftMonitor(min_runs=0)
