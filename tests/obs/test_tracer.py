"""Span lifecycle, nesting, threading, and the global-tracer plumbing."""

import logging
import threading

import pytest

from repro.errors import ObsError
from repro.obs import (
    NULL_TRACER,
    ManualClock,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.obs.tracer import _NULL_SPAN, TraceListener


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock=clock)


class TestSpans:
    def test_records_start_end_and_attrs(self, tracer, clock):
        with tracer.span("work", depth=3) as sp:
            clock.advance(0.5)
            sp.set("claimed", 7)
        (rec,) = tracer.spans()
        assert rec.name == "work"
        assert rec.start == 0.0 and rec.end == 0.5
        assert rec.duration == 0.5
        assert rec.attrs == {"depth": 3, "claimed": 7}

    def test_nesting_sets_parent_id(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.advance(0.25)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
            clock.advance(0.25)
        inner_rec = tracer.spans("inner")[0]
        outer_rec = tracer.spans("outer")[0]
        assert inner_rec.parent_id == outer.span_id
        assert outer_rec.parent_id is None
        assert inner.span_id != outer.span_id

    def test_span_seconds_totals_by_name(self, tracer, clock):
        for _ in range(3):
            with tracer.span("level"):
                clock.advance(0.1)
        totals = tracer.span_seconds()
        assert totals == pytest.approx({"level": 0.3})

    def test_summary_rows_sorted_by_total(self, tracer, clock):
        with tracer.span("short"):
            clock.advance(0.1)
        with tracer.span("long"):
            clock.advance(1.0)
        rows = tracer.summary_rows()
        assert [r["span"] for r in rows] == ["long", "short"]
        assert rows[0]["count"] == 1
        assert rows[0]["total_ms"] == pytest.approx(1000.0)
        assert rows[0]["mean_ms"] == pytest.approx(1000.0)

    def test_duration_before_close_raises(self, tracer):
        sp = tracer.span("open")
        with pytest.raises(ObsError):
            sp.duration

    def test_out_of_order_close_raises(self, tracer):
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObsError):
            outer.__exit__(None, None, None)

    def test_clear_drops_records_keeps_metrics(self, tracer, clock):
        with tracer.span("x"):
            clock.advance(0.1)
        tracer.instant("e")
        tracer.count("n")
        tracer.clear()
        assert tracer.spans() == ()
        assert tracer.events() == ()
        assert tracer.metrics.counter("n").value == 1.0


class TestSyntheticSpans:
    def test_add_span_records_external_timeline(self, tracer):
        rec = tracer.add_span("sim.level", 2.0, 3.5, track="sim:gpu", level=1)
        assert rec.duration == 1.5
        assert rec.track == "sim:gpu"
        assert rec.attrs == {"level": 1}
        assert tracer.spans("sim.level") == (rec,)

    def test_add_span_rejects_negative_duration(self, tracer):
        with pytest.raises(ObsError):
            tracer.add_span("bad", 1.0, 0.5)


class TestInstants:
    def test_instant_records_timestamp_and_attrs(self, tracer, clock):
        clock.advance(1.0)
        tracer.instant("bfs.direction", depth=2, direction="bu")
        (ev,) = tracer.events("bfs.direction")
        assert ev.timestamp == 1.0
        assert ev.attrs == {"depth": 2, "direction": "bu"}

    def test_events_filter_by_name(self, tracer):
        tracer.instant("a")
        tracer.instant("b")
        tracer.instant("a")
        assert len(tracer.events("a")) == 2
        assert len(tracer.events()) == 3


class TestMetricShorthands:
    def test_count_gauge_observe(self, tracer):
        tracer.count("bfs.levels", 4)
        tracer.gauge_set("frontier.size", 128)
        tracer.observe("teps", 1e6)
        snap = tracer.metrics.snapshot()
        assert snap["bfs.levels"]["value"] == 4
        assert snap["frontier.size"]["value"] == 128
        assert snap["teps"]["count"] == 1


class TestThreading:
    def test_worker_spans_parent_within_their_own_thread(self, tracer):
        n = 4
        barrier = threading.Barrier(n)

        def worker(i):
            with tracer.span("outer", worker=i) as outer:
                barrier.wait()
                with tracer.span("inner", worker=i):
                    pass
            return outer

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"w{i}")
            for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        inners = tracer.spans("inner")
        outers = tracer.spans("outer")
        assert len(inners) == len(outers) == n
        by_id = {r.span_id: r for r in outers}
        for rec in inners:
            parent = by_id[rec.parent_id]
            assert parent.attrs["worker"] == rec.attrs["worker"]
            assert parent.thread_name == rec.thread_name

    def test_thread_name_recorded(self, tracer):
        def work():
            with tracer.span("t"):
                pass

        t = threading.Thread(target=work, name="repro-test-worker")
        t.start()
        t.join()
        assert tracer.spans("t")[0].thread_name == "repro-test-worker"


class TestGlobalTracer:
    def test_default_is_null(self):
        assert isinstance(get_tracer(), Tracer)

    def test_use_tracer_installs_and_restores(self, tracer):
        before = get_tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self, tracer):
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)

    def test_set_tracer_rejects_non_tracer(self):
        with pytest.raises(ObsError):
            set_tracer(object())


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        nt = NullTracer()
        assert nt.enabled is False
        assert nt.span("a") is _NULL_SPAN
        assert nt.span("b", depth=1) is _NULL_SPAN

    def test_records_nothing(self):
        nt = NullTracer()
        with nt.span("x") as sp:
            sp.set("k", 1)
        nt.instant("e", depth=0)
        assert nt.add_span("s", 0.0, 1.0) is None
        nt.count("c")
        nt.gauge_set("g", 1.0)
        nt.observe("h", 1.0)
        assert nt.spans() == ()
        assert nt.events() == ()
        assert nt.metrics.names() == []

    def test_module_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestLoggerMirror:
    def test_spans_and_events_mirror_with_structured_extra(self, clock):
        logger = logging.getLogger("repro.obs.test-mirror")
        logger.setLevel(logging.DEBUG)
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = Capture()
        logger.addHandler(handler)
        try:
            tracer = Tracer(clock=clock, logger=logger)
            with tracer.span("bfs.level", depth=1):
                clock.advance(0.5)
            tracer.instant("bfs.direction", direction="td")
        finally:
            logger.removeHandler(handler)
        assert len(records) == 2
        payloads = [r.repro_event for r in records]
        assert payloads[0]["kind"] == "span"
        assert payloads[0]["name"] == "bfs.level"
        assert payloads[1]["kind"] == "event"
        assert payloads[1]["attrs"] == {"direction": "td"}

    def test_logger_true_resolves_package_logger(self):
        tracer = Tracer(logger=True)
        assert tracer.logger is logging.getLogger("repro.obs.trace")


class TestListeners:
    class Recorder(TraceListener):
        """A minimal listener capturing every callback."""

        def __init__(self):
            self.opened = []
            self.closed = []
            self.events = []

        def on_span_open(self, span):
            self.opened.append(span.name)

        def on_span_close(self, record):
            self.closed.append(record.name)

        def on_event(self, record):
            self.events.append(record.name)

    def test_add_listener_rejects_non_listener(self, tracer):
        with pytest.raises(ObsError, match="TraceListener"):
            tracer.add_listener(object())

    def test_listener_sees_opens_closes_and_events(self, tracer, clock):
        listener = tracer.add_listener(self.Recorder())
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.advance(0.1)
        tracer.instant("ping")
        assert listener.opened == ["outer", "inner"]
        assert listener.closed == ["inner", "outer"]
        assert listener.events == ["ping"]

    def test_add_span_notifies_close_only(self, tracer):
        listener = tracer.add_listener(self.Recorder())
        tracer.add_span("synthetic", 0.0, 1.0)
        assert listener.opened == []
        assert listener.closed == ["synthetic"]

    def test_remove_listener_stops_delivery(self, tracer):
        listener = tracer.add_listener(self.Recorder())
        tracer.remove_listener(listener)
        with tracer.span("quiet"):
            pass
        assert listener.closed == []

    def test_remove_absent_listener_is_noop(self, tracer):
        tracer.remove_listener(self.Recorder())

    def test_duplicate_add_delivers_once(self, tracer):
        listener = self.Recorder()
        tracer.add_listener(listener)
        tracer.add_listener(listener)
        with tracer.span("once"):
            pass
        assert listener.closed == ["once"]


class TestOpenSpanNames:
    def test_own_thread_stack_outermost_first(self, tracer):
        assert tracer.open_span_names() == ()
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.open_span_names() == ("outer", "inner")
            assert tracer.open_span_names() == ("outer",)
        assert tracer.open_span_names() == ()

    def test_cross_thread_read(self, tracer):
        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def worker():
            with tracer.span("worker.span"):
                entered.set()
                release.wait(timeout=5)

        t = threading.Thread(target=worker)
        t.start()
        try:
            assert entered.wait(timeout=5)
            seen["stack"] = tracer.open_span_names(t.ident)
        finally:
            release.set()
            t.join(timeout=5)
        assert seen["stack"] == ("worker.span",)
        assert tracer.open_span_names(t.ident) == ()
