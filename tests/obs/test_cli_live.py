"""The ``repro-bfs top`` and ``repro-bfs live record/check`` commands:
parser surface, the --once dashboard degradation, capture recording
(with and without an armed flight recorder) and the replay gate's exit
codes — each invocation through ``main()`` like a real shell call."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

# keep the demo workload tiny: these tests spawn real child processes
SMALL = ["--scale", "5", "--edgefactor", "4", "--roots", "2"]
# every traversal at scale 5 finishes in well under a second, so the
# default graph500.bfs<1.0@0.9 policy stays clean; this one cannot
TIGHT = [
    "--policy",
    "graph500.bfs<0.000001@0.9",
    "--slo-window",
    "0.5",
    "--fast-windows",
    "2",
    "--slow-windows",
    "5",
]


class TestParserSurface:
    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.command == "top"
        assert args.interval == 0.25
        assert args.duration == 120.0
        assert args.once is False
        assert args.scale == 8
        assert args.children == 1
        assert args.child_delay == 0.0
        assert args.policy is None
        assert (args.fast_windows, args.slow_windows) == (5, 60)

    def test_live_record_defaults(self):
        args = build_parser().parse_args(["live", "record"])
        assert args.live_command == "record"
        assert args.out == Path("live.capture")
        assert args.flight_dir is None
        assert args.slo_window == 1.0
        assert args.burn_threshold == 2.0

    def test_live_check_takes_a_capture(self):
        args = build_parser().parse_args(["live", "check", "x.capture"])
        assert args.live_command == "check"
        assert args.capture == Path("x.capture")
        assert args.json is False

    def test_policy_flag_repeats(self):
        args = build_parser().parse_args(
            ["top", "--policy", "a<1@0.9", "--policy", "b>2@0.5"]
        )
        assert args.policy == ["a<1@0.9", "b>2@0.5"]


class TestTopOnce:
    def test_renders_one_plain_frame_and_summary(self, capsys):
        rc = main(["top", "--once", *SMALL, "--duration", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro-bfs top" in out
        assert "\x1b[" not in out  # non-TTY: no ANSI control codes
        # the policed metric saw real traversals from both processes
        assert "*graph500.bfs" in out
        assert "live:" in out
        assert "0 alert(s)" in out

    def test_no_children_still_works(self, capsys):
        rc = main(
            ["top", "--once", *SMALL, "--children", "0", "--duration", "60"]
        )
        assert rc == 0
        assert "repro-bfs top" in capsys.readouterr().out


class TestLiveRecord:
    def test_writes_a_replayable_capture(self, tmp_path, capsys):
        out_path = tmp_path / "caps" / "run.capture"
        rc = main(["live", "record", *SMALL, "--out", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert out_path.exists()
        assert f"wrote" in out and str(out_path) in out
        assert "0 alert(s)" in out

    def test_injected_slowdown_arms_the_flight_recorder(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "bad.capture"
        flight_dir = tmp_path / "flight"
        rc = main(
            [
                "live",
                "record",
                *SMALL,
                "--children",
                "1",
                "--child-delay",
                "0.2",
                *TIGHT,
                "--out",
                str(out_path),
                "--flight-dir",
                str(flight_dir),
            ]
        )
        out = capsys.readouterr().out
        # record itself succeeds; the verdict belongs to `live check`
        assert rc == 0
        assert "alert(s)" in out and "0 alert(s)" not in out
        assert "snapshot:" in out
        assert any(flight_dir.iterdir())

    def test_malformed_policy_rejected(self, tmp_path):
        from repro.errors import LiveError

        with pytest.raises(LiveError, match="not a spec"):
            main(
                [
                    "live",
                    "record",
                    "--policy",
                    "not a spec",
                    "--out",
                    str(tmp_path / "x.capture"),
                ]
            )


class TestLiveCheck:
    @pytest.fixture(scope="class")
    def captures(self, tmp_path_factory):
        """One clean and one violating capture, recorded once."""
        root = tmp_path_factory.mktemp("captures")
        clean = root / "clean.capture"
        bad = root / "bad.capture"
        assert main(["live", "record", *SMALL, "--out", str(clean)]) == 0
        assert (
            main(
                [
                    "live",
                    "record",
                    *SMALL,
                    "--child-delay",
                    "0.2",
                    *TIGHT,
                    "--out",
                    str(bad),
                ]
            )
            == 0
        )
        return {"clean": clean, "bad": bad}

    def test_clean_capture_passes(self, captures, capsys):
        rc = main(["live", "check", str(captures["clean"])])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ok" in out
        assert "FAIL" not in out

    def test_violating_capture_fails(self, captures, capsys):
        rc = main(["live", "check", str(captures["bad"]), *TIGHT])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        assert "graph500.bfs" in out

    def test_json_verdict(self, captures, capsys):
        rc = main(["live", "check", str(captures["bad"]), *TIGHT, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["capture"] == str(captures["bad"])
        assert payload["frames"] > 0
        # spec() re-renders the threshold through repr()
        assert payload["policies"] == ["graph500.bfs<1e-06@0.9"]
        assert payload["alerts"]
        assert payload["alerts"][0]["metric"] == "graph500.bfs"

    def test_missing_capture_is_an_infra_error(self, tmp_path, capsys):
        rc = main(["live", "check", str(tmp_path / "absent.capture")])
        assert rc == 2
        assert "live check:" in capsys.readouterr().err

    def test_corrupt_capture_is_an_infra_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.capture"
        path.write_bytes(b"\x00\x00\x00\x04junk")
        rc = main(["live", "check", str(path)])
        assert rc == 2
        assert "live check:" in capsys.readouterr().err


class TestLiveDispatch:
    def test_missing_subcommand_prints_usage(self, capsys):
        rc = main(["live"])
        assert rc == 2
        assert "usage: repro-bfs live" in capsys.readouterr().err
