"""Integration tests: every example script runs end to end.

Each example is executed in-process (its ``main`` imported and run with
a tiny scale via ``sys.argv``) so failures point at real lines, and the
printed narrative is checked for its key facts.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(monkeypatch, capsys, name: str, argv: list[str]) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setattr(sys, "argv", [name] + argv)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart", ["11", "16"])
    assert "GTEPS" in out
    assert "hybrid" in out
    assert "bu" in out  # the hybrid switched


def test_social_network(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "social_network_analysis", ["11"]
    )
    assert "Degrees of separation" in out
    assert "mean separation" in out
    assert "influencer" in out


def test_heterogeneous_tuning(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "heterogeneous_tuning", ["12"])
    assert "predicted switching points" in out
    assert "per-level placement" in out
    assert "oracle" in out


def test_graph500_run(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "graph500_run", ["10", "8", "4"])
    assert "kernel 1" in out
    assert "harmonic-mean" in out
    assert "validated" in out


def test_circuit_reachability(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "circuit_reachability", ["11"])
    assert "Reachability queries" in out
    assert "Fan-out cones" in out
    assert "logic depth" in out


def test_trace_bfs(monkeypatch, capsys, tmp_path):
    monkeypatch.chdir(tmp_path)  # exports land in a scratch dir
    out = run_example(monkeypatch, capsys, "trace_bfs", ["10", "64", "512"])
    assert "Span summary" in out
    assert "bfs.hybrid" in out
    assert "Direction per level" in out
    assert "mistuning report" in out
    assert "schema-validated" in out
    assert (tmp_path / "trace_bfs.trace.json").exists()
    assert (tmp_path / "trace_bfs.jsonl").exists()


def test_live_bfs(monkeypatch, capsys, tmp_path):
    monkeypatch.chdir(tmp_path)  # the capture/trace land in a scratch dir
    out = run_example(monkeypatch, capsys, "live_bfs", ["8"])
    assert "SLO: graph500.bfs<1@0.9" in out
    assert "Stitched:" in out
    assert "Merged teps observations: 8" in out
    assert "repro-bfs top" in out  # the dashboard frame
    assert "ok" in out and "FAIL" not in out
    assert (tmp_path / "live_bfs.capture").exists()
    assert (tmp_path / "live_bfs.trace.json").exists()
