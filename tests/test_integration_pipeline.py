"""End-to-end integration tests across subsystem boundaries.

Each test exercises a realistic multi-module path a downstream user
would take, including persistence in the middle — the places unit
tests cannot see breakage.
"""

import numpy as np
import pytest

from repro.arch import (
    CPU_SANDY_BRIDGE,
    GPU_K20X,
    MIC_KNC,
    SimulatedMachine,
    scale_profile,
)
from repro.bfs import bfs_hybrid, pick_sources, profile_bfs
from repro.graph import load_npz, rmat, save_npz
from repro.hetero import CrossArchitectureBFS, execute_plan, oracle_plan
from repro.tuning import (
    SwitchingPointPredictor,
    build_training_set,
    profile_graph,
)


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Train a predictor via disk round-trips at every stage."""
    tmp = tmp_path_factory.mktemp("pipeline")
    # Stage 1: generate graphs and persist them.
    paths = []
    for i, (scale, ef) in enumerate([(11, 8), (11, 16), (12, 16)]):
        g = rmat(scale, ef, seed=300 + i)
        p = tmp / f"g{i}.npz"
        save_npz(g, p)
        paths.append(p)
    # Stage 2: reload, profile, build the corpus.
    profiled = [
        profile_graph(load_npz(p), seed=i, tag=f"pipe{i}")
        for i, p in enumerate(paths)
    ]
    pairs = [
        (CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE),
        (GPU_K20X, GPU_K20X),
        (CPU_SANDY_BRIDGE, GPU_K20X),
    ]
    corpus = build_training_set(profiled, pairs, seed=0)
    # Stage 3: fit and persist the predictor.
    predictor = SwitchingPointPredictor().fit(corpus)
    predictor.save(tmp / "model")
    return tmp, SwitchingPointPredictor.load(tmp / "model")


class TestFullPipeline:
    def test_predictor_survives_roundtrips(self, pipeline):
        _, predictor = pipeline
        g = rmat(11, 16, seed=555)
        m, n = predictor.predict_mn(g, CPU_SANDY_BRIDGE, GPU_K20X)
        assert 1 <= m <= 1000 and 1 <= n <= 1000

    def test_algorithm3_on_fresh_graph(self, pipeline):
        _, predictor = pipeline
        machine = SimulatedMachine(
            {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X, "mic": MIC_KNC}
        )
        g = rmat(12, 16, seed=777)
        src = int(pick_sources(g, 1, seed=0)[0])
        run = CrossArchitectureBFS(machine, predictor).run(g, src)
        run.result.validate(g)
        # The predicted plan must beat GPU top-down on scaled counters.
        profile, _ = profile_bfs(g, src)
        big = scale_profile(profile, 2**10)
        from repro.arch import PlanStep
        from repro.bfs import Direction

        gputd = machine.run(
            big, [PlanStep("gpu", Direction.TOP_DOWN)] * len(big)
        )
        from repro.hetero import cross_plan

        cross = machine.run(
            big, cross_plan(big, run.m1, run.n1, run.m2, run.n2)
        )
        assert cross.total_seconds < gputd.total_seconds

    def test_oracle_plan_executes_and_validates(self, pipeline):
        machine = SimulatedMachine(
            {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X}
        )
        g = rmat(11, 16, seed=888)
        src = int(pick_sources(g, 1, seed=1)[0])
        profile, _ = profile_bfs(g, src)
        plan = oracle_plan(machine, profile)
        result, report = execute_plan(machine, g, src, plan)
        result.validate(g)
        assert report.total_seconds > 0
        # The executed directions match the plan exactly.
        assert result.directions == [s.direction for s in plan]

    def test_hybrid_with_predicted_point_is_correct(self, pipeline):
        """The regression's numbers feed the *real* hybrid engine."""
        _, predictor = pipeline
        g = rmat(12, 8, seed=999)
        src = int(pick_sources(g, 1, seed=2)[0])
        m, n = predictor.predict_mn(g, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)
        res = bfs_hybrid(g, src, m=m, n=n)
        res.validate(g)

    def test_graph500_flow_with_hybrid_engine(self, pipeline):
        from repro.graph500 import run_graph500

        res = run_graph500(10, 8, num_roots=4, seed=4)
        assert res.validated
        assert res.harmonic_mean_teps > 0


class TestDeterminism:
    """Same seeds, same answers — end to end."""

    def test_experiment_rows_reproducible(self, tmp_path):
        from repro.bench.experiments import run_experiment
        from repro.bench.runner import BenchConfig

        config = BenchConfig(
            base_scale=11,
            seeds=(0,),
            candidate_count=100,
            cache_dir=tmp_path / "c1",
        )
        config2 = BenchConfig(
            base_scale=11,
            seeds=(0,),
            candidate_count=100,
            cache_dir=tmp_path / "c2",
        )
        a = run_experiment("table3", config)
        b = run_experiment("table3", config2)
        assert a.rows == b.rows

    def test_corpus_reproducible(self):
        g = rmat(10, 8, seed=42)
        pg1 = profile_graph(g, seed=0)
        pg2 = profile_graph(g, seed=0)
        pairs = [(CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)]
        c1 = build_training_set([pg1], pairs, seed=0)
        c2 = build_training_set([pg2], pairs, seed=0)
        assert c1.best_m == c2.best_m
        assert c1.best_n == c2.best_n

    def test_svr_training_reproducible(self):
        g1 = rmat(10, 8, seed=42)
        pairs = [(CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE), (GPU_K20X, GPU_K20X)]
        corpus = build_training_set(
            [profile_graph(g1, seed=0)], pairs, seed=0
        )
        p1 = SwitchingPointPredictor().fit(corpus)
        p2 = SwitchingPointPredictor().fit(corpus)
        g = rmat(10, 16, seed=1)
        assert p1.predict_mn(
            g, CPU_SANDY_BRIDGE, GPU_K20X
        ) == p2.predict_mn(g, CPU_SANDY_BRIDGE, GPU_K20X)
