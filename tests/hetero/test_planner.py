"""Unit tests for plan builders."""

import numpy as np
import pytest

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.bfs.result import Direction
from repro.errors import PlanError
from repro.hetero.planner import (
    cross_plan,
    mn_directions,
    oracle_plan,
    single_device_plan,
)

TD, BU = Direction.TOP_DOWN, Direction.BOTTOM_UP


@pytest.fixture(scope="module")
def machine():
    return SimulatedMachine(
        {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X, "mic": MIC_KNC}
    )


class TestMNDirections:
    def test_matches_live_hybrid(self, rmat_small, rmat_source, small_profile):
        from repro.bfs.hybrid import bfs_hybrid

        for m, n in [(5, 50), (100, 100), (1, 1)]:
            live = bfs_hybrid(rmat_small, rmat_source, m=m, n=n)
            planned = mn_directions(small_profile, m, n)
            assert planned == live.directions, (m, n)

    def test_extremes(self, small_profile):
        # Tiny thresholds' reciprocals are huge -> always top-down.
        assert set(mn_directions(small_profile, 1e-9, 1e-9)) == {TD}

    def test_validation(self, small_profile):
        with pytest.raises(PlanError):
            mn_directions(small_profile, 0, 1)

    def test_single_device_plan(self, small_profile):
        plan = single_device_plan(small_profile, "cpu", 20, 100)
        assert all(s.device == "cpu" for s in plan)
        assert [s.direction for s in plan] == mn_directions(
            small_profile, 20, 100
        )


class TestCrossPlan:
    def test_structure(self, medium_profile):
        plan = cross_plan(medium_profile, 50, 50, 50, 50)
        devices = [s.device for s in plan]
        # Once on GPU, never back to CPU.
        if "gpu" in devices:
            first_gpu = devices.index("gpu")
            assert all(d == "gpu" for d in devices[first_gpu:])
        # CPU levels are always top-down.
        for s in plan:
            if s.device == "cpu":
                assert s.direction == TD

    def test_tail_returns_to_gpu_topdown(self, medium_profile):
        """Section IV: the last levels switch from GPUBU back to GPUTD."""
        plan = cross_plan(medium_profile, 50, 50, 50, 50)
        gpu_dirs = [s.direction for s in plan if s.device == "gpu"]
        if BU in gpu_dirs:
            assert gpu_dirs[-1] == TD

    def test_all_cpu_when_thresholds_never_fire(self, medium_profile):
        plan = cross_plan(medium_profile, 1e-9, 1e-9, 50, 50)
        assert all(s.device == "cpu" for s in plan)

    def test_immediate_handoff(self, medium_profile):
        plan = cross_plan(medium_profile, 1e12, 1e12, 1e12, 1e12)
        assert plan[0].device == "gpu"

    def test_validation(self, medium_profile):
        with pytest.raises(PlanError):
            cross_plan(medium_profile, 0, 1, 1, 1)
        with pytest.raises(PlanError):
            cross_plan(medium_profile, 1, 1, 1, -2)

    def test_custom_device_names(self, medium_profile):
        plan = cross_plan(
            medium_profile, 50, 50, 50, 50, cpu="host", gpu="accel"
        )
        assert {s.device for s in plan} <= {"host", "accel"}


class TestOraclePlan:
    def test_is_lower_bound(self, machine, medium_profile):
        """No (M, N)-rule plan on any single device can beat the oracle
        (ignoring transfers)."""
        plan = oracle_plan(machine, medium_profile)
        mats = machine.time_matrices(medium_profile)
        oracle_total = sum(
            mats[s.device][i, 0 if s.direction == TD else 1]
            for i, s in enumerate(plan)
        )
        for dev in ("cpu", "gpu", "mic"):
            t = mats[dev]
            best_single = float(np.minimum(t[:, 0], t[:, 1]).sum())
            assert oracle_total <= best_single + 1e-12

    def test_picks_cheapest_per_level(self, machine, medium_profile):
        plan = oracle_plan(machine, medium_profile)
        mats = machine.time_matrices(medium_profile)
        for i, s in enumerate(plan):
            chosen = mats[s.device][i, 0 if s.direction == TD else 1]
            for dev, t in mats.items():
                assert chosen <= t[i, 0] + 1e-15
                assert chosen <= t[i, 1] + 1e-15
