"""Unit tests for single-device combinations and Algorithm 3."""

import numpy as np
import pytest

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bfs.profiler import pick_sources
from repro.bfs.reference import bfs_reference
from repro.errors import PlanError
from repro.graph.generators import rmat
from repro.hetero.combination import run_single_device
from repro.hetero.cross import (
    CrossArchitectureBFS,
    run_cross_architecture,
)
from repro.hetero.executor import execute_plan
from repro.hetero.planner import cross_plan, oracle_plan


@pytest.fixture(scope="module")
def machine():
    return SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})


class FixedPredictor:
    """Deterministic stand-in for the regression model."""

    def __init__(self, m=50.0, n=50.0):
        self.m, self.n = m, n
        self.calls = []

    def predict_mn(self, graph, arch_td, arch_bu):
        self.calls.append((arch_td.name, arch_bu.name))
        return self.m, self.n


class TestRunSingleDevice:
    def test_reports(self, machine, medium_profile):
        runs = run_single_device(machine, medium_profile, "gpu", 50, 50)
        assert runs.device == "gpu"
        assert runs.top_down.total_seconds > 0
        # Combination never loses to both pure baselines.
        assert runs.combination.total_seconds <= max(
            runs.top_down.total_seconds, runs.bottom_up.total_seconds
        )
        assert runs.speedup_cb_over_td() > 1.0
        assert runs.speedup_cb_over_bu() > 0.5

    def test_unknown_device(self, machine, medium_profile):
        with pytest.raises(PlanError):
            run_single_device(machine, medium_profile, "tpu", 50, 50)


class TestRunCrossArchitecture:
    def test_charges_single_handoff(self, machine, medium_profile):
        rep = run_cross_architecture(machine, medium_profile, 50, 50, 50, 50)
        assert (rep.transfer_seconds > 0).sum() <= 1

    def test_beats_gpu_topdown(self, machine, medium_profile):
        from repro.arch.machine import PlanStep
        from repro.bfs.result import Direction

        cross = run_cross_architecture(machine, medium_profile, 50, 50, 50, 50)
        gputd = machine.run(
            medium_profile,
            [PlanStep("gpu", Direction.TOP_DOWN)] * len(medium_profile),
        )
        assert cross.total_seconds < gputd.total_seconds


class TestCrossArchitectureBFS:
    def test_end_to_end(self, machine):
        g = rmat(11, 16, seed=21)
        src = int(pick_sources(g, 1, seed=0)[0])
        predictor = FixedPredictor()
        runner = CrossArchitectureBFS(machine, predictor)
        run = runner.run(g, src)
        # Real traversal, validated.
        ref = bfs_reference(g, src)
        assert np.array_equal(run.result.level, ref.level)
        run.result.validate(g)
        # Algorithm 3 lines 1-2: two regression calls with the right pairs.
        assert predictor.calls == [
            ("cpu-snb", "gpu-k20x"),
            ("gpu-k20x", "gpu-k20x"),
        ]
        assert (run.m1, run.n1) == (50.0, 50.0)
        assert run.report.total_seconds > 0

    def test_missing_device_rejected(self):
        machine = SimulatedMachine({"cpu": CPU_SANDY_BRIDGE})
        with pytest.raises(PlanError):
            CrossArchitectureBFS(machine, FixedPredictor())


class TestExecutePlan:
    def test_matches_profile_based_pricing(self, machine):
        g = rmat(11, 16, seed=22)
        src = int(pick_sources(g, 1, seed=1)[0])
        from repro.bfs.profiler import profile_bfs

        profile, _ = profile_bfs(g, src)
        plan = cross_plan(profile, 50, 50, 50, 50)
        result, report = execute_plan(machine, g, src, plan)
        ref = bfs_reference(g, src)
        assert np.array_equal(result.level, ref.level)
        assert [s.direction for s in plan] == result.directions
        direct = machine.run(profile, plan)
        assert report.total_seconds == pytest.approx(direct.total_seconds)

    def test_plan_too_short(self, machine):
        g = rmat(11, 16, seed=23)
        src = int(pick_sources(g, 1, seed=2)[0])
        from repro.arch.machine import PlanStep
        from repro.bfs.result import Direction

        with pytest.raises(PlanError):
            execute_plan(
                machine, g, src, [PlanStep("cpu", Direction.TOP_DOWN)]
            )

    def test_plan_too_long(self, machine):
        from repro.arch.machine import PlanStep
        from repro.bfs.result import Direction
        from repro.graph.generators import star

        g = star(10)
        plan = [PlanStep("cpu", Direction.TOP_DOWN)] * 5
        with pytest.raises(PlanError):
            execute_plan(machine, g, 0, plan)

    def test_bad_source(self, machine, rmat_small):
        with pytest.raises(PlanError):
            execute_plan(machine, rmat_small, -1, [])

    def test_oracle_plan_executes(self, machine):
        g = rmat(11, 16, seed=24)
        src = int(pick_sources(g, 1, seed=3)[0])
        from repro.bfs.profiler import profile_bfs

        profile, _ = profile_bfs(g, src)
        plan = oracle_plan(machine, profile)
        result, report = execute_plan(machine, g, src, plan)
        result.validate(g)
