"""Drift-alert integration: a deliberately mistuned ``CostModelPolicy``
must self-report within a handful of audited runs.

The mistuning is physical, not synthetic: the policy decides with a
cost model whose architecture spec claims ~zero memory bandwidth, so
bottom-up always looks catastrophically expensive and the policy runs
pure top-down — while the *truth* model (the real Sandy Bridge spec)
prices that plan far above the post-hoc oracle.  The attached
:class:`~repro.obs.monitor.DriftMonitor` must raise a
:class:`~repro.obs.monitor.DriftAlert` within <= 5 audited traversals
(the acceptance bound), and a well-tuned policy (deciding on the truth
model itself) must never alert.
"""

from dataclasses import replace

import pytest

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.obs import Tracer, use_tracer
from repro.obs.monitor import DriftMonitor, PolicyAuditReport
from repro.tuning.online import CostModelPolicy
from repro.errors import TuningError


@pytest.fixture(scope="module")
def truth():
    return CostModel(CPU_SANDY_BRIDGE)


@pytest.fixture(scope="module")
def mistuned_model():
    # A spec whose measured bandwidth is 1/10000th of reality: every
    # bandwidth-bound term explodes, so bottom-up never wins.
    broken = replace(
        CPU_SANDY_BRIDGE, name="cpu-snb-broken", measured_bw_gbs=0.001
    )
    return CostModel(broken)


class TestDriftIntegration:
    def test_mistuned_policy_alerts_within_five_runs(
        self, small_profile, truth, mistuned_model
    ):
        monitor = DriftMonitor(window=8, tolerance=1.25, min_runs=3)
        policy = CostModelPolicy(
            mistuned_model, drift_monitor=monitor, family="rmat"
        )
        alert = None
        for run in range(1, 6):
            report, alert = policy.audit_traversal(small_profile, truth=truth)
            assert isinstance(report, PolicyAuditReport)
            assert report.slowdown > 1.25  # every run is badly priced
            if alert is not None:
                break
        assert alert is not None, "no DriftAlert within 5 audited runs"
        assert run <= 5
        assert alert.family == "rmat"
        assert alert.arch == CPU_SANDY_BRIDGE.name
        assert alert.mean_slowdown > 1.25

    def test_well_tuned_policy_never_alerts(self, small_profile, truth):
        monitor = DriftMonitor(window=8, tolerance=1.25, min_runs=3)
        policy = CostModelPolicy(truth, drift_monitor=monitor)
        for _ in range(6):
            report, alert = policy.audit_traversal(small_profile)
            assert alert is None
        # Deciding on the same model the audit prices with: the greedy
        # per-level choice IS the oracle's rule, so slowdown == 1.0.
        assert report.slowdown == pytest.approx(1.0)
        assert monitor.alerts == ()

    def test_audit_emits_policy_audit_instant(self, small_profile, truth):
        tracer = Tracer()
        policy = CostModelPolicy(truth)
        with use_tracer(tracer):
            report, alert = policy.audit_traversal(small_profile)
        assert alert is None  # no monitor attached
        events = [e for e in tracer.events() if e.name == "tuning.policy_audit"]
        assert len(events) == 1
        assert events[0].attrs["slowdown"] == pytest.approx(report.slowdown)

    def test_monitor_protocol_enforced(self, truth):
        with pytest.raises(TuningError, match="observe"):
            CostModelPolicy(truth, drift_monitor=object())
