"""Unit tests for switching-point search."""

import numpy as np
import pytest

from repro.arch.costmodel import CostModel
from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.errors import TuningError
from repro.hetero.planner import cross_plan, mn_directions
from repro.tuning.search import (
    best_m_scan,
    candidate_cross_grid,
    candidate_mn_grid,
    evaluate_cross,
    evaluate_single,
    summarize_search,
)


@pytest.fixture(scope="module")
def cpu():
    return CostModel(CPU_SANDY_BRIDGE)


@pytest.fixture(scope="module")
def machine():
    return SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})


class TestGrids:
    def test_mn_grid_shape_and_range(self):
        g = candidate_mn_grid(500, lo=1, hi=1000, seed=0)
        assert g.shape == (500, 2)
        assert g.min() >= 1 and g.max() <= 1000

    def test_log_uniform_median(self):
        g = candidate_mn_grid(4000, lo=1, hi=1000, seed=1)
        # Median of log-uniform on [1, 1000] is ~sqrt(1000) ~ 31.6.
        assert 20 < np.median(g[:, 0]) < 50

    def test_cross_grid(self):
        g = candidate_cross_grid(100, seed=0)
        assert g.shape == (100, 4)

    def test_validation(self):
        with pytest.raises(TuningError):
            candidate_mn_grid(0)
        with pytest.raises(TuningError):
            candidate_mn_grid(10, lo=10, hi=1)
        with pytest.raises(TuningError):
            candidate_cross_grid(0)


class TestEvaluateSingle:
    def test_matches_plan_pricing(self, cpu, small_profile):
        """The vectorized evaluation must equal per-plan pricing."""
        cands = candidate_mn_grid(50, seed=3)
        fast = evaluate_single(small_profile, cpu, cands)
        for k in range(0, 50, 7):
            dirs = mn_directions(small_profile, cands[k, 0], cands[k, 1])
            slow = cpu.traversal_seconds(small_profile, dirs)
            assert fast[k] == pytest.approx(slow)

    def test_shape_checked(self, cpu, small_profile):
        with pytest.raises(TuningError):
            evaluate_single(small_profile, cpu, np.ones((5, 3)))

    def test_single_candidate(self, cpu, small_profile):
        out = evaluate_single(small_profile, cpu, np.array([[10.0, 10.0]]))
        assert out.shape == (1,)


class TestEvaluateCross:
    def test_matches_machine_run(self, machine, small_profile):
        cands = candidate_cross_grid(20, seed=4)
        fast = evaluate_cross(small_profile, machine, cands)
        for k in (0, 7, 19):
            plan = cross_plan(small_profile, *cands[k])
            slow = machine.run(small_profile, plan).total_seconds
            assert fast[k] == pytest.approx(slow)

    def test_shape_checked(self, machine, small_profile):
        with pytest.raises(TuningError):
            evaluate_cross(small_profile, machine, np.ones((5, 2)))


class TestSummarize:
    def test_ordering(self, cpu, small_profile):
        cands = candidate_mn_grid(200, seed=5)
        secs = evaluate_single(small_profile, cpu, cands)
        out = summarize_search(cands, secs, seed=6)
        assert out.best_seconds <= out.random_seconds <= out.worst_seconds
        assert out.best_seconds <= out.average_seconds <= out.worst_seconds
        assert out.exhaustive_speedup_over_worst >= 1.0
        assert out.exhaustive_speedup_over_random >= 1.0
        assert out.exhaustive_speedup_over_average >= 1.0

    def test_best_candidate_reported(self, cpu, small_profile):
        cands = candidate_mn_grid(100, seed=7)
        secs = evaluate_single(small_profile, cpu, cands)
        out = summarize_search(cands, secs)
        k = int(np.argmin(secs))
        assert np.array_equal(out.best_candidate, cands[k])

    def test_speedup_over_worst(self, cpu, small_profile):
        cands = candidate_mn_grid(100, seed=8)
        secs = evaluate_single(small_profile, cpu, cands)
        out = summarize_search(cands, secs)
        assert out.speedup_over_worst(out.best_seconds) == pytest.approx(
            out.exhaustive_speedup_over_worst
        )
        with pytest.raises(TuningError):
            out.speedup_over_worst(0)

    def test_validation(self):
        with pytest.raises(TuningError):
            summarize_search(np.ones((2, 2)), np.ones(3))
        with pytest.raises(TuningError):
            summarize_search(np.ones((0, 2)), np.ones(0))


class TestBestMScan:
    def test_plateau_midpoint(self, cpu, medium_profile):
        from repro.arch.calibration import scale_profile

        big = scale_profile(medium_profile, 2**9)
        best_m, secs = best_m_scan(big, cpu)
        assert 1.0 <= best_m <= 4096.0
        assert secs.shape == (49,)
        # The midpoint must itself achieve the minimum.
        achieved = evaluate_single(
            big, cpu, np.array([[best_m, 1e-9]])
        )[0]
        assert achieved == pytest.approx(float(secs.min()))

    def test_custom_grid(self, cpu, small_profile):
        best_m, secs = best_m_scan(
            small_profile, cpu, m_values=np.array([1.0, 10.0, 100.0])
        )
        assert secs.shape == (3,)
