"""Unit tests for direction policies."""

import numpy as np
import pytest

from repro.bfs.hybrid import LevelState, bfs_hybrid
from repro.bfs.reference import bfs_reference
from repro.bfs.result import Direction
from repro.errors import TuningError
from repro.tuning.policy import (
    AlwaysBottomUp,
    AlwaysTopDown,
    FixedPlanPolicy,
    HeuristicBeamerPolicy,
)


def state(fv=10, fe=100, depth=0, n=1000, e=10000, uv=900):
    return LevelState(
        depth=depth,
        frontier_vertices=fv,
        frontier_edges=fe,
        num_vertices=n,
        num_edges=e,
        unvisited_vertices=uv,
    )


class TestConstants:
    def test_always_policies(self):
        assert AlwaysTopDown().direction(state()) == Direction.TOP_DOWN
        assert AlwaysBottomUp().direction(state()) == Direction.BOTTOM_UP

    def test_always_td_in_hybrid(self, rmat_small, rmat_source):
        res = bfs_hybrid(rmat_small, rmat_source, policy=AlwaysTopDown())
        assert set(res.directions) == {Direction.TOP_DOWN}

    def test_always_bu_in_hybrid(self, rmat_small, rmat_source):
        ref = bfs_reference(rmat_small, rmat_source)
        res = bfs_hybrid(rmat_small, rmat_source, policy=AlwaysBottomUp())
        assert set(res.directions) == {Direction.BOTTOM_UP}
        assert np.array_equal(res.level, ref.level)


class TestFixedPlan:
    def test_replay(self, rmat_small, rmat_source):
        first = bfs_hybrid(rmat_small, rmat_source, m=20, n=100)
        replay = bfs_hybrid(
            rmat_small,
            rmat_source,
            policy=FixedPlanPolicy(first.directions),
        )
        assert replay.directions == first.directions

    def test_short_plan_raises(self, rmat_small, rmat_source):
        with pytest.raises(TuningError):
            bfs_hybrid(
                rmat_small, rmat_source, policy=FixedPlanPolicy(["td"])
            )

    def test_bad_direction_rejected(self):
        with pytest.raises(TuningError):
            FixedPlanPolicy(["td", "down"])


class TestBeamer:
    def test_validation(self):
        with pytest.raises(TuningError):
            HeuristicBeamerPolicy(alpha=0)
        with pytest.raises(TuningError):
            HeuristicBeamerPolicy(beta=-1)

    def test_hysteresis(self):
        p = HeuristicBeamerPolicy(alpha=10, beta=10)
        # Small frontier: stays top-down.
        assert p.direction(state(fe=10, e=10000)) == Direction.TOP_DOWN
        # Big frontier (fe > E/alpha): switch to bottom-up.
        assert p.direction(state(fe=5000, e=10000)) == Direction.BOTTOM_UP
        # Still big-ish vertices: stays bottom-up even if fe drops
        # (that is the hysteresis).
        assert p.direction(state(fe=10, fv=500, n=1000)) == Direction.BOTTOM_UP
        # Frontier shrinks below V/beta: back to top-down.
        assert p.direction(state(fe=10, fv=50, n=1000)) == Direction.TOP_DOWN

    def test_reset(self):
        p = HeuristicBeamerPolicy(alpha=10, beta=10)
        p.direction(state(fe=5000, e=10000))
        p.reset()
        assert p.direction(state(fe=10, e=10000)) == Direction.TOP_DOWN

    def test_in_live_hybrid(self, rmat_medium):
        from repro.bfs.profiler import pick_sources

        src = int(pick_sources(rmat_medium, 1, seed=4)[0])
        ref = bfs_reference(rmat_medium, src)
        res = bfs_hybrid(
            rmat_medium, src, policy=HeuristicBeamerPolicy()
        )
        assert np.array_equal(res.level, ref.level)
        assert Direction.BOTTOM_UP in res.directions
