"""Unit tests for the model-predictive online policy."""

import numpy as np
import pytest

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bfs.hybrid import LevelState, bfs_hybrid
from repro.bfs.reference import bfs_reference
from repro.bfs.result import Direction
from repro.errors import TuningError
from repro.tuning.online import CostModelPolicy, estimate_bu_checked


def state(fv, fe, uv, n=1 << 23, e=1 << 27, depth=0):
    return LevelState(
        depth=depth,
        frontier_vertices=fv,
        frontier_edges=fe,
        num_vertices=n,
        num_edges=e,
        unvisited_vertices=uv,
    )


class TestEstimator:
    def test_tiny_frontier_scans_everything(self):
        """p_hit ~ 0 -> every unvisited vertex scans its whole list."""
        s = state(fv=1, fe=16, uv=(1 << 23) - 1)
        checked, failed = estimate_bu_checked(s)
        avg_deg = 2 * s.num_edges / s.num_vertices
        assert checked == pytest.approx(s.unvisited_vertices * avg_deg, rel=0.1)
        assert failed > 0.5 * checked

    def test_huge_frontier_one_probe_each(self):
        """p_hit ~ 1 -> about one check per unvisited vertex."""
        s = state(fv=1 << 22, fe=2 * (1 << 27), uv=1 << 20)
        checked, failed = estimate_bu_checked(s)
        assert checked <= 2 * s.unvisited_vertices
        assert failed < 0.2 * checked

    def test_zero_unvisited(self):
        s = state(fv=10, fe=100, uv=0)
        assert estimate_bu_checked(s) == (0, 0)

    def test_monotone_in_frontier(self):
        """A bigger frontier can only reduce expected checks."""
        small = estimate_bu_checked(state(fv=10, fe=1 << 10, uv=1 << 20))[0]
        big = estimate_bu_checked(state(fv=10, fe=1 << 24, uv=1 << 20))[0]
        assert big <= small

    def test_matches_measured_order(self, medium_profile):
        """Within an order of magnitude of the measured counters on the
        middle levels (where the estimate matters)."""
        for rec in medium_profile:
            if rec.frontier_edges < 100 or rec.bu_edges_checked < 1000:
                continue
            s = state(
                fv=rec.frontier_vertices,
                fe=rec.frontier_edges,
                uv=rec.unvisited_vertices,
                n=medium_profile.num_vertices,
                e=medium_profile.num_edges,
            )
            est, _ = estimate_bu_checked(s)
            assert 0.05 < est / rec.bu_edges_checked < 20.0


class TestCostModelPolicy:
    def test_needs_cost_model(self):
        with pytest.raises(TuningError):
            CostModelPolicy("not a model")

    def test_correct_traversal(self, rmat_medium):
        from repro.bfs.profiler import pick_sources

        src = int(pick_sources(rmat_medium, 1, seed=1)[0])
        policy = CostModelPolicy(CostModel(CPU_SANDY_BRIDGE))
        ref = bfs_reference(rmat_medium, src)
        res = bfs_hybrid(rmat_medium, src, policy=policy)
        assert np.array_equal(res.level, ref.level)
        res.validate(rmat_medium)

    def test_paper_scale_states_pick_sensibly(self):
        """At paper-scale counters the policy reproduces the Fig. 3
        structure: TD for the tiny start, BU at the explosion."""
        policy = CostModelPolicy(CostModel(CPU_SANDY_BRIDGE))
        early = state(fv=1, fe=20, uv=(1 << 23) - 1)
        assert policy.direction(early) == Direction.TOP_DOWN
        peak = state(fv=1 << 21, fe=90_000_000, uv=1 << 22)
        assert policy.direction(peak) == Direction.BOTTOM_UP

    def test_gpu_policy_avoids_level1_bottom_up(self):
        """GPU's catastrophic level-1 BU must be predicted and avoided."""
        policy = CostModelPolicy(CostModel(GPU_K20X))
        early = state(fv=1, fe=20, uv=(1 << 23) - 1)
        assert policy.direction(early) == Direction.TOP_DOWN
