"""Unit tests for the root-aware predictor extension."""

import numpy as np
import pytest

from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.errors import NotFittedError, TuningError
from repro.graph.generators import rmat, star
from repro.bfs.profiler import pick_sources
from repro.tuning.rootaware import (
    ROOT_FEATURE_NAMES,
    RootAwareCorpus,
    RootAwarePredictor,
    build_root_training_set,
    make_root_sample,
    root_features,
)
from repro.tuning.training import profile_graph


class TestRootFeatures:
    def test_layout(self):
        assert len(ROOT_FEATURE_NAMES) == 14

    def test_values(self):
        g = star(11)
        hub = root_features(g, 0)
        leaf = root_features(g, 3)
        assert hub[0] > leaf[0]  # log-degree
        assert hub[1] > 1.0 > leaf[1]  # relative degree

    def test_sample_concatenation(self, rmat_small, rmat_source):
        s = make_root_sample(
            rmat_small, rmat_source, CPU_SANDY_BRIDGE, GPU_K20X
        )
        assert s.shape == (14,)
        assert s[12] == pytest.approx(
            np.log2(1 + rmat_small.degree(rmat_source))
        )


class TestCorpus:
    def test_add_and_arrays(self, rmat_small, rmat_source):
        c = RootAwareCorpus()
        s = make_root_sample(
            rmat_small, rmat_source, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE
        )
        c.add(s, 16.0, 32.0)
        X, lm, ln = c.as_arrays()
        assert X.shape == (1, 14)
        assert lm[0] == 4.0 and ln[0] == 5.0

    def test_validation(self):
        c = RootAwareCorpus()
        with pytest.raises(TuningError):
            c.add(np.zeros(12), 1, 1)
        with pytest.raises(TuningError):
            c.add(np.zeros(14), 0, 1)
        with pytest.raises(TuningError):
            c.as_arrays()


@pytest.fixture(scope="module")
def small_corpus():
    rows = []
    for seed in (0, 1):
        g = rmat(11, 16, seed=50 + seed)
        for root in pick_sources(g, 3, seed=seed):
            pg = profile_graph(g, source=int(root), tag=f"{seed}")
            rows.append((pg, int(root), root_features(g, int(root))))
    pairs = [(CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)]
    return build_root_training_set(rows, pairs, seed=0), rows


class TestBuildAndPredict:
    def test_corpus_size(self, small_corpus):
        corpus, rows = small_corpus
        assert len(corpus) == len(rows)

    def test_fit_predict_in_range(self, small_corpus, rmat_small, rmat_source):
        corpus, _ = small_corpus
        pred = RootAwarePredictor().fit(corpus)
        m, n = pred.predict_mn(
            rmat_small, rmat_source, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE
        )
        assert 1.0 <= m <= 1000.0 and 1.0 <= n <= 1000.0

    def test_unfitted(self, rmat_small, rmat_source):
        with pytest.raises(NotFittedError):
            RootAwarePredictor().predict_mn(
                rmat_small, rmat_source, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE
            )

    def test_clip_validated(self):
        with pytest.raises(TuningError):
            RootAwarePredictor(clip=(5, 2))

    def test_save_load(self, small_corpus, tmp_path, rmat_small, rmat_source):
        corpus, _ = small_corpus
        pred = RootAwarePredictor().fit(corpus)
        pred.save(tmp_path / "ra")
        back = RootAwarePredictor.load(tmp_path / "ra")
        a = pred.predict_mn(
            rmat_small, rmat_source, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE
        )
        b = back.predict_mn(
            rmat_small, rmat_source, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE
        )
        assert a == b

    def test_save_unfitted(self, tmp_path):
        with pytest.raises(NotFittedError):
            RootAwarePredictor().save(tmp_path / "x")

    def test_build_validation(self):
        with pytest.raises(TuningError):
            build_root_training_set([], [(CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)])

    def test_roots_change_prediction(self, small_corpus):
        """The whole point: different roots of the same graph may get
        different switching points."""
        corpus, rows = small_corpus
        pred = RootAwarePredictor().fit(corpus)
        g = rows[0][0].graph
        hub = int(np.argmax(g.degrees))
        leaves = np.nonzero(g.degrees == 1)[0]
        if leaves.size == 0:
            pytest.skip("no degree-1 vertex")
        leaf = int(leaves[0])
        mh, nh = pred.predict_mn(g, hub, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)
        ml, nl = pred.predict_mn(g, leaf, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)
        assert (mh, nh) != (ml, nl)
