"""Unit tests for the training-corpus builder and the runtime predictor."""

import numpy as np
import pytest

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.errors import NotFittedError, TuningError
from repro.graph.generators import rmat
from repro.tuning.predictor import SwitchingPointPredictor
from repro.tuning.search import candidate_mn_grid, evaluate_single
from repro.tuning.training import (
    best_mn_single,
    build_training_set,
    profile_graph,
)


@pytest.fixture(scope="module")
def profiled_pair():
    graphs = [rmat(11, 8, seed=1), rmat(11, 16, seed=2), rmat(12, 16, seed=3)]
    return [
        profile_graph(g, seed=i, tag=f"g{i}") for i, g in enumerate(graphs)
    ]


class TestProfileGraph:
    def test_fields(self, profiled_pair):
        pg = profiled_pair[0]
        assert pg.features.shape == (6,)
        assert len(pg.profile) > 2
        assert pg.tag == "g0"

    def test_explicit_source(self, rmat_small, rmat_source):
        pg = profile_graph(rmat_small, source=rmat_source)
        assert pg.profile.source == rmat_source

    def test_scaled(self, profiled_pair):
        pg = profiled_pair[0]
        big = pg.scaled(8)
        assert big.profile.num_vertices == pg.profile.num_vertices * 8
        assert big.features[0] == pytest.approx(pg.features[0] * 8)
        assert big.features[2] == pg.features[2]  # A unchanged


class TestBestMN:
    def test_best_is_minimum(self, profiled_pair):
        pg = profiled_pair[0]
        model = CostModel(CPU_SANDY_BRIDGE)
        m, n, secs = best_mn_single(pg.profile, model, seed=0)
        cands = candidate_mn_grid(1000, seed=0)
        all_secs = evaluate_single(pg.profile, model, cands)
        assert secs == pytest.approx(float(all_secs.min()))


class TestBuildTrainingSet:
    def test_rows_per_pair(self, profiled_pair):
        pairs = [
            (CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE),
            (CPU_SANDY_BRIDGE, GPU_K20X),
        ]
        ts = build_training_set(profiled_pair, pairs, seed=0)
        assert len(ts) == len(profiled_pair) * len(pairs)
        X, lm, ln = ts.as_arrays()
        assert X.shape == (len(ts), 12)
        assert np.isfinite(lm).all() and np.isfinite(ln).all()

    def test_empty_inputs_rejected(self, profiled_pair):
        with pytest.raises(TuningError):
            build_training_set([], [(CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)])
        with pytest.raises(TuningError):
            build_training_set(profiled_pair, [])

    def test_cross_pair_prices_differently(self, profiled_pair):
        """Cross-architecture rows search a different cost surface than
        single-device rows of the same graph (the argmin may coincide
        at coarse candidate grids, but the surfaces must differ)."""
        from repro.tuning.training import _evaluate_pair

        pg = profiled_pair[0]
        cands = candidate_mn_grid(200, seed=0)
        gpu_only = evaluate_single(
            pg.profile, CostModel(GPU_K20X), cands
        )
        cross = _evaluate_pair(
            pg.profile, CPU_SANDY_BRIDGE, GPU_K20X, cands
        )
        assert not np.allclose(gpu_only, cross)

    def test_cross_pair_samples_encode_both_archs(self, profiled_pair):
        cross = build_training_set(
            profiled_pair, [(CPU_SANDY_BRIDGE, GPU_K20X)], seed=0
        )
        X, _, _ = cross.as_arrays()
        assert X[0, 6] == 256.0  # CPU peak in the TD block
        assert X[0, 9] == 3950.0  # GPU peak in the BU block


class TestPredictor:
    @pytest.fixture(scope="class")
    def fitted(self, profiled_pair):
        pairs = [
            (CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE),
            (GPU_K20X, GPU_K20X),
            (MIC_KNC, MIC_KNC),
            (CPU_SANDY_BRIDGE, GPU_K20X),
        ]
        ts = build_training_set(profiled_pair, pairs, seed=0)
        return SwitchingPointPredictor().fit(ts), ts

    def test_predicts_in_clip_range(self, fitted, rmat_small):
        pred, _ = fitted
        m, n = pred.predict_mn(rmat_small, CPU_SANDY_BRIDGE, GPU_K20X)
        assert 1.0 <= m <= 1000.0
        assert 1.0 <= n <= 1000.0

    def test_training_rows_recovered(self, fitted):
        """On its own training rows the model must be close in log space
        (epsilon-insensitive fit, so not exact)."""
        pred, ts = fitted
        X, lm, _ = ts.as_arrays()
        got_m = np.array(
            [np.log2(pred.predict_sample(x)[0]) for x in X]
        )
        assert np.abs(got_m - lm).mean() < 2.0

    def test_unfitted_raises(self, rmat_small):
        with pytest.raises(NotFittedError):
            SwitchingPointPredictor().predict_mn(
                rmat_small, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE
            )

    def test_clip_validated(self):
        with pytest.raises(TuningError):
            SwitchingPointPredictor(clip=(10, 1))

    def test_save_load(self, fitted, tmp_path, rmat_small):
        pred, _ = fitted
        pred.save(tmp_path / "model")
        back = SwitchingPointPredictor.load(tmp_path / "model")
        a = pred.predict_mn(rmat_small, CPU_SANDY_BRIDGE, GPU_K20X)
        b = back.predict_mn(rmat_small, CPU_SANDY_BRIDGE, GPU_K20X)
        assert a == b

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            SwitchingPointPredictor().save(tmp_path / "model")
