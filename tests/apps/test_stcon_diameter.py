"""Unit tests for st-connectivity and pseudo-diameter."""

import numpy as np
import pytest

from repro.apps.diameter import pseudo_diameter
from repro.apps.stcon import st_connectivity
from repro.bfs.reference import bfs_reference
from repro.bfs.profiler import pick_sources
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    grid2d,
    path,
    ring,
    rmat,
    star,
    two_cliques_bridge,
)


class TestSTConnectivity:
    def test_same_vertex(self, rmat_small):
        r = st_connectivity(rmat_small, 5, 5)
        assert r.connected and r.distance == 0 and r.edges_examined == 0
        assert bool(r)

    def test_adjacent(self):
        g = path(5)
        r = st_connectivity(g, 2, 3)
        assert r.connected and r.distance == 1

    def test_path_endpoints(self):
        g = path(10)
        r = st_connectivity(g, 0, 9)
        assert r.connected and r.distance == 9

    def test_disconnected(self):
        g = CSRGraph.from_edges([0, 2], [1, 3], 4)
        r = st_connectivity(g, 0, 3)
        assert not r.connected
        assert r.distance == -1 and r.meet_vertex == -1
        assert not bool(r)

    def test_bridge_distance(self):
        g = two_cliques_bridge(5)
        # Vertex 0 (clique A) to vertex 9 (clique B): 0 -> 4 -> 5 -> 9.
        r = st_connectivity(g, 0, 9)
        assert r.distance == 3

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_distance_matches_bfs(self, seed, rmat_small):
        rng = np.random.default_rng(seed)
        src = pick_sources(rmat_small, 2, seed=seed)
        s, t = int(src[0]), int(src[1])
        ref = bfs_reference(rmat_small, s)
        r = st_connectivity(rmat_small, s, t)
        if ref.level[t] >= 0:
            assert r.connected
            assert r.distance == int(ref.level[t])
        else:
            assert not r.connected

    def test_examines_fewer_edges_than_full_bfs(self, rmat_medium):
        src = pick_sources(rmat_medium, 2, seed=9)
        s, t = int(src[0]), int(src[1])
        ref = bfs_reference(rmat_medium, s)
        r = st_connectivity(rmat_medium, s, t)
        if r.connected and r.distance >= 2:
            assert r.edges_examined < sum(ref.edges_examined)

    def test_meet_vertex_valid(self):
        g = grid2d(5, 5)
        r = st_connectivity(g, 0, 24)
        assert r.connected
        assert 0 <= r.meet_vertex < 25

    def test_validation(self, rmat_small):
        with pytest.raises(BFSError):
            st_connectivity(rmat_small, -1, 0)
        with pytest.raises(BFSError):
            st_connectivity(rmat_small, 0, 10**6)
        directed = CSRGraph.from_edges([0], [1], 2, symmetrize=False)
        with pytest.raises(BFSError):
            st_connectivity(directed, 0, 1)


class TestPseudoDiameter:
    def test_path_exact(self):
        est = pseudo_diameter(path(40), 20)
        assert est.lower_bound == 39
        assert {est.endpoint_a, est.endpoint_b} <= set(range(40))

    def test_ring(self):
        est = pseudo_diameter(ring(20), 0)
        assert est.lower_bound == 10

    def test_star(self):
        est = pseudo_diameter(star(50), 3)
        assert est.lower_bound == 2

    def test_grid(self):
        est = pseudo_diameter(grid2d(6, 9), 0)
        assert est.lower_bound == 5 + 8  # manhattan corner-to-corner

    def test_rmat_small_diameter(self, rmat_medium):
        src = int(pick_sources(rmat_medium, 1, seed=0)[0])
        est = pseudo_diameter(rmat_medium, src)
        # The paper's premise: R-MAT diameters are tiny.
        assert 2 <= est.lower_bound <= 12

    def test_is_lower_bound(self):
        """Never exceeds the true diameter (networkx check)."""
        import networkx as nx

        g = rmat(9, 4, seed=5)
        src = int(pick_sources(g, 1, seed=0)[0])
        est = pseudo_diameter(g, src)
        nxg = nx.Graph()
        s, d = g.edge_list()
        nxg.add_edges_from(zip(s.tolist(), d.tolist()))
        comp = nx.node_connected_component(nxg, src)
        true = nx.diameter(nxg.subgraph(comp))
        assert est.lower_bound <= true

    def test_int_conversion(self):
        assert int(pseudo_diameter(path(5), 0)) == 4

    def test_validation(self, rmat_small):
        with pytest.raises(BFSError):
            pseudo_diameter(rmat_small, -1)
        with pytest.raises(BFSError):
            pseudo_diameter(rmat_small, 0, sweeps=0)
