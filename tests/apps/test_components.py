"""Unit tests for BFS-based connected components."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.components import connected_components
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.graph.generators import path, ring, rmat, star, two_cliques_bridge


class TestKnownGraphs:
    def test_single_component(self):
        cc = connected_components(ring(12))
        assert cc.num_components == 1
        assert cc.sizes.tolist() == [12]
        assert cc.giant_fraction() == 1.0

    def test_two_cliques_joined(self):
        cc = connected_components(two_cliques_bridge(4))
        assert cc.num_components == 1

    def test_disjoint_edges(self):
        g = CSRGraph.from_edges([0, 2], [1, 3], 6)
        cc = connected_components(g)
        # {0,1}, {2,3}, {4}, {5}
        assert cc.num_components == 4
        assert sorted(cc.sizes.tolist()) == [1, 1, 2, 2]
        assert cc.labels[0] == cc.labels[1]
        assert cc.labels[0] != cc.labels[2]

    def test_isolated_vertices_each_own(self):
        cc = connected_components(CSRGraph.empty(5))
        assert cc.num_components == 5

    def test_empty_graph(self):
        cc = connected_components(CSRGraph.empty(0))
        assert cc.num_components == 0
        with pytest.raises(BFSError):
            cc.giant()

    def test_star_and_path(self):
        for g in (star(20), path(20)):
            assert connected_components(g).num_components == 1


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        g = rmat(10, 4, seed=seed)
        cc = connected_components(g)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        src, dst = g.edge_list()
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        want = list(nx.connected_components(nxg))
        assert cc.num_components == len(want)
        assert sorted(cc.sizes.tolist()) == sorted(len(c) for c in want)
        # Same partition: vertices share labels iff they share components.
        for comp in want:
            labels = {int(cc.labels[v]) for v in comp}
            assert len(labels) == 1

    def test_labels_dense(self):
        g = rmat(10, 4, seed=3)
        cc = connected_components(g)
        assert set(np.unique(cc.labels)) == set(range(cc.num_components))


class TestValidation:
    def test_directed_rejected(self):
        g = CSRGraph.from_edges([0], [1], 2, symmetrize=False)
        with pytest.raises(BFSError):
            connected_components(g)
