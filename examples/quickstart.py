#!/usr/bin/env python
"""Quickstart: generate a Graph 500 R-MAT graph, traverse it with every
engine, and see direction optimization win.

Run:  python examples/quickstart.py [scale] [edgefactor]
"""

import sys

from repro.bench import gteps
from repro.bfs import (
    bfs_bottom_up,
    bfs_hybrid,
    bfs_top_down,
    pick_sources,
)
from repro.graph import compute_stats, rmat
from repro.obs import now


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    edgefactor = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(f"Generating R-MAT: SCALE={scale}, edgefactor={edgefactor} ...")
    graph = rmat(scale, edgefactor, seed=1)
    stats = compute_stats(graph)
    print(
        f"  |V|={stats.num_vertices:,}  |E|={stats.num_edges:,}  "
        f"max degree={stats.max_degree:,}  "
        f"degree Gini={stats.degree_gini:.2f} (heavy-tailed)"
    )

    # A Graph 500-style random root (not an isolated vertex).
    source = int(pick_sources(graph, 1, seed=7)[0])
    print(f"  BFS source: vertex {source} (degree {graph.degree(source)})\n")

    engines = {
        "top-down  (Algorithm 1)": lambda: bfs_top_down(graph, source),
        "bottom-up (Algorithm 2)": lambda: bfs_bottom_up(graph, source),
        "hybrid    (M=20, N=100)": lambda: bfs_hybrid(
            graph, source, m=20, n=100
        ),
    }
    results = {}
    for name, run in engines.items():
        run()  # warm the caches
        t0 = now()
        result = run()
        took = now() - t0
        result.validate(graph)  # Graph 500 checks: tree, levels, edges
        results[name] = (result, took)
        print(
            f"{name}:  {took * 1e3:7.1f} ms   "
            f"{gteps(result.traversed_edges(graph), took):6.4f} GTEPS   "
            f"edges examined: {sum(result.edges_examined):,}"
        )

    hybrid, _ = results["hybrid    (M=20, N=100)"]
    print(
        f"\nHybrid direction per level: {hybrid.directions}"
        f"\nFrontier sizes per level:   {hybrid.frontier_sizes().tolist()}"
    )
    print(
        "\nThe hybrid switches to bottom-up exactly where the frontier "
        "explodes, examining a fraction of the edges top-down touches — "
        "the effect the paper's combination exploits."
    )


if __name__ == "__main__":
    main()
