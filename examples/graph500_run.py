#!/usr/bin/env python
"""A Graph 500-style benchmark run on this machine (wall clock).

Follows the benchmark's structure (the paper's Table I terms):

* kernel 1 — construct the CSR graph from the Kronecker edge list;
* kernel 2 — BFS from 16 random roots (the official run uses 64),
  each validated with the specification's five checks;
* report min/harmonic-mean/max TEPS.

Run:  python examples/graph500_run.py [scale] [edgefactor] [roots]
"""

import sys

import numpy as np

from repro.bench import gteps, harmonic_mean
from repro.bfs import bfs_hybrid, pick_sources
from repro.graph import CSRGraph, rmat_edges
from repro.obs import now


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    edgefactor = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    nroots = int(sys.argv[3]) if len(sys.argv) > 3 else 16

    print(f"Graph500-style run: SCALE={scale} edgefactor={edgefactor}")

    # Kernel 1: construction (timed, as in the benchmark).
    t0 = now()
    src, dst = rmat_edges(scale, edgefactor, seed=2)
    gen_time = now() - t0
    t0 = now()
    graph = CSRGraph.from_edges(src, dst, 1 << scale, symmetrize=True)
    k1_time = now() - t0
    print(
        f"  edge generation: {gen_time:.2f}s   kernel 1 (construction): "
        f"{k1_time:.2f}s   ({graph.num_edges:,} undirected edges)"
    )

    # Kernel 2: BFS from random roots, each validated.
    roots = pick_sources(graph, nroots, seed=5)
    teps_values = []
    for i, root in enumerate(roots):
        t0 = now()
        result = bfs_hybrid(graph, int(root), m=20, n=100)
        took = now() - t0
        result.validate(graph)
        rate = result.traversed_edges(graph) / took
        teps_values.append(rate)
        if i < 4:
            print(
                f"  root {int(root):>8}: {took * 1e3:7.1f} ms  "
                f"{rate / 1e9:.4f} GTEPS  "
                f"({result.num_reached:,} reached, validated)"
            )
    teps_arr = np.array(teps_values)
    print(
        f"\n  BFS over {nroots} roots — "
        f"min {teps_arr.min() / 1e9:.4f} / "
        f"harmonic-mean {harmonic_mean(teps_arr) / 1e9:.4f} / "
        f"max {teps_arr.max() / 1e9:.4f} GTEPS"
    )
    print(
        "  (Graph 500 reports the harmonic mean; the paper's Section V-D "
        "comparisons use exactly this workload.)"
    )


if __name__ == "__main__":
    main()
