#!/usr/bin/env python
"""Social-network analysis — the paper's motivating workload [1].

BFS is the primitive behind degrees-of-separation, influence radius and
shortest-path queries on social graphs.  This example builds a
synthetic social network (R-MAT's skewed degrees mimic follower
distributions), then uses the library's BFS to answer the classic
questions:

* How many hops separate two random members?  (distance distribution)
* How far does a post propagate per hop from an influencer vs a
  typical user?  (frontier growth)
* What fraction of the network is unreachable?  (isolated accounts)

Run:  python examples/social_network_analysis.py [scale]
"""

import sys

import numpy as np

from repro.bfs import bfs_hybrid, pick_sources, profile_bfs
from repro.graph import compute_stats, rmat


def distance_distribution(graph, sources) -> np.ndarray:
    """Histogram of BFS distances pooled over several sources."""
    counts = np.zeros(64, dtype=np.int64)
    for src in sources:
        result = bfs_hybrid(graph, int(src), m=20, n=100)
        levels = result.level[result.level > 0]
        counts += np.bincount(levels, minlength=64)[:64]
    return counts[: int(np.nonzero(counts)[0].max()) + 1]


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    print(f"Building a synthetic social network (SCALE={scale}) ...")
    network = rmat(scale, 16, seed=42)
    stats = compute_stats(network)
    print(
        f"  members: {stats.num_vertices:,}   "
        f"friendships: {stats.num_edges:,}   "
        f"most-connected member: {stats.max_degree:,} friends   "
        f"inactive accounts: {stats.isolated_vertices:,}\n"
    )

    # --- degrees of separation -----------------------------------------
    sources = pick_sources(network, 8, seed=3)
    hist = distance_distribution(network, sources)
    total = hist.sum()
    print("Degrees of separation (pooled over 8 random members):")
    cum = 0
    for hops, count in enumerate(hist, start=1):
        if count == 0:
            continue
        cum += count
        bar = "#" * int(50 * count / hist.max())
        print(
            f"  {hops} hop(s): {count / total:6.1%}  "
            f"(cumulative {cum / total:6.1%})  {bar}"
        )
    mean_sep = float((np.arange(1, hist.size + 1) * hist).sum() / total)
    print(f"  mean separation: {mean_sep:.2f} hops — the small-world effect\n")

    # --- influencer vs typical user propagation --------------------------
    influencer = int(np.argmax(network.degrees))
    typical = int(sources[0])
    for label, member in (("influencer", influencer), ("typical", typical)):
        profile, _ = profile_bfs(network, member)
        reach = np.cumsum([r.claimed for r in profile])
        frac = reach / network.num_vertices
        print(
            f"Post propagation from a {label} "
            f"({network.degree(member):,} friends): "
            + "  ".join(
                f"hop{h + 1}={f:.1%}" for h, f in enumerate(frac[:4])
            )
        )
    print(
        "\nAn influencer saturates the network one hop sooner — and that "
        "early frontier explosion is precisely when the library's hybrid "
        "switches to bottom-up."
    )

    # --- reachability ------------------------------------------------------
    result = bfs_hybrid(network, influencer, m=20, n=100)
    unreachable = network.num_vertices - result.num_reached
    print(
        f"\nReachable from the influencer: {result.num_reached:,} members; "
        f"unreachable: {unreachable:,} "
        f"({unreachable / network.num_vertices:.1%}, mostly inactive "
        "accounts and tiny islands)."
    )


if __name__ == "__main__":
    main()
