#!/usr/bin/env python
"""Electronic design automation — the paper's motivating workload [3].

Netlist analysis is BFS territory: signal reachability ("can a glitch
at this net affect that output?"), fan-out cones (everything driven by
a net), and logic-level depth.  This example models a synthetic
netlist as a graph and answers those queries with the library:

* st-connectivity for point-to-point reachability checks;
* batched multi-source BFS for all primary-input fan-out cones at once;
* pseudo-diameter for the logic depth of the design;
* connected components for isolated sub-circuits (dead logic).

Run:  python examples/circuit_reachability.py [scale]
"""

import sys

import numpy as np

from repro.apps import connected_components, pseudo_diameter, st_connectivity
from repro.bfs import msbfs, pick_sources
from repro.graph import rmat

# R-MAT with milder skew approximates netlist connectivity (most nets
# have small fan-out, clock/reset nets are hubs).
from repro.graph import RMATParams

NETLIST_PARAMS = RMATParams(0.45, 0.22, 0.22, 0.11)


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    print(f"Synthesizing a netlist graph (SCALE={scale}) ...")
    netlist = rmat(scale, 8, NETLIST_PARAMS, seed=77)
    print(f"  nets: {netlist.num_vertices:,}  connections: {netlist.num_edges:,}\n")

    # --- dead logic -------------------------------------------------------
    cc = connected_components(netlist)
    main_frac = cc.giant_fraction()
    print(
        f"Connectivity check: {cc.num_components:,} sub-circuits; the "
        f"main one covers {main_frac:.1%} of nets "
        f"({(1 - main_frac):.1%} is dead or floating logic)\n"
    )

    # --- point-to-point reachability -----------------------------------------
    rng = np.random.default_rng(5)
    probes = pick_sources(netlist, 8, seed=9)
    print("Reachability queries (bidirectional search):")
    for i in range(0, 8, 2):
        a, b = int(probes[i]), int(probes[i + 1])
        res = st_connectivity(netlist, a, b)
        verdict = (
            f"reachable in {res.distance} stage(s)"
            if res.connected
            else "isolated"
        )
        print(
            f"  net {a:>7} -> net {b:>7}: {verdict:<26} "
            f"({res.edges_examined:,} connections examined)"
        )
    print()

    # --- fan-out cones, batched -----------------------------------------------
    inputs = pick_sources(netlist, 32, seed=13)
    cones = msbfs(netlist, inputs)
    sizes = (cones.levels >= 0).sum(axis=1)
    order = np.argsort(sizes)[::-1]
    print("Fan-out cones of 32 primary inputs (one batched pass):")
    print(
        f"  largest cone: net {int(inputs[order[0]])} reaches "
        f"{int(sizes[order[0]]):,} nets"
    )
    print(
        f"  median cone:  {int(np.median(sizes)):,} nets;   smallest: "
        f"{int(sizes[order[-1]]):,}"
    )
    print(
        f"  mean signal depth across cones: {cones.mean_distance():.2f} "
        "stages\n"
    )

    # --- logic depth --------------------------------------------------------------
    hub = int(np.argmax(netlist.degrees))
    depth = pseudo_diameter(netlist, hub)
    print(
        f"Worst-case logic depth (pseudo-diameter): >= {depth.lower_bound} "
        f"stages, between nets {depth.endpoint_a} and {depth.endpoint_b} — "
        "the critical-path bound a timing pass would start from."
    )


if __name__ == "__main__":
    main()
