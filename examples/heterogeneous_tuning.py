#!/usr/bin/env python
"""The paper end to end: train the switching-point regression offline,
then run Algorithm 3 (CPU top-down + GPU combination) online.

Walks the exact pipeline of Figs. 6-7 and Algorithm 3:

1. *Offline* — profile a family of R-MAT graphs, exhaustively search
   the best (M, N) per (graph, architecture pair) on the calibrated
   cost models, and fit the SVR predictor on the Fig. 7 samples.
2. *Online* — for a new, unseen graph: predict (M1, N1) and (M2, N2),
   traverse for real with the plan Algorithm 3 builds, validate the
   output, and compare the simulated time against single-architecture
   combinations and the exhaustive oracle.

Run:  python examples/heterogeneous_tuning.py [scale]
"""

import sys

from repro.arch import (
    CPU_SANDY_BRIDGE,
    GPU_K20X,
    MIC_KNC,
    SimulatedMachine,
)
from repro.bfs import pick_sources, profile_bfs
from repro.graph import rmat
from repro.hetero import CrossArchitectureBFS, oracle_plan, run_single_device
from repro.obs import now
from repro.tuning import (
    SwitchingPointPredictor,
    build_training_set,
    profile_graph,
)


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 15

    # ------------------------------------------------------------------
    # Offline: build the training corpus (Fig. 6, right-hand path).
    # ------------------------------------------------------------------
    print("[offline] profiling training graphs ...")
    t0 = now()
    corpus_graphs = []
    for s in (scale - 2, scale - 1, scale):
        for ef in (8, 16, 32):
            g = rmat(s, ef, seed=100 * s + ef)
            corpus_graphs.append(profile_graph(g, seed=ef, tag=f"s{s}e{ef}"))
    pairs = [
        (CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE),
        (GPU_K20X, GPU_K20X),
        (MIC_KNC, MIC_KNC),
        (CPU_SANDY_BRIDGE, GPU_K20X),
    ]
    corpus = build_training_set(corpus_graphs, pairs, seed=0)
    print(
        f"[offline] exhaustive-searched {len(corpus)} (graph, arch-pair) "
        f"rows in {now() - t0:.1f}s "
        f"(the paper used 140 samples)"
    )

    predictor = SwitchingPointPredictor().fit(corpus)
    print("[offline] SVR predictor trained\n")

    # ------------------------------------------------------------------
    # Online: a new graph arrives (Algorithm 3).
    # ------------------------------------------------------------------
    print("[online] new graph:")
    graph = rmat(scale, 16, seed=999)  # unseen seed
    source = int(pick_sources(graph, 1, seed=1)[0])
    print(f"  {graph!r}, source {source}")

    machine = SimulatedMachine(
        {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X, "mic": MIC_KNC}
    )
    runner = CrossArchitectureBFS(machine, predictor)
    t0 = now()
    run = runner.run(graph, source)
    predict_and_run = now() - t0
    run.result.validate(graph)
    print(
        f"  predicted switching points: (M1, N1)=({run.m1:.0f}, {run.n1:.0f})"
        f"  (M2, N2)=({run.m2:.0f}, {run.n2:.0f})"
    )
    print("  per-level placement:")
    for row in run.report.per_level():
        print(
            f"    level {row['level']}: {row['direction']:>2} on "
            f"{row['device']:<3}  {row['seconds'] * 1e3:8.3f} ms"
            + (
                f"  (+{row['transfer_seconds'] * 1e6:.0f} us PCIe handoff)"
                if row["transfer_seconds"]
                else ""
            )
        )
    cross_time = run.report.total_seconds
    print(
        f"  simulated cross-architecture total: {cross_time * 1e3:.2f} ms "
        f"({run.report.gteps:.2f} GTEPS); "
        f"wall-clock incl. prediction: {predict_and_run:.2f}s\n"
    )

    # ------------------------------------------------------------------
    # How good was the prediction?
    # ------------------------------------------------------------------
    profile, _ = profile_bfs(graph, source)
    oracle = machine.run(profile, oracle_plan(machine, profile))
    print("[comparison] simulated traversal times:")
    for dev in ("mic", "cpu", "gpu"):
        runs = run_single_device(machine, profile, dev, 64, 512)
        print(
            f"  {dev.upper():>4} combination: "
            f"{runs.combination.total_seconds * 1e3:8.2f} ms "
            f"(pure top-down {runs.top_down.total_seconds * 1e3:8.2f} ms)"
        )
    print(f"  CPU+GPU (Algorithm 3): {cross_time * 1e3:8.2f} ms")
    print(
        f"  per-level oracle:      {oracle.total_seconds * 1e3:8.2f} ms  "
        f"-> regression reached "
        f"{oracle.total_seconds / cross_time:.0%} of the oracle "
        "(transfers excluded from the oracle)"
    )
    print(
        "\nNote: the cross-architecture advantage grows with graph size — "
        "small graphs are per-level-overhead bound, where a single device "
        "wins; the paper-scale experiments (benchmarks/) show the 2-8x "
        "gains of Fig. 9."
    )


if __name__ == "__main__":
    main()
