#!/usr/bin/env python
"""Trace a hybrid traversal, export it for Perfetto, audit the tuning.

Installs a real :class:`repro.obs.Tracer`, runs the direction-optimized
BFS under it, prices the chosen ``(M, N)`` against the paper's 1,000-case
exhaustive sweep on the measured per-level profile, and writes both
export formats.  Open the ``.trace.json`` at https://ui.perfetto.dev to
see one lane per level with the direction decisions overlaid.

Run:  python examples/trace_bfs.py [scale] [m] [n]
"""

import sys
from pathlib import Path

from repro.arch import CPU_SANDY_BRIDGE, CostModel
from repro.bfs import bfs_hybrid, pick_sources, profile_bfs
from repro.obs import (
    Tracer,
    audit_switching_point,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.graph import rmat


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    m = float(sys.argv[2]) if len(sys.argv) > 2 else 64.0
    n = float(sys.argv[3]) if len(sys.argv) > 3 else 512.0

    graph = rmat(scale, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])
    print(
        f"R-MAT scale {scale}: |V|={graph.num_vertices:,} "
        f"|E|={graph.num_edges:,}, source {source}\n"
    )

    # 1. Traverse under an ambient tracer: the engine emits a bfs.hybrid
    #    root span, one bfs.level span per depth, a bfs.direction instant
    #    per decision, and feeds the metrics registry.
    tracer = Tracer()
    with use_tracer(tracer):
        result = bfs_hybrid(graph, source, m=m, n=n)
    result.validate(graph)

    print("Span summary (seconds are wall clock):")
    for row in tracer.summary_rows():
        print(
            f"  {row['span']:<16} x{row['count']:<4} "
            f"total {row['total_ms']:8.3f} ms   mean {row['mean_ms']:.3f} ms"
        )
    directions = [e.attrs["direction"] for e in tracer.events("bfs.direction")]
    print(f"Direction per level: {directions}")
    snap = tracer.metrics.snapshot()
    print(f"Edges examined:      {int(snap['bfs.edges_examined']['value']):,}\n")

    # 2. The decision audit: was (M, N) a good choice?  One instrumented
    #    profile prices every candidate counterfactually — no re-traversal.
    profile, _ = profile_bfs(graph, source)
    report = audit_switching_point(
        profile,
        CostModel(CPU_SANDY_BRIDGE),
        m,
        n,
        count=1000,
        tracer=tracer,
        scale=scale,
    )
    print(report.render())

    # 3. Export: a lossless JSONL stream and a Perfetto-loadable Chrome
    #    trace (the audit verdict rides along as an instant event).
    trace_path = Path("trace_bfs.trace.json")
    jsonl_path = Path("trace_bfs.jsonl")
    write_chrome_trace(tracer, trace_path, scale=scale, m=m, n=n)
    write_jsonl(tracer, jsonl_path, scale=scale, m=m, n=n)
    events = validate_chrome_trace(trace_path)
    print(
        f"\nWrote {trace_path} ({events} Chrome events, schema-validated) "
        f"and {jsonl_path} — load the .trace.json in Perfetto."
    )


if __name__ == "__main__":
    main()
