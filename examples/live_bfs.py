#!/usr/bin/env python
"""Live telemetry across two processes: stitch, watch, gate.

Composes the whole ``repro.obs.live`` tier through the library API —
the cross-process trace context (:func:`spawn_traced`), the telemetry
:class:`Collector` with a burn-rate SLO policy, one plain-text
dashboard frame, and a recorded capture replayed as a CI-style gate.
This is the library-API version of ``repro-bfs top`` and
``repro-bfs live record/check``.

Run:  python examples/live_bfs.py [scale]
"""

import sys
from pathlib import Path

from repro.obs import Tracer, use_tracer
from repro.obs.export import validate_chrome_trace, write_chrome_trace
from repro.obs.live import (
    CaptureFile,
    ChannelExporter,
    Collector,
    SLOPolicy,
    read_capture,
    render,
    run_traced_pair,
)

CHILD_BIT = 1 << 32  # child span ids live above (child_index+1) << 32


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 10

    # 1. One policy: 90% of traversals must finish under a second.
    #    The evaluator alerts only when both the fast and the slow
    #    burn-rate windows exceed the threshold — a blip is not a page.
    policy = SLOPolicy.parse("graph500.bfs<1.0@0.9")
    print(f"SLO: {policy.spec()} (burn threshold {policy.burn_threshold}x)\n")

    # 2. Parent + child Graph 500 runs through one collector.  The
    #    capture tee persists every frame the way `live record` does.
    tracer = Tracer(trace_id="live-bfs-example")
    capture_path = Path("live_bfs.capture")
    with use_tracer(tracer), CaptureFile(capture_path) as capture:
        with Collector(tracer, policies=[policy]) as collector:
            tee = ChannelExporter(capture, tracer, source="main")
            tee.hello()
            tracer.add_listener(tee)
            run_traced_pair(
                scale, num_roots=4, children=1, collector=collector
            )
            collector.close(timeout=10.0)
            collector.evaluate()
            tee.close()

    # 3. The child's spans adopted into the parent's trace: same trace
    #    id, disjoint span-id range, parented under live.workload.
    spans = tracer.spans()
    child_spans = [r for r in spans if r.span_id >= CHILD_BIT]
    workload = tracer.spans("live.workload")[0]
    child_roots = [
        r for r in child_spans if r.parent_id == workload.span_id
    ]
    print(
        f"Stitched: {len(spans)} spans total, {len(child_spans)} from "
        f"the child ({len(child_roots)} rooted under live.workload)"
    )
    # metrics_final merged the child's observations into the parent:
    # 4 parent roots + 4 child roots
    print(f"Merged teps observations: {tracer.metrics.flat()['teps.count']:g}")

    trace_path = Path("live_bfs.trace.json")
    write_chrome_trace(tracer, trace_path)
    validate_chrome_trace(trace_path)
    print(f"Perfetto-loadable stitched trace: {trace_path}\n")

    # 4. One dashboard frame — what `repro-bfs top --once` prints.
    print(render(collector))

    # 5. Replay the capture as the CI gate `live check` runs.  A fresh
    #    collector reaches the same verdict from the file alone.
    frames = list(read_capture(capture_path))
    gate = Collector(Tracer(), policies=[policy])
    with gate:
        alerts = gate.replay(capture_path)
    verdict = "FAIL" if alerts else "ok"
    print(
        f"\nReplay gate: {len(frames)} frames from {capture_path} "
        f"-> {len(alerts)} alert(s) — {verdict}"
    )


if __name__ == "__main__":
    main()
