#!/usr/bin/env python
"""Profile a hybrid traversal: flamegraph, allocation verdict, explain.

Composes the whole profiling tier through :class:`ProfileSession` —
the span-tagged sampling stack profiler, per-level ``tracemalloc``
windows on a warm workspace, and the flight recorder — then joins the
measured per-level seconds against the cost model's predictions with
:func:`explain_traversal`.  This is the library-API version of
``repro-bfs profile``.

Run:  python examples/profile_bfs.py [scale] [hz]
"""

import sys
from pathlib import Path

from repro.arch import CPU_SANDY_BRIDGE, CostModel
from repro.bfs import pick_sources, profile_bfs
from repro.bfs.timing import timed_bfs
from repro.bfs.workspace import BFSWorkspace
from repro.graph import rmat
from repro.obs.profile import ProfileSession, explain_traversal


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    hz = float(sys.argv[2]) if len(sys.argv) > 2 else 997.0

    graph = rmat(scale, 16, seed=0)
    source = int(pick_sources(graph, 1, seed=0)[0])
    workspace = BFSWorkspace(graph.num_vertices)
    print(
        f"R-MAT scale {scale}: |V|={graph.num_vertices:,} "
        f"|E|={graph.num_edges:,}, source {source}\n"
    )

    # 1. Warm the workspace so the allocation windows judge the steady
    #    state, not first-touch growth.
    timed_bfs(graph, source, m=64.0, n=512.0, workspace=workspace)

    # 2. One profiled run: the sampler tags its samples with the open
    #    bfs.level span, the allocation profiler windows every level,
    #    and the flight recorder watches for anomalies.
    session = ProfileSession(hz=hz, recorder=True, snapshot_dir="snapshots")
    with session:
        run = timed_bfs(
            graph,
            source,
            m=64.0,
            n=512.0,
            workspace=workspace,
            tracer=session.tracer,
        )
    run.result.validate(graph)

    report = session.report()
    sampler = report["sampler"]
    alloc = report["alloc"]
    print(
        f"Sampler: {sampler['samples']} samples at {sampler['hz']:g} Hz; "
        f"busiest spans: "
        + ", ".join(
            f"{name} {secs * 1e3:.1f} ms"
            for name, secs in sorted(
                sampler["span_seconds"].items(), key=lambda kv: -kv[1]
            )[:3]
        )
    )
    verdict = "clean" if alloc["clean"] else "ALLOCATING"
    print(
        f"Alloc:   {alloc['windows']} level windows, {verdict} "
        f"(floor {alloc['size_floor']} bytes)"
    )
    recorder = report["flight_recorder"]
    print(
        f"Flight:  {recorder['ring_entries']} ring entries, "
        f"{len(recorder['triggers'])} triggers\n"
    )

    # 3. Explain: join the measured bfs.level span seconds against the
    #    cost model, per level and per kernel family.  The measured
    #    column IS the span durations — nothing is re-measured.
    profile, _ = profile_bfs(graph, source)
    explain = explain_traversal(
        run, profile, CostModel(CPU_SANDY_BRIDGE), tracer=session.tracer
    )
    print(explain.render())

    # 4. Artifacts: collapsed stacks for any flamegraph tool, and a
    #    Perfetto trace whose sample track lines up with the span lanes.
    paths = session.write_artifacts("profile_out", f"bfs-s{scale}")
    print(
        "\nWrote "
        + " and ".join(str(p) for p in paths.values())
        + " — load the .trace.json at https://ui.perfetto.dev"
    )
    if recorder["snapshots"]:
        print(
            "Anomaly snapshots: "
            + ", ".join(s["path"] for s in recorder["snapshots"])
        )
    else:
        Path("snapshots").mkdir(exist_ok=True)
        print("No anomalies — snapshots/ stays empty.")


if __name__ == "__main__":
    main()
